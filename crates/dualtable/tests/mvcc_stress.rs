//! The MVCC serializability harness (DESIGN.md §13).
//!
//! A deterministic, single-threaded scheduler drives six concurrent
//! sessions over one shared table — three transactional writers, two
//! pinned readers and one two-phase rewriter (OVERWRITE/COMPACT) — from a
//! seeded RNG. Because the harness interleaves the sessions itself, it
//! knows the exact committed state at every pin and can predict every
//! outcome exactly:
//!
//! * each transaction's reads must equal its pinned snapshot plus its own
//!   buffered writes (read-your-own-writes);
//! * each pinned reader must keep seeing its snapshot byte-for-byte while
//!   other sessions commit, swing the generation pointer and GC;
//! * each COMMIT must succeed or fail *exactly* as first-committer-wins
//!   predicts — no spurious conflicts, no lost updates;
//! * after the run, a serializability oracle replays the committed
//!   transactions in commit order on a single thread against a fresh
//!   table and the scans must be byte-identical;
//! * dead generations are GC'd only after their last pin drains.
//!
//! On failure the harness prints a `SEED=… cargo test …` repro line and
//! writes `target/last_failed_seed.txt` (see `dt_common::seed_report`).

use std::collections::{BTreeMap, BTreeSet, HashMap};

use dt_common::{seed_from_env, with_seed_repro, DataType, Rng64, Schema, Value};
use dualtable::{
    DualTableConfig, DualTableEnv, DualTableStore, PlanMode, RatioHint, RewriteJob, Snapshot,
    Transaction,
};

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)])
}

fn config() -> DualTableConfig {
    DualTableConfig {
        rows_per_file: 8,
        // The harness predicts conflicts exactly; a cost-model OVERWRITE
        // plan would swing the generation behind its back.
        plan_mode: PlanMode::AlwaysEdit,
        ..DualTableConfig::default()
    }
}

fn rows_of(t: &DualTableStore) -> Vec<(i64, i64)> {
    t.scan_all()
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect()
}

fn as_pairs(rows: &[(dt_common::RecordId, Vec<Value>)]) -> Vec<(i64, i64)> {
    rows.iter()
        .map(|(_, r)| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect()
}

fn sorted_pairs(m: &BTreeMap<i64, i64>) -> Vec<(i64, i64)> {
    m.iter().map(|(&k, &v)| (k, v)).collect()
}

/// One committed write event, for the oracle replay.
enum CommitEvent {
    /// A transactional or autocommit EDIT: per-record new value
    /// (`None` = delete), plus freshly inserted rows.
    Edit {
        patches: Vec<(i64, Option<i64>)>,
        inserts: Vec<(i64, i64)>,
    },
    /// `INSERT OVERWRITE` replacing the whole content.
    Overwrite(Vec<(i64, i64)>),
    /// `COMPACT` (content-neutral; replayed to exercise the same paths).
    Compact,
}

/// An open transactional writer session.
struct TxnState {
    txn: Transaction,
    /// The session's expected view: committed-at-pin + own writes.
    view: BTreeMap<i64, i64>,
    /// Pre-existing pks this transaction updated or deleted — its
    /// first-committer-wins footprint.
    patched: BTreeMap<i64, Option<i64>>,
    /// Rows this transaction inserted (not part of the footprint).
    own_inserts: Vec<(i64, i64)>,
    /// Global event count when the snapshot was pinned.
    pin_seq: u64,
}

/// An open pinned reader session.
struct ReaderState {
    snap: Snapshot,
    expect: BTreeMap<i64, i64>,
}

/// An in-progress two-phase rewrite.
struct RewriteState {
    job: RewriteJob,
    pin_seq: u64,
    /// Content the swing would install (for OVERWRITE, the replacement).
    replaces: Option<Vec<(i64, i64)>>,
}

/// What the model predicts a commit attempt will do.
#[derive(Debug, PartialEq)]
enum Predicted {
    Ok,
    SwingConflict,
    RecordConflict,
}

#[derive(Default)]
struct Totals {
    ww_conflicts: u64,
    swing_conflicts: u64,
    deferred: u64,
    gcd: u64,
}

struct Harness {
    store: DualTableStore,
    rng: Rng64,
    /// Model of the committed table content.
    committed: BTreeMap<i64, i64>,
    /// Monotone count of committed write events (commits and swings).
    events: u64,
    /// Last event that committed a write (edit or insert).
    write_seq: u64,
    /// Last event that swung the generation pointer.
    swing_seq: u64,
    /// Per-pk last write-commit event (the conflict window).
    pk_seq: HashMap<i64, u64>,
    /// Next fresh primary key.
    next_pk: i64,
    /// Commit-ordered log for the oracle replay.
    log: Vec<CommitEvent>,
    /// Predicted conflicts, to reconcile with health counters.
    predicted_ww: u64,
    predicted_swing: u64,
    writers: Vec<Option<TxnState>>,
    readers: Vec<Option<ReaderState>>,
    rewriter: Option<RewriteState>,
}

fn trace(msg: &str) {
    if std::env::var("MVCC_TRACE").is_ok() {
        eprintln!("[trace] {msg}");
    }
}

impl Harness {
    fn new(env: &DualTableEnv, seed: u64, initial_rows: i64) -> Self {
        let store = DualTableStore::create(env, "t", schema(), config()).unwrap();
        store
            .insert_rows((0..initial_rows).map(|i| vec![Value::Int64(i), Value::Int64(i * 10)]))
            .unwrap();
        Harness {
            store,
            rng: Rng64::new(seed),
            committed: (0..initial_rows).map(|i| (i, i * 10)).collect(),
            events: 0,
            write_seq: 0,
            swing_seq: 0,
            pk_seq: HashMap::new(),
            next_pk: initial_rows,
            log: vec![CommitEvent::Edit {
                patches: Vec::new(),
                inserts: (0..initial_rows).map(|i| (i, i * 10)).collect(),
            }],
            predicted_ww: 0,
            predicted_swing: 0,
            writers: vec![None, None, None],
            readers: vec![None, None],
            rewriter: None,
        }
    }

    fn fresh_pks(&mut self, n: usize) -> Vec<(i64, i64)> {
        (0..n)
            .map(|_| {
                let pk = self.next_pk;
                self.next_pk += 1;
                (pk, self.rng.range_i64(-1000, 1000))
            })
            .collect()
    }

    /// What would this transaction's COMMIT do right now?
    fn predict(&self, txn: &TxnState) -> Predicted {
        if txn.patched.is_empty() && txn.own_inserts.is_empty() {
            return Predicted::Ok; // read-only commits never conflict
        }
        if self.swing_seq > txn.pin_seq {
            return Predicted::SwingConflict;
        }
        for pk in txn.patched.keys() {
            if self.pk_seq.get(pk).copied().unwrap_or(0) > txn.pin_seq {
                return Predicted::RecordConflict;
            }
        }
        Predicted::Ok
    }

    fn step_writer(&mut self, w: usize) {
        let Some(state) = self.writers[w].take() else {
            // No open transaction: begin one, or fire an autocommit write.
            match self.rng.next_below(4) {
                0 => {
                    let txn = self.store.begin_transaction().unwrap();
                    trace(&format!(
                        "w{w} BEGIN pin_seq={} gen={} ts={}",
                        self.events,
                        txn.generation(),
                        txn.snapshot_ts()
                    ));
                    self.writers[w] = Some(TxnState {
                        txn,
                        view: self.committed.clone(),
                        patched: BTreeMap::new(),
                        own_inserts: Vec::new(),
                        pin_seq: self.events,
                    });
                }
                1 => self.autocommit_update(),
                2 => self.autocommit_insert(),
                _ => {} // idle
            }
            return;
        };
        let mut state = state;
        match self.rng.next_below(8) {
            0 | 1 => self.txn_update(&mut state),
            2 => self.txn_delete(&mut state),
            3 => self.txn_insert(&mut state),
            4 => {
                // Read-your-own-writes check.
                let got: BTreeMap<i64, i64> = state
                    .txn
                    .rows(None)
                    .unwrap()
                    .into_iter()
                    .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
                    .collect();
                assert_eq!(got, state.view, "transaction view diverged");
                self.writers[w] = Some(state);
                return;
            }
            5 | 6 => {
                self.commit_txn(state);
                return;
            }
            _ => {
                state.txn.rollback();
                return;
            }
        }
        self.writers[w] = Some(state);
    }

    fn txn_update(&mut self, state: &mut TxnState) {
        let m = [3i64, 5, 7][self.rng.next_below(3) as usize];
        let r = self.rng.range_i64(0, m - 1);
        let d = self.rng.range_i64(1, 9);
        let expect: Vec<i64> = state
            .view
            .keys()
            .copied()
            .filter(|pk| pk.rem_euclid(m) == r)
            .collect();
        let matched = state
            .txn
            .update(
                |row: &Vec<Value>| row[0].as_i64().unwrap().rem_euclid(m) == r,
                &[(
                    1,
                    Box::new(move |row: &Vec<Value>| Value::Int64(row[1].as_i64().unwrap() + d)),
                )],
            )
            .unwrap();
        if matched != expect.len() as u64 {
            let got: Vec<(i64, i64)> = state
                .txn
                .rows(None)
                .unwrap()
                .into_iter()
                .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
                .collect();
            let want = sorted_pairs(&state.view);
            let extra: Vec<_> = got.iter().filter(|p| !want.contains(p)).collect();
            let missing: Vec<_> = want.iter().filter(|p| !got.contains(p)).collect();
            panic!(
                "UPDATE matched {matched}, model expected {}\n  extra in store: {extra:?}\n  missing from store: {missing:?}",
                expect.len()
            );
        }
        let own: BTreeSet<i64> = state.own_inserts.iter().map(|&(pk, _)| pk).collect();
        for pk in expect {
            let v = state.view.get_mut(&pk).unwrap();
            *v += d;
            let v = *v;
            if !own.contains(&pk) {
                state.patched.insert(pk, Some(v));
            } else {
                // Patch our own buffered insert in place.
                for ins in &mut state.own_inserts {
                    if ins.0 == pk {
                        ins.1 = v;
                    }
                }
            }
        }
    }

    fn txn_delete(&mut self, state: &mut TxnState) {
        let m = [4i64, 6][self.rng.next_below(2) as usize];
        let r = self.rng.range_i64(0, m - 1);
        let expect: Vec<i64> = state
            .view
            .keys()
            .copied()
            .filter(|pk| pk.rem_euclid(m) == r)
            .collect();
        let matched = state
            .txn
            .delete(|row: &Vec<Value>| row[0].as_i64().unwrap().rem_euclid(m) == r)
            .unwrap();
        assert_eq!(matched, expect.len() as u64, "DELETE matched count");
        let own: BTreeSet<i64> = state.own_inserts.iter().map(|&(pk, _)| pk).collect();
        for pk in expect {
            state.view.remove(&pk);
            if own.contains(&pk) {
                state.own_inserts.retain(|&(p, _)| p != pk);
                state.patched.remove(&pk);
            } else {
                state.patched.insert(pk, None);
            }
        }
    }

    fn txn_insert(&mut self, state: &mut TxnState) {
        let rows = {
            let n = 1 + self.rng.next_below(3) as usize;
            self.fresh_pks(n)
        };
        trace(&format!("txn INSERT {rows:?}"));
        state
            .txn
            .insert(
                rows.iter()
                    .map(|&(pk, v)| vec![Value::Int64(pk), Value::Int64(v)])
                    .collect(),
            )
            .unwrap();
        for &(pk, v) in &rows {
            state.view.insert(pk, v);
        }
        state.own_inserts.extend(rows);
    }

    fn commit_txn(&mut self, state: TxnState) {
        let predicted = self.predict(&state);
        trace(&format!(
            "COMMIT pin_seq={} patched={:?} inserts={:?} predicted={predicted:?}",
            state.pin_seq, state.patched, state.own_inserts
        ));
        let result = state.txn.commit();
        match predicted {
            Predicted::Ok => {
                result.unwrap_or_else(|e| panic!("predicted clean commit, got {e:?}"));
                if state.patched.is_empty() && state.own_inserts.is_empty() {
                    return; // read-only: no event
                }
                self.events += 1;
                self.write_seq = self.events;
                for &pk in state.patched.keys() {
                    self.pk_seq.insert(pk, self.events);
                }
                // Fold the transaction's effects into the committed model.
                for (&pk, new) in &state.patched {
                    match new {
                        Some(v) => {
                            self.committed.insert(pk, *v);
                        }
                        None => {
                            self.committed.remove(&pk);
                        }
                    }
                }
                for &(pk, v) in &state.own_inserts {
                    self.committed.insert(pk, v);
                }
                self.log.push(CommitEvent::Edit {
                    patches: state.patched.into_iter().collect(),
                    inserts: state.own_inserts,
                });
            }
            Predicted::SwingConflict | Predicted::RecordConflict => {
                let err = result.expect_err("predicted conflict, commit succeeded");
                assert!(err.is_conflict(), "predicted conflict, got {err:?}");
                if predicted == Predicted::SwingConflict {
                    self.predicted_swing += 1;
                } else {
                    self.predicted_ww += 1;
                }
            }
        }
    }

    fn autocommit_update(&mut self) {
        let m = [3i64, 5][self.rng.next_below(2) as usize];
        let r = self.rng.range_i64(0, m - 1);
        let d = self.rng.range_i64(1, 9);
        let report = self
            .store
            .update(
                |row| row[0].as_i64().unwrap().rem_euclid(m) == r,
                &[(
                    1,
                    Box::new(move |row: &Vec<Value>| Value::Int64(row[1].as_i64().unwrap() + d)),
                )],
                RatioHint::Explicit(0.05),
            )
            .unwrap();
        let hit: Vec<i64> = self
            .committed
            .keys()
            .copied()
            .filter(|pk| pk.rem_euclid(m) == r)
            .collect();
        trace(&format!(
            "auto UPDATE m={m} r={r} d={d} matched={}",
            report.rows_matched
        ));
        assert_eq!(report.rows_matched, hit.len() as u64, "autocommit UPDATE");
        if hit.is_empty() {
            return;
        }
        self.events += 1;
        self.write_seq = self.events;
        let mut patches = Vec::new();
        for pk in hit {
            let v = self.committed.get_mut(&pk).unwrap();
            *v += d;
            self.pk_seq.insert(pk, self.events);
            patches.push((pk, Some(*v)));
        }
        self.log.push(CommitEvent::Edit {
            patches,
            inserts: Vec::new(),
        });
    }

    fn autocommit_insert(&mut self) {
        let rows = {
            let n = 1 + self.rng.next_below(4) as usize;
            self.fresh_pks(n)
        };
        trace(&format!(
            "auto INSERT {rows:?} -> event {}",
            self.events + 1
        ));
        self.store
            .insert_rows(
                rows.iter()
                    .map(|&(pk, v)| vec![Value::Int64(pk), Value::Int64(v)]),
            )
            .unwrap();
        self.events += 1;
        self.write_seq = self.events;
        for &(pk, v) in &rows {
            self.committed.insert(pk, v);
        }
        self.log.push(CommitEvent::Edit {
            patches: Vec::new(),
            inserts: rows,
        });
    }

    fn step_reader(&mut self, r: usize) {
        match self.readers[r].take() {
            None => {
                if self.rng.next_below(2) == 0 {
                    let snap = self.store.begin_snapshot().unwrap();
                    self.readers[r] = Some(ReaderState {
                        snap,
                        expect: self.committed.clone(),
                    });
                }
            }
            Some(state) => {
                let got: BTreeMap<i64, i64> = state
                    .snap
                    .scan_all()
                    .unwrap()
                    .into_iter()
                    .map(|(_, row)| (row[0].as_i64().unwrap(), row[1].as_i64().unwrap()))
                    .collect();
                assert_eq!(got, state.expect, "pinned snapshot drifted");
                assert_eq!(state.snap.count().unwrap(), state.expect.len() as u64);
                // Keep the pin ~2/3 of the time.
                if self.rng.next_below(3) != 0 {
                    self.readers[r] = Some(state);
                }
            }
        }
    }

    fn step_rewriter(&mut self) {
        match self.rewriter.take() {
            None => match self.rng.next_below(4) {
                0 => {
                    let job = self.store.begin_compact().unwrap();
                    trace(&format!(
                        "rewrite BEGIN COMPACT pin_seq={} target={}",
                        self.events,
                        job.target_generation()
                    ));
                    assert_eq!(job.rows_written(), self.committed.len() as u64);
                    self.rewriter = Some(RewriteState {
                        job,
                        pin_seq: self.events,
                        replaces: None,
                    });
                }
                1 => {
                    let rows = {
                        let n = 4 + self.rng.next_below(8) as usize;
                        self.fresh_pks(n)
                    };
                    let job = self
                        .store
                        .begin_insert_overwrite(
                            rows.iter()
                                .map(|&(pk, v)| vec![Value::Int64(pk), Value::Int64(v)])
                                .collect(),
                        )
                        .unwrap();
                    trace(&format!(
                        "rewrite BEGIN OVERWRITE pin_seq={} target={} rows={:?}",
                        self.events,
                        job.target_generation(),
                        rows
                    ));
                    self.rewriter = Some(RewriteState {
                        job,
                        pin_seq: self.events,
                        replaces: Some(rows),
                    });
                }
                _ => {}
            },
            Some(state) => {
                if self.rng.next_below(4) == 0 {
                    trace(&format!(
                        "rewrite ABANDON target={}",
                        state.job.target_generation()
                    ));
                    state.job.abandon();
                    return;
                }
                let conflicted = self.write_seq > state.pin_seq || self.swing_seq > state.pin_seq;
                trace(&format!(
                    "rewrite FINISH target={} pin_seq={} predicted_conflict={conflicted}",
                    state.job.target_generation(),
                    state.pin_seq
                ));
                let replaces = state.replaces.clone();
                let result = state.job.finish();
                if conflicted {
                    let err = result.expect_err("predicted swing conflict, finish succeeded");
                    assert!(err.is_conflict(), "predicted conflict, got {err:?}");
                    self.predicted_swing += 1;
                } else {
                    result.unwrap_or_else(|e| panic!("predicted clean swing, got {e:?}"));
                    self.events += 1;
                    self.swing_seq = self.events;
                    match replaces {
                        Some(rows) => {
                            self.committed = rows.iter().copied().collect();
                            self.log.push(CommitEvent::Overwrite(rows));
                        }
                        None => self.log.push(CommitEvent::Compact),
                    }
                }
            }
        }
    }

    /// GC safety: with no pins alive nothing stays retired, and a pinned
    /// generation is never deleted (the pinned readers' scans above would
    /// explode if it were).
    fn check_gc_invariant(&self) {
        if self.store.pinned_snapshots() == 0 {
            assert_eq!(
                self.store.retired_generations(),
                0,
                "retired generations must drain once the last pin drops"
            );
        }
    }

    fn run(&mut self, steps: usize) {
        for _ in 0..steps {
            match self.rng.next_below(6) {
                0..=2 => {
                    let w = self.rng.next_below(self.writers.len() as u64) as usize;
                    self.step_writer(w);
                }
                3 | 4 => {
                    let r = self.rng.next_below(self.readers.len() as u64) as usize;
                    self.step_reader(r);
                }
                _ => self.step_rewriter(),
            }
            self.check_gc_invariant();
        }
        // Drain every session.
        for w in 0..self.writers.len() {
            if let Some(state) = self.writers[w].take() {
                self.commit_txn(state);
            }
        }
        for r in 0..self.readers.len() {
            self.readers[r] = None;
        }
        if let Some(state) = self.rewriter.take() {
            state.job.abandon();
        }
        assert_eq!(self.store.pinned_snapshots(), 0, "all pins drained");
        assert_eq!(self.store.retired_generations(), 0, "all generations GC'd");
        assert_eq!(
            sorted_pairs(&self.committed),
            {
                let mut live = rows_of(&self.store);
                live.sort_unstable();
                live
            },
            "final table content diverged from the model"
        );
    }

    /// The serializability oracle: replay the committed write events in
    /// commit order, single-threaded, against a fresh table; the scan must
    /// be byte-identical to the live table's (values *and* order).
    fn replay_and_compare(&self) {
        let env = DualTableEnv::in_memory();
        let oracle = DualTableStore::create(&env, "oracle", schema(), config()).unwrap();
        for event in &self.log {
            match event {
                CommitEvent::Edit { patches, inserts } => {
                    let updates: HashMap<i64, i64> = patches
                        .iter()
                        .filter_map(|&(pk, v)| v.map(|v| (pk, v)))
                        .collect();
                    let deletes: BTreeSet<i64> = patches
                        .iter()
                        .filter(|(_, v)| v.is_none())
                        .map(|&(pk, _)| pk)
                        .collect();
                    if !updates.is_empty() {
                        let u = updates.clone();
                        oracle
                            .update(
                                move |row| u.contains_key(&row[0].as_i64().unwrap()),
                                &[(
                                    1,
                                    Box::new({
                                        let u = updates.clone();
                                        move |row: &Vec<Value>| {
                                            Value::Int64(u[&row[0].as_i64().unwrap()])
                                        }
                                    }),
                                )],
                                RatioHint::Explicit(0.05),
                            )
                            .unwrap();
                    }
                    if !deletes.is_empty() {
                        oracle
                            .delete(
                                |row| deletes.contains(&row[0].as_i64().unwrap()),
                                RatioHint::Explicit(0.05),
                            )
                            .unwrap();
                    }
                    if !inserts.is_empty() {
                        oracle
                            .insert_rows(
                                inserts
                                    .iter()
                                    .map(|&(pk, v)| vec![Value::Int64(pk), Value::Int64(v)]),
                            )
                            .unwrap();
                    }
                }
                CommitEvent::Overwrite(rows) => {
                    oracle
                        .insert_overwrite(
                            rows.iter()
                                .map(|&(pk, v)| vec![Value::Int64(pk), Value::Int64(v)])
                                .collect::<Vec<_>>(),
                        )
                        .unwrap();
                }
                CommitEvent::Compact => {
                    oracle.compact().unwrap();
                }
            }
        }
        let live = self.store.scan_all().unwrap();
        let replayed = oracle.scan_all().unwrap();
        assert_eq!(
            as_pairs(&live),
            as_pairs(&replayed),
            "oracle replay diverged from the concurrent execution"
        );
    }
}

fn run_one_seed(seed: u64) -> Totals {
    let env = DualTableEnv::in_memory();
    let mut h = Harness::new(&env, seed, 40);
    h.run(110);
    h.replay_and_compare();
    let snap = env.health.snapshot();
    assert_eq!(
        snap.ww_conflicts, h.predicted_ww,
        "write-write conflict count must match the model's prediction"
    );
    assert_eq!(
        snap.swing_conflicts, h.predicted_swing,
        "swing conflict count must match the model's prediction"
    );
    assert_eq!(snap.cleanup_failures, 0, "no cleanup failures in-memory");
    Totals {
        ww_conflicts: snap.ww_conflicts,
        swing_conflicts: snap.swing_conflicts,
        deferred: snap.generations_deferred,
        gcd: snap.generations_gcd,
    }
}

/// The seed sweep. `MVCC_STRESS_SEEDS` overrides the seed count (the
/// nightly long run raises it); `SEED=<n>` replays one failing seed.
#[test]
fn mvcc_stress_seed_sweep() {
    if std::env::var("SEED").is_ok() {
        let seed = seed_from_env(1);
        with_seed_repro(
            "dualtable",
            "mvcc_stress",
            "mvcc_stress_seed_sweep",
            seed,
            |s| {
                run_one_seed(s);
            },
        );
        return;
    }
    let seeds: u64 = std::env::var("MVCC_STRESS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(50);
    let mut totals = Totals::default();
    for i in 0..seeds {
        let seed = 0xD1A2_0000 + i;
        let t = std::cell::RefCell::new(Totals::default());
        with_seed_repro(
            "dualtable",
            "mvcc_stress",
            "mvcc_stress_seed_sweep",
            seed,
            |s| {
                *t.borrow_mut() = run_one_seed(s);
            },
        );
        let t = t.into_inner();
        totals.ww_conflicts += t.ww_conflicts;
        totals.swing_conflicts += t.swing_conflicts;
        totals.deferred += t.deferred;
        totals.gcd += t.gcd;
    }
    // The sweep must exercise every contended path at least once
    // (ISSUE 6 acceptance): a first-committer-wins loss, a swing
    // conflict, a swing deferred by a pinned reader, and a deferred
    // generation actually GC'd.
    assert!(
        totals.ww_conflicts >= 1,
        "no seed hit a write-write conflict"
    );
    assert!(totals.swing_conflicts >= 1, "no seed hit a swing conflict");
    assert!(
        totals.deferred >= 1,
        "no seed swung the pointer under a pinned reader"
    );
    assert!(totals.gcd >= 1, "no seed GC'd a deferred generation");
}

// ---------------------------------------------------------------------
// Directed scenarios: one deterministic script per acceptance bullet.
// ---------------------------------------------------------------------

fn small_store(env: &DualTableEnv) -> DualTableStore {
    let t = DualTableStore::create(env, "t", schema(), config()).unwrap();
    t.insert_rows((0..10).map(|i| vec![Value::Int64(i), Value::Int64(i * 10)]))
        .unwrap();
    t
}

/// Two transactions write the same record: the first committer wins, the
/// second gets a retryable conflict, and its buffered writes vanish.
#[test]
fn first_committer_wins_directed() {
    let env = DualTableEnv::in_memory();
    let t = small_store(&env);
    let mut a = t.begin_transaction().unwrap();
    let mut b = t.begin_transaction().unwrap();
    let set = |v: i64| -> Vec<dualtable::Assignment<'static>> {
        vec![(1, Box::new(move |_: &Vec<Value>| Value::Int64(v)))]
    };
    assert_eq!(
        a.update(|r| r[0].as_i64().unwrap() == 3, &set(111))
            .unwrap(),
        1
    );
    assert_eq!(
        b.update(|r| r[0].as_i64().unwrap() == 3, &set(222))
            .unwrap(),
        1
    );
    a.commit().unwrap();
    let err = b.commit().unwrap_err();
    assert!(
        err.is_conflict(),
        "loser must get a retryable conflict: {err:?}"
    );
    assert_eq!(env.health.snapshot().ww_conflicts, 1);
    let rows = rows_of(&t);
    assert!(rows.contains(&(3, 111)), "winner's write applied");
    assert!(!rows.contains(&(3, 222)), "loser's write discarded");
}

/// A generation swing with a reader pinned on the old generation: the
/// swing commits, the reader keeps its view, GC is deferred until the
/// pin drops, then the old generation is collected.
#[test]
fn pointer_swing_under_pinned_reader_directed() {
    let env = DualTableEnv::in_memory();
    let t = small_store(&env);
    let before = rows_of(&t);

    let reader = t.begin_snapshot().unwrap();
    let job = t.begin_compact().unwrap();
    job.finish().unwrap();

    assert!(
        env.health.snapshot().generations_deferred >= 1,
        "GC deferred"
    );
    assert_eq!(
        t.retired_generations(),
        1,
        "old generation retired, not GC'd"
    );
    let pinned: Vec<(i64, i64)> = reader
        .scan_all()
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert_eq!(pinned, before, "pinned reader view survives the swing");

    drop(reader);
    assert_eq!(t.retired_generations(), 0, "GC ran when the pin drained");
    assert!(env.health.snapshot().generations_gcd >= 1);
    assert_eq!(rows_of(&t), before, "compact is content-neutral");
}

/// An EDIT committing mid-rewrite makes the rewrite's finish fail — the
/// swing would silently lose the edit otherwise.
#[test]
fn edit_commit_fails_concurrent_rewrite() {
    let env = DualTableEnv::in_memory();
    let t = small_store(&env);
    let job = t.begin_compact().unwrap();
    t.update(
        |r| r[0].as_i64().unwrap() == 1,
        &[(1, Box::new(|_: &Vec<Value>| Value::Int64(-7)))],
        RatioHint::Explicit(0.05),
    )
    .unwrap();
    let err = job.finish().unwrap_err();
    assert!(err.is_conflict());
    assert!(env.health.snapshot().swing_conflicts >= 1);
    let rows = rows_of(&t);
    assert!(
        rows.contains(&(1, -7)),
        "the edit survived the failed swing"
    );
    // The abandoned generation leaves the table fully operational.
    t.compact().unwrap();
    assert!(rows_of(&t).contains(&(1, -7)));
}

/// An autocommit INSERT mid-rewrite also fails the swing: its files only
/// exist in the generation the swing would retire.
#[test]
fn insert_commit_fails_concurrent_rewrite() {
    let env = DualTableEnv::in_memory();
    let t = small_store(&env);
    let job = t.begin_compact().unwrap();
    t.insert_rows([vec![Value::Int64(100), Value::Int64(1)]])
        .unwrap();
    let err = job.finish().unwrap_err();
    assert!(
        err.is_conflict(),
        "swing must not drop the concurrent insert"
    );
    assert!(rows_of(&t).contains(&(100, 1)));
}

/// A transaction pinned before a successful swing conflicts at commit
/// (its record ids refer to the retired generation's files).
#[test]
fn transaction_loses_to_swing() {
    let env = DualTableEnv::in_memory();
    let t = small_store(&env);
    let mut txn = t.begin_transaction().unwrap();
    txn.update(
        |r| r[0].as_i64().unwrap() == 2,
        &[(1, Box::new(|_: &Vec<Value>| Value::Int64(5)))],
    )
    .unwrap();
    let job = t.begin_compact().unwrap();
    job.finish().unwrap();
    let err = txn.commit().unwrap_err();
    assert!(err.is_conflict(), "swing invalidates older pins' writes");
    assert!(env.health.snapshot().swing_conflicts >= 1);
}

/// Transactional inserts stay invisible until commit, then appear
/// atomically with the transaction's other effects.
#[test]
fn transactional_insert_atomic_visibility() {
    let env = DualTableEnv::in_memory();
    let t = small_store(&env);
    let mut txn = t.begin_transaction().unwrap();
    txn.insert(vec![
        vec![Value::Int64(50), Value::Int64(1)],
        vec![Value::Int64(51), Value::Int64(2)],
    ])
    .unwrap();
    txn.delete(|r| r[0].as_i64().unwrap() == 0).unwrap();
    let other = t.begin_snapshot().unwrap();
    assert_eq!(other.count().unwrap(), 10, "buffered writes invisible");
    assert_eq!(t.count().unwrap(), 10);
    txn.commit().unwrap();
    assert_eq!(
        other.count().unwrap(),
        10,
        "pinned snapshot still pre-commit"
    );
    assert_eq!(t.count().unwrap(), 11); // 10 - 1 deleted + 2 inserted
}
