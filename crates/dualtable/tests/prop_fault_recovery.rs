//! Crash-recovery property test: DualTable under a seeded [`FaultPlan`]
//! must agree with an in-memory oracle after every fault.
//!
//! The driver applies random INSERT / UPDATE / DELETE / COMPACT
//! statements while the shared fault plan injects fail-stop faults
//! (write errors, read errors, torn writes, process crashes) into both
//! storage tiers. The contract under test is *statement atomicity
//! across crashes*:
//!
//! * a statement that returns `Ok` is durable — it survives the next
//!   crash-and-reopen;
//! * a statement that returns `Err` committed nothing — the oracle is
//!   left untouched and the store must still match it after recovery.
//!
//! Two statement-shape caveats keep that contract exact (both are
//! documented limits of the engine, not of the test):
//!
//! * INSERT batches are capped at `rows_per_file` so each statement
//!   writes exactly one master file (a multi-file insert commits file
//!   by file and is not atomic as a whole);
//! * EDIT-plan UPDATE/DELETE stay under the 4096-cell batch threshold
//!   (here trivially: tables hold a few hundred rows), so the whole
//!   statement is one WAL frame in the attached tier.
//!
//! Verification runs with the plan disarmed — the fault schedule
//! targets the workload, not the checker — and the operation counter
//! freezes while disarmed, so the schedule stays deterministic.

use std::sync::Arc;

use dt_common::fault::{FaultKind, FaultPlan};
use dt_common::{DataType, RetryPolicy, Rng64, Row, Schema, Value};
use dt_dfs::DfsConfig;
use dt_kvstore::KvConfig;
use dualtable::{DualTableConfig, DualTableEnv, DualTableStore, PlanMode, RatioHint};
use proptest::prelude::*;

/// Fail-stop kinds only: silent-corruption kinds (`CorruptWrite`,
/// `CorruptRead`) are detected but not transparently repaired by the KV
/// tier (see DESIGN.md, fault model), so they would violate the
/// Ok-means-durable contract this test enforces.
const FAIL_STOP: &[FaultKind] = &[
    FaultKind::WriteError,
    FaultKind::ReadError,
    FaultKind::TornWrite,
    FaultKind::Crash,
];

/// Transient kinds only: brief outages that clear on their own. Under a
/// retry policy these must be fully invisible — every statement `Ok`,
/// oracle-identical state (the availability contract of DESIGN.md §8).
const TRANSIENT_ONLY: &[FaultKind] = &[
    FaultKind::TransientWriteError,
    FaultKind::TransientReadError,
];

const ROWS_PER_FILE: usize = 16;

#[derive(Debug, Clone)]
enum Op {
    /// Insert `count` fresh rows (capped at [`ROWS_PER_FILE`]).
    Insert {
        count: u8,
    },
    /// Update rows whose id % divisor == rem: set v = new_v.
    Update {
        divisor: u8,
        rem: u8,
        new_v: i8,
    },
    /// Delete rows whose id % divisor == rem.
    Delete {
        divisor: u8,
        rem: u8,
    },
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u8..=ROWS_PER_FILE as u8).prop_map(|count| Op::Insert { count }),
        3 => (1u8..6, 0u8..6, any::<i8>()).prop_map(|(d, r, v)| Op::Update {
            divisor: d,
            rem: r % d,
            new_v: v
        }),
        2 => (1u8..6, 0u8..6).prop_map(|(d, r)| Op::Delete { divisor: d, rem: r % d }),
        1 => Just(Op::Compact),
    ]
}

fn config() -> DualTableConfig {
    DualTableConfig {
        rows_per_file: ROWS_PER_FILE,
        plan_mode: PlanMode::AlwaysEdit,
        ..DualTableConfig::default()
    }
}

/// A DualTable beside its oracle, both driven by the same statements.
struct Harness {
    env: DualTableEnv,
    table: DualTableStore,
    plan: Arc<FaultPlan>,
    /// Reference content: (id, v) pairs, mutated only on `Ok`.
    model: Vec<(i64, i64)>,
    next_id: i64,
    recoveries: u64,
}

impl Harness {
    /// Builds the environment and an empty table with the plan disarmed
    /// (setup must not fault), then arms it.
    fn new(plan: Arc<FaultPlan>) -> Self {
        Self::new_with_retry(plan, true)
    }

    /// [`Harness::new`] with the self-healing retry machinery switched on
    /// or off across all three tiers — the control knob of the
    /// availability experiments.
    fn new_with_retry(plan: Arc<FaultPlan>, retry: bool) -> Self {
        plan.set_armed(false);
        let policy = if retry {
            RetryPolicy::default()
        } else {
            RetryPolicy::disabled()
        };
        let env = DualTableEnv::in_memory_faulty_with(
            plan.clone(),
            DfsConfig {
                retry: policy,
                ..DfsConfig::default()
            },
            KvConfig {
                retry: policy,
                ..KvConfig::default()
            },
        )
        .expect("clean setup");
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)]);
        let table_config = DualTableConfig {
            retry: policy,
            ..config()
        };
        let table =
            DualTableStore::create(&env, "chaos", schema, table_config).expect("clean create");
        plan.set_armed(true);
        Harness {
            env,
            table,
            plan,
            model: Vec::new(),
            next_id: 0,
            recoveries: 0,
        }
    }

    /// Applies one statement, recovers if it faulted, and checks the
    /// store against the oracle. Returns whether the statement succeeded.
    fn apply(&mut self, op: &Op) -> bool {
        let ok = match op {
            Op::Insert { count } => {
                let count = (*count).clamp(1, ROWS_PER_FILE as u8) as i64;
                let ids: Vec<i64> = (self.next_id..self.next_id + count).collect();
                let rows: Vec<Row> = ids
                    .iter()
                    .map(|&id| vec![Value::Int64(id), Value::Int64(0)])
                    .collect();
                match self.table.insert_rows(rows) {
                    Ok(n) => {
                        assert_eq!(n, ids.len() as u64);
                        self.next_id += count;
                        self.model.extend(ids.into_iter().map(|id| (id, 0)));
                        true
                    }
                    // A failed single-file INSERT commits nothing; the
                    // oracle does not consume the ids either.
                    Err(_) => false,
                }
            }
            Op::Update {
                divisor,
                rem,
                new_v,
            } => {
                let (d, r, v) = (*divisor as i64, *rem as i64, *new_v as i64);
                let outcome = self.table.update(
                    move |row| row[0].as_i64().unwrap() % d == r,
                    &[(1, Box::new(move |_| Value::Int64(v)))],
                    RatioHint::Explicit(0.01),
                );
                match outcome {
                    Ok(report) => {
                        let mut matched = 0u64;
                        for (id, val) in self.model.iter_mut() {
                            if *id % d == r {
                                *val = v;
                                matched += 1;
                            }
                        }
                        assert_eq!(report.rows_matched, matched);
                        true
                    }
                    Err(_) => false,
                }
            }
            Op::Delete { divisor, rem } => {
                let (d, r) = (*divisor as i64, *rem as i64);
                let outcome = self.table.delete(
                    move |row| row[0].as_i64().unwrap() % d == r,
                    RatioHint::Explicit(0.01),
                );
                match outcome {
                    Ok(_) => {
                        self.model.retain(|(id, _)| id % d != r);
                        true
                    }
                    Err(_) => false,
                }
            }
            // COMPACT never changes logical content, so the oracle is
            // unchanged whether it commits or not.
            Op::Compact => self.table.compact().is_ok(),
        };

        // Freeze the fault schedule; recovery and verification must not
        // themselves be faulted.
        self.plan.set_armed(false);
        if std::env::var("CHAOS_DEBUG").is_ok() {
            let injected = self.plan.injected();
            let tail = &injected[injected.len().saturating_sub(6)..];
            eprintln!(
                "op={:?} ok={} crashed={} injected={} ops_seen={} tail={:?}",
                op,
                ok,
                self.plan.is_crashed(),
                self.plan.injected_count(),
                self.plan.ops_seen(),
                tail
            );
        }
        // Reopen when the statement failed (process-restart semantics)
        // or when a fault swallowed by auto-maintenance left the
        // simulated process dead behind an `Ok`.
        if !ok || self.plan.is_crashed() {
            self.env
                .crash_and_reopen()
                .expect("recovery over surviving state must succeed");
            self.recoveries += 1;
        }
        self.verify();
        self.plan.set_armed(true);
        ok
    }

    /// UNION READ must equal the oracle exactly.
    fn verify(&self) {
        let scanned = self
            .table
            .scan_all()
            .expect("verification scan must not fail");
        assert!(
            scanned.windows(2).all(|w| w[0].0 < w[1].0),
            "record ids out of scan order"
        );
        let mut got: Vec<(i64, i64)> = scanned
            .iter()
            .map(|(_, row)| (row[0].as_i64().unwrap(), row[1].as_i64().unwrap()))
            .collect();
        got.sort_unstable();
        let mut want = self.model.clone();
        want.sort_unstable();
        assert_eq!(
            got,
            want,
            "UNION READ diverged from oracle (after {} recoveries, {} injected faults)",
            self.recoveries,
            self.plan.injected_count()
        );
        assert_eq!(self.table.count().unwrap(), self.model.len() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random statements + a random seeded fault schedule: the store
    /// must match the oracle after every statement and every recovery.
    #[test]
    fn dualtable_recovers_to_oracle(
        seed in any::<u64>(),
        ops in proptest::collection::vec(arb_op(), 1..32),
    ) {
        let plan = Arc::new(FaultPlan::seeded(seed, 8, 160, FAIL_STOP));
        let mut h = Harness::new(plan);
        for op in &ops {
            h.apply(op);
        }
        h.plan.set_armed(false);
        h.verify();
    }
}

/// The seed of the deterministic chaos run below. To reproduce a
/// failure, re-run `cargo test -p dualtable chaos_smoke` — the fault
/// schedule, the statement stream and every corruption detail derive
/// from this one constant.
const CHAOS_SEED: u64 = 0xD0A1_7AB1;

/// One random statement, drawn with the same weights as the proptest
/// strategy.
fn gen_op(rng: &mut Rng64) -> Op {
    match rng.next_below(9) {
        0..=2 => Op::Insert {
            count: 1 + rng.next_below(ROWS_PER_FILE as u64) as u8,
        },
        3..=5 => {
            let d = 1 + rng.next_below(5) as u8;
            Op::Update {
                divisor: d,
                rem: rng.next_below(d as u64) as u8,
                new_v: rng.next_below(256) as u8 as i8,
            }
        }
        6..=7 => {
            let d = 1 + rng.next_below(5) as u8;
            Op::Delete {
                divisor: d,
                rem: rng.next_below(d as u64) as u8,
            }
        }
        _ => Op::Compact,
    }
}

/// Fixed-seed acceptance run: at least 100 mixed DML statements with at
/// least 10 injected faults, ending (and checked after every statement)
/// with UNION READ equal to the oracle.
#[test]
fn chaos_smoke_fixed_seed() {
    let plan = Arc::new(FaultPlan::seeded(CHAOS_SEED, 24, 600, FAIL_STOP));
    let mut h = Harness::new(plan.clone());
    let mut rng = Rng64::new(CHAOS_SEED ^ 0x9E37_79B9_7F4A_7C15);

    let mut ops_done = 0u64;
    while ops_done < 140 || (plan.injected_count() < 10 && ops_done < 1500) {
        h.apply(&gen_op(&mut rng));
        ops_done += 1;
    }

    plan.set_armed(false);
    h.verify();
    assert!(ops_done >= 100, "only {ops_done} statements ran");
    assert!(
        plan.injected_count() >= 10,
        "only {} faults fired in {} I/O ops over {ops_done} statements: {:?}",
        plan.injected_count(),
        plan.ops_seen(),
        plan.injected(),
    );
    assert!(
        h.recoveries >= 1,
        "chaos run never exercised crash_and_reopen"
    );
}

/// A transient-only outage schedule: `n` outages of 1–3 consecutive
/// failures each, spaced at least 16 *same-class* operations apart so no
/// single operation's retry budget (4 attempts) can span two outages —
/// which is what makes "retry ⇒ every statement succeeds" a theorem
/// rather than a probability.
fn transient_schedule(seed: u64, n: u64, spread: u64) -> Arc<FaultPlan> {
    let mut rng = Rng64::new(seed);
    let mut plan = FaultPlan::new(seed);
    // One spacing cursor per transient kind: schedules are class-indexed
    // (the N-th read / the N-th write), so the ≥16 gap is measured in
    // same-class operations. A retry loop re-attempts one operation — at
    // most 4 consecutive same-class ops — and therefore can never span
    // two outages of its own class, no matter how the other class
    // interleaves. Global-indexed schedules lack this guarantee: specs
    // slide to the next matching op, and a long run of the other class
    // lets two outages pile up and fire back-to-back.
    let mut at = [1u64; 2];
    for _ in 0..n {
        let pick = rng.next_below(TRANSIENT_ONLY.len() as u64) as usize;
        at[pick] += 16 + rng.next_below(spread);
        plan = plan.fail_transient_at_nth(
            at[pick],
            TRANSIENT_ONLY[pick],
            1 + rng.next_below(3) as u32,
        );
    }
    Arc::new(plan)
}

/// The seed of the deterministic availability run: both halves of
/// [`chaos_availability_fixed_seed`] derive their fault schedule and
/// statement stream from this constant.
const AVAIL_SEED: u64 = 0x5EED_AB1E;

/// Availability under transient faults, and the proof that the retry
/// machinery is what provides it:
///
/// 1. transient-only outages + retry ⇒ **zero** statement errors and an
///    oracle-identical table;
/// 2. the *same* outage schedule with retries disabled in every tier
///    demonstrably fails statements.
#[test]
fn chaos_availability_fixed_seed() {
    // Half 1: self-healing on.
    let plan = transient_schedule(AVAIL_SEED, 40, 48);
    let mut h = Harness::new_with_retry(plan.clone(), true);
    let mut rng = Rng64::new(AVAIL_SEED ^ 0x9E37_79B9_7F4A_7C15);
    let mut failed = 0u64;
    for _ in 0..160 {
        if !h.apply(&gen_op(&mut rng)) {
            failed += 1;
        }
    }
    plan.set_armed(false);
    h.verify();
    assert_eq!(failed, 0, "transient faults must be invisible under retry");
    assert!(
        plan.injected_count() >= 10,
        "only {} faults fired in {} ops",
        plan.injected_count(),
        plan.ops_seen()
    );
    let report = h.env.health_report();
    assert!(
        report.dfs.retries + report.kv.retries + report.table.retries >= 10,
        "retries did the healing: {report:?}"
    );
    assert!(
        !report.kv.degraded,
        "transient faults never degrade the store"
    );

    // Half 2: identical schedule and statement stream, retries disabled.
    let plan = transient_schedule(AVAIL_SEED, 40, 48);
    let mut h = Harness::new_with_retry(plan.clone(), false);
    let mut rng = Rng64::new(AVAIL_SEED ^ 0x9E37_79B9_7F4A_7C15);
    let mut failed = 0u64;
    for _ in 0..160 {
        if !h.apply(&gen_op(&mut rng)) {
            failed += 1;
        }
    }
    plan.set_armed(false);
    h.verify();
    assert!(
        failed > 0,
        "without retry the same outages must surface as statement errors \
         ({} faults fired)",
        plan.injected_count()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The availability property over random schedules and statement
    /// streams: transient-only faults plus retry mean every statement
    /// returns `Ok` and the table never diverges from the oracle.
    #[test]
    fn transient_faults_with_retry_are_invisible(
        seed in any::<u64>(),
        ops in proptest::collection::vec(arb_op(), 1..24),
    ) {
        let plan = transient_schedule(seed, 12, 24);
        let mut h = Harness::new_with_retry(plan, true);
        for op in &ops {
            prop_assert!(h.apply(op), "statement failed under retry: {op:?}");
        }
        h.plan.set_armed(false);
        h.verify();
    }
}
