//! Range-shard routing, pruning, and maintenance fairness (DESIGN.md §16).
//!
//! Covers the sharding edge cases the design calls out explicitly:
//!
//! - keys exactly equal to a split point land in the *upper* shard
//!   (half-open `[lo, hi)` ranges);
//! - empty shards scan, count, and compact without fuss;
//! - a single-shard table is logically identical to an unsharded table
//!   over the same workload, and its master tier is byte-identical;
//! - range predicates prune non-matching shards before any I/O — a
//!   contradictory range touches zero shards and issues **zero DFS
//!   reads** (asserted via `IoStats`);
//! - one UPDATE statement can pick EDIT on one shard and OVERWRITE on
//!   another, because the cost model runs per shard;
//! - `compact_incremental` walks shards round-robin with a fairness
//!   bound of one full cycle;
//! - crash between shard-map publication and shard creation heals on
//!   `open` (an absent shard store equals a never-written shard).

use dt_common::{DataType, Deadline, Row, Schema, Value};
use dt_orcfile::{ColumnPredicate, PredicateOp};
use dualtable::{
    DualTableConfig, DualTableEnv, DualTableStore, PlanChoice, PlanMode, RatioHint, ShardMap,
    ShardSpec, ShardedTable,
};

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)])
}

fn cfg() -> DualTableConfig {
    DualTableConfig {
        rows_per_file: 8,
        plan_mode: PlanMode::CostBased,
        ..DualTableConfig::default()
    }
}

fn row(id: i64, v: i64) -> Row {
    vec![Value::Int64(id), Value::Int64(v)]
}

fn sorted_ids(rows: &[Row]) -> Vec<i64> {
    let mut ids: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    ids.sort_unstable();
    ids
}

fn pred(op: PredicateOp, v: i64) -> ColumnPredicate {
    ColumnPredicate::new(0, op, Value::Int64(v))
}

/// Keys equal to a split point route to the shard *starting* at the
/// split: ranges are half-open `[lo, hi)`.
#[test]
fn split_point_keys_route_to_upper_shard() {
    let env = DualTableEnv::in_memory();
    let spec = ShardSpec::new(0, vec![10, 20]).unwrap();
    let t = ShardedTable::create(&env, "routed", schema(), cfg(), spec).unwrap();

    // One row per interesting key: below, at, and above each split.
    let keys = [0i64, 9, 10, 11, 19, 20, 21, 100];
    t.insert_rows(keys.iter().map(|&k| row(k, k * 2)).collect())
        .unwrap();

    assert_eq!(t.shard_for_key(9), 0);
    assert_eq!(t.shard_for_key(10), 1, "key == split point → upper shard");
    assert_eq!(t.shard_for_key(19), 1);
    assert_eq!(t.shard_for_key(20), 2, "key == split point → upper shard");

    let per_shard: Vec<u64> = (0..3).map(|i| t.shards()[i].count().unwrap()).collect();
    assert_eq!(per_shard, vec![2, 3, 3]);

    // Gather returns every row exactly once, in shard (= key-range) order.
    let rows = t.scan_scatter(None, None, &Deadline::never()).unwrap();
    assert_eq!(sorted_ids(&rows), keys.to_vec());
    let gathered: Vec<i64> = rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
    let mut in_order = gathered.clone();
    in_order.sort_unstable();
    assert_eq!(gathered, in_order, "shard-order gather is key-ordered here");

    // A point predicate at the split touches only the upper shard.
    let eq10 = [pred(PredicateOp::Eq, 10)];
    assert_eq!(t.shards_matching(Some(&eq10)), vec![1]);
}

/// Shards with no rows participate in every code path without errors and
/// without physical reads.
#[test]
fn empty_shards_are_harmless() {
    let env = DualTableEnv::in_memory();
    let spec = ShardSpec::new(0, vec![100, 200, 300]).unwrap();
    let t = ShardedTable::create(&env, "sparse", schema(), cfg(), spec).unwrap();

    // Only shard 0 ever sees data; shards 1..3 stay empty.
    t.insert_rows((0..10).map(|k| row(k, k)).collect()).unwrap();
    assert_eq!(t.count().unwrap(), 10);
    for i in 1..4 {
        assert_eq!(t.shards()[i].count().unwrap(), 0, "shard {i} not empty");
    }

    let rows = t.scan_scatter(None, None, &Deadline::never()).unwrap();
    assert_eq!(rows.len(), 10);

    // DML that routes only to empty shards matches nothing.
    let report = t
        .update_keyed(
            |_| true,
            &[(1, Box::new(|_| Value::Int64(-1)))],
            RatioHint::Explicit(0.01),
            None,
            Some(&[pred(PredicateOp::Ge, 250)]),
        )
        .unwrap();
    assert_eq!(report.rows_matched, 0);

    // Maintenance walks the empty shards without complaint.
    t.compact().unwrap();
    for _ in 0..8 {
        t.compact_incremental().unwrap();
    }
}

/// A single-shard sharded table over `(-inf, +inf)` is the degenerate
/// case: same logical content as an unsharded table under the same
/// workload, and the same master-tier bytes on disk.
#[test]
fn single_shard_matches_unsharded() {
    let env = DualTableEnv::in_memory();
    let plain = DualTableStore::create(&env, "plain", schema(), cfg()).unwrap();
    let spec = ShardSpec::new(0, Vec::new()).unwrap();
    let sharded = ShardedTable::create(&env, "one", schema(), cfg(), spec).unwrap();
    assert_eq!(sharded.shard_count(), 1);

    let batch: Vec<Row> = (0..40).map(|k| row(k, k * 7)).collect();
    plain.insert_rows(batch.clone()).unwrap();
    sharded.insert_rows(batch).unwrap();
    for t in [&plain, sharded.shards().first().unwrap()] {
        t.update(
            |r| r[0].as_i64().unwrap() % 3 == 0,
            &[(1, Box::new(|_| Value::Int64(5)))],
            RatioHint::Explicit(0.01),
        )
        .unwrap();
        t.delete(
            |r| r[0].as_i64().unwrap() % 5 == 4,
            RatioHint::Explicit(0.01),
        )
        .unwrap();
        t.compact().unwrap();
    }

    // Logical equivalence.
    let mut want: Vec<(i64, i64)> = plain
        .scan_all()
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    want.sort_unstable();
    let mut got: Vec<(i64, i64)> = sharded
        .scan_scatter(None, None, &Deadline::never())
        .unwrap()
        .into_iter()
        .map(|r| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    got.sort_unstable();
    assert_eq!(got, want);

    // Physical equivalence: the single shard's master files carry the
    // same bytes as the unsharded table's (paths differ, content not).
    let master_bytes = |prefix: &str| -> Vec<Vec<u8>> {
        let mut files: Vec<Vec<u8>> = env
            .dfs
            .list(prefix)
            .into_iter()
            .filter(|p| !p.ends_with("__shard_map"))
            .map(|p| env.dfs.read_to_vec(&p).unwrap())
            .collect();
        files.sort();
        files
    };
    let plain_files = master_bytes("/warehouse/plain/");
    let shard_files = master_bytes("/warehouse/one__s0/");
    assert!(!plain_files.is_empty());
    assert_eq!(
        plain_files, shard_files,
        "single-shard master tier must be byte-identical to unsharded"
    );
}

/// Range predicates prune whole shards before any I/O. A contradictory
/// range prunes everything: zero rows, zero DFS reads.
#[test]
fn range_pruning_skips_shard_io() {
    let env = DualTableEnv::in_memory();
    let spec = ShardSpec::new(0, vec![100, 200, 300]).unwrap();
    let t = ShardedTable::create(&env, "pruned", schema(), cfg(), spec).unwrap();
    t.insert_rows((0..400).map(|k| row(k, k)).collect())
        .unwrap();

    // Predicate covering only shard 1 ([100, 200)).
    let mid = [pred(PredicateOp::Ge, 120), pred(PredicateOp::Lt, 180)];
    assert_eq!(t.shards_matching(Some(&mid)), vec![1]);
    // File-level pushdown is stripe-granular: every matching row comes
    // back (exact filtering is the query layer's job), and shard pruning
    // guarantees nothing outside shard 1's [100, 200) range is read.
    let rows = t
        .scan_scatter(None, Some(&mid), &Deadline::never())
        .unwrap();
    let ids = sorted_ids(&rows);
    assert!(ids.iter().all(|&id| (100..200).contains(&id)));
    assert!((120..180).all(|k| ids.binary_search(&k).is_ok()));

    let pruned_before = env.shard_health.snapshot().shards_pruned_by_range;

    // Contradictory range: x >= 500 AND x < 0 — no shard can match.
    let none = [pred(PredicateOp::Ge, 500), pred(PredicateOp::Lt, 0)];
    assert!(t.shards_matching(Some(&none)).is_empty());
    let before = env.dfs.stats().snapshot();
    let rows = t
        .scan_scatter(None, Some(&none), &Deadline::never())
        .unwrap();
    let delta = env.dfs.stats().snapshot().since(&before);
    assert!(rows.is_empty());
    assert_eq!(
        delta.read_ops, 0,
        "fully pruned scatter scan must issue zero DFS reads"
    );
    assert_eq!(delta.bytes_read, 0);

    // The health tier saw all four shards pruned by that scan.
    let snap = env.shard_health.snapshot();
    assert_eq!(snap.shards_pruned_by_range, pruned_before + 4);
    assert!(snap.scatter_scans >= 2);
}

/// One UPDATE statement, two different plans: the shard where the
/// predicate touches every row goes OVERWRITE, the barely-touched shard
/// stays EDIT. The cost model is per shard, per range.
#[test]
fn per_shard_plans_diverge() {
    let env = DualTableEnv::in_memory();
    let spec = ShardSpec::new(0, vec![1000]).unwrap();
    let t = ShardedTable::create(&env, "split_plan", schema(), cfg(), spec).unwrap();

    // Shard 0: 64 rows; shard 1: 64 rows.
    let mut rows: Vec<Row> = (0..64).map(|k| row(k, 0)).collect();
    rows.extend((1000..1064).map(|k| row(k, 0)));
    t.insert_rows(rows).unwrap();

    // Predicate: every row of shard 1, exactly one row of shard 0.
    let report = t
        .update_keyed(
            |r| {
                let id = r[0].as_i64().unwrap();
                id == 0 || id >= 1000
            },
            &[(1, Box::new(|_| Value::Int64(9)))],
            RatioHint::Sample,
            None,
            None,
        )
        .unwrap();
    assert_eq!(report.rows_matched, 65);
    assert_eq!(report.per_shard.len(), 2);
    let plan_of = |i: usize| {
        report
            .per_shard
            .iter()
            .find(|(s, _)| *s == i)
            .map(|(_, r)| r.plan)
            .unwrap()
    };
    assert_eq!(plan_of(0), PlanChoice::Edit, "1/64 rows → EDIT");
    assert_eq!(plan_of(1), PlanChoice::Overwrite, "64/64 rows → OVERWRITE");
    assert!(report.plan_summary().contains("EDIT"));
    assert!(report.plan_summary().contains("OVERWRITE"));
}

/// Round-robin fairness: over any window of `shard_count` consecutive
/// probes, every shard is attempted exactly once — a busy shard cannot
/// starve its siblings for more than one full cycle.
#[test]
fn incremental_compaction_is_round_robin_fair() {
    let env = DualTableEnv::in_memory();
    let spec = ShardSpec::new(0, vec![100, 200]).unwrap();
    let t = ShardedTable::create(&env, "fair", schema(), cfg(), spec).unwrap();

    // Dirty every shard (deletes leave attached-tier tombstones to fold).
    t.insert_rows((0..300).map(|k| row(k, k)).collect())
        .unwrap();
    t.delete_keyed(
        |r| r[0].as_i64().unwrap() % 2 == 0,
        RatioHint::Explicit(0.01),
        None,
        None,
    )
    .unwrap();

    // Each call probes until it finds work, so with all three shards
    // dirty, three calls must visit shard 0, 1, 2 — one attempt each.
    for _ in 0..3 {
        t.compact_incremental().unwrap();
    }
    let attempts: Vec<u64> = (0..3).map(|i| t.fold_stats(i).attempted).collect();
    assert_eq!(
        attempts,
        vec![1, 1, 1],
        "each shard probed exactly once per full cycle"
    );

    // Ledger sanity: every attempt is classified exactly once.
    for i in 0..3 {
        let s = t.fold_stats(i);
        assert_eq!(s.attempted, s.folded + s.lost_race + s.clean);
    }
}

/// A crash after the shard map is published but before every shard store
/// exists heals on `open`: missing shard stores are created empty.
#[test]
fn open_heals_partially_created_table() {
    let env = DualTableEnv::in_memory();
    let spec = ShardSpec::new(0, vec![50]).unwrap();

    // Simulate the create-crash window: map durable, no shards yet.
    ShardMap::save(&env, "healed", &spec).unwrap();
    let t = ShardedTable::open(&env, "healed", schema(), cfg()).unwrap();
    assert_eq!(t.shard_count(), 2);
    assert_eq!(t.count().unwrap(), 0);
    t.insert_rows(vec![row(1, 1), row(99, 2)]).unwrap();
    assert_eq!(t.shards()[0].count().unwrap(), 1);
    assert_eq!(t.shards()[1].count().unwrap(), 1);
}
