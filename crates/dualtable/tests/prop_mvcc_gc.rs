//! Property test: generation GC under any interleaving of snapshot pins,
//! unpins, EDIT commits and two-phase generation swings (DESIGN.md §13).
//!
//! Two safety properties, checked after every operation at the public API
//! level:
//!
//! 1. **Never drop a pinned generation** — every live [`Snapshot`] must
//!    keep returning its pin-time bytes, no matter how many swings have
//!    retired its generation since. (A deleted master file or a pruned
//!    visibility record would surface as missing or phantom rows.)
//! 2. **Never leak dead generations past the budget** — the number of
//!    `gen-` directories holding files is at most
//!    `1 (current) + retired (pin-protected) + max_generations (dead
//!    budget)`. Abandoned builds must not count against anything: their
//!    directories disappear on abandon.
//!
//! `max_generations` itself is part of the generated input, so the budget
//! is exercised at 0 (sweep eagerly) through 2 (tolerate leaks).

use std::collections::BTreeMap;

use dt_common::{DataType, RecordId, Row, Schema, Value};
use dualtable::{DualTableConfig, DualTableEnv, DualTableStore, PlanMode, RatioHint, Snapshot};
use proptest::prelude::*;

const TABLE: &str = "gc";

#[derive(Debug, Clone)]
enum Op {
    /// Pin a reader snapshot (capped at 4 live pins; extra pins no-op).
    Pin,
    /// Drop pin `idx % live` (no-op when none are live).
    Unpin {
        idx: u8,
    },
    Insert {
        count: u8,
    },
    /// EDIT-plan update: `v = new_v WHERE id % divisor == rem`.
    Update {
        divisor: u8,
        rem: u8,
        new_v: i8,
    },
    /// Two-phase COMPACT; `abandon` drops the build instead of swinging.
    Compact {
        abandon: bool,
    },
    /// Two-phase INSERT OVERWRITE (`v += 1000`); `abandon` as above.
    Overwrite {
        abandon: bool,
    },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Pin),
        3 => any::<u8>().prop_map(|idx| Op::Unpin { idx }),
        2 => (1u8..12).prop_map(|count| Op::Insert { count }),
        2 => (1u8..5, 0u8..5, any::<i8>()).prop_map(|(d, r, v)| Op::Update {
            divisor: d,
            rem: r % d,
            new_v: v
        }),
        2 => any::<bool>().prop_map(|abandon| Op::Compact { abandon }),
        2 => any::<bool>().prop_map(|abandon| Op::Overwrite { abandon }),
    ]
}

fn config(max_generations: usize) -> DualTableConfig {
    DualTableConfig {
        rows_per_file: 8,
        plan_mode: PlanMode::AlwaysEdit,
        max_generations,
        ..DualTableConfig::default()
    }
}

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)])
}

/// Generation directories currently holding master files.
fn gen_dirs(env: &DualTableEnv) -> Vec<String> {
    let mut dirs: Vec<String> = env
        .dfs
        .list(&format!("/warehouse/{TABLE}/"))
        .into_iter()
        .filter_map(|p| {
            p.split('/')
                .find(|seg| seg.starts_with("gen-"))
                .map(String::from)
        })
        .collect();
    dirs.sort();
    dirs.dedup();
    dirs
}

fn sorted_pairs(rows: &[(RecordId, Row)]) -> Vec<(i64, i64)> {
    let mut got: Vec<(i64, i64)> = rows
        .iter()
        .map(|(_, row)| (row[0].as_i64().unwrap(), row[1].as_i64().unwrap()))
        .collect();
    got.sort_unstable();
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generation_gc_never_drops_pinned_never_leaks(
        max_generations in 0usize..3,
        ops in proptest::collection::vec(arb_op(), 1..28),
    ) {
        let env = DualTableEnv::in_memory();
        let table =
            DualTableStore::create(&env, TABLE, schema(), config(max_generations)).unwrap();
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        let mut next_id = 0i64;
        // Each live pin with the bytes it must keep seeing.
        let mut pins: Vec<(Snapshot, Vec<(i64, i64)>)> = Vec::new();

        for op in &ops {
            match op {
                Op::Pin => {
                    if pins.len() < 4 {
                        let snap = table.begin_snapshot().unwrap();
                        let expect = sorted_pairs(&snap.scan_all().unwrap());
                        prop_assert_eq!(
                            &expect,
                            &model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
                            "fresh pin does not see the committed state"
                        );
                        pins.push((snap, expect));
                    }
                }
                Op::Unpin { idx } => {
                    if !pins.is_empty() {
                        pins.remove(*idx as usize % pins.len());
                    }
                }
                Op::Insert { count } => {
                    let rows: Vec<Row> = (0..*count as i64)
                        .map(|i| {
                            let id = next_id + i;
                            vec![Value::Int64(id), Value::Int64(id)]
                        })
                        .collect();
                    table.insert_rows(rows).unwrap();
                    for i in 0..*count as i64 {
                        model.insert(next_id + i, next_id + i);
                    }
                    next_id += *count as i64;
                }
                Op::Update { divisor, rem, new_v } => {
                    let (d, r, v) = (*divisor as i64, *rem as i64, *new_v as i64);
                    table
                        .update(
                            move |row| row[0].as_i64().unwrap() % d == r,
                            &[(1, Box::new(move |_| Value::Int64(v)))],
                            RatioHint::Explicit(0.01),
                        )
                        .unwrap();
                    model.iter_mut().for_each(|(id, val)| {
                        if id % d == r {
                            *val = v;
                        }
                    });
                }
                Op::Compact { abandon } => {
                    let job = table.begin_compact().unwrap();
                    if *abandon {
                        job.abandon();
                    } else {
                        // No commit since the pin: the swing must win.
                        job.finish().unwrap();
                    }
                }
                Op::Overwrite { abandon } => {
                    let rows: Vec<Row> = model
                        .iter()
                        .map(|(&id, &v)| vec![Value::Int64(id), Value::Int64(v + 1000)])
                        .collect();
                    let job = table.begin_insert_overwrite(rows).unwrap();
                    if *abandon {
                        job.abandon();
                    } else {
                        job.finish().unwrap();
                        model.values_mut().for_each(|v| *v += 1000);
                    }
                }
            }

            // Property 1: every pinned reader still sees its pin-time
            // bytes — no pinned generation (or its visibility records)
            // was dropped.
            for (snap, expect) in &pins {
                prop_assert_eq!(
                    &sorted_pairs(&snap.scan_all().unwrap()),
                    expect,
                    "pinned snapshot drifted (gen {})",
                    snap.generation()
                );
            }

            // Property 2: at most current + pin-protected + dead budget
            // generation directories survive on disk. Abandoned builds
            // must not linger.
            let dirs = gen_dirs(&env);
            let budget = 1 + table.retired_generations() + max_generations;
            prop_assert!(
                dirs.len() <= budget,
                "{} generation dirs on disk exceed budget {budget} \
                 (retired {}, max_generations {max_generations}): {dirs:?}",
                dirs.len(),
                table.retired_generations()
            );

            // Latest-state reads stay correct throughout.
            prop_assert_eq!(
                sorted_pairs(&table.scan_all().unwrap()),
                model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
            );
        }

        // Drain every pin: the deferred ledger must empty and the disk
        // must shrink to the current generation plus the dead budget.
        pins.clear();
        prop_assert_eq!(table.pinned_snapshots(), 0);
        prop_assert_eq!(table.retired_generations(), 0);
        prop_assert!(gen_dirs(&env).len() <= 1 + max_generations);
        prop_assert_eq!(
            sorted_pairs(&table.scan_all().unwrap()),
            model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>()
        );
    }
}
