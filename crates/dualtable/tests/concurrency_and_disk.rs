//! DualTable concurrency (readers vs EDIT-plan writers vs COMPACT) and the
//! on-disk environment roundtrip.

use dt_common::{DataType, Schema, Value};
use dualtable::{DualTableConfig, DualTableEnv, DualTableStore, PlanMode, RatioHint};

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)])
}

fn config() -> DualTableConfig {
    DualTableConfig {
        rows_per_file: 64,
        plan_mode: PlanMode::AlwaysEdit,
        ..DualTableConfig::default()
    }
}

#[test]
fn concurrent_scans_and_edits() {
    let env = DualTableEnv::in_memory();
    let t = DualTableStore::create(&env, "t", schema(), config()).unwrap();
    t.insert_rows((0..500).map(|i| vec![Value::Int64(i), Value::Int64(0)]))
        .unwrap();

    std::thread::scope(|scope| {
        let writer = {
            let t = t.clone();
            scope.spawn(move || {
                for round in 1..=20i64 {
                    t.update(
                        move |r| r[0].as_i64().unwrap() % 20 == round % 20,
                        &[(1, Box::new(move |_| Value::Int64(round)))],
                        RatioHint::Explicit(0.05),
                    )
                    .unwrap();
                }
            })
        };
        // Concurrent scans always see 500 complete rows (row count never
        // torn by in-flight updates; values are whatever has landed).
        for _ in 0..15 {
            let rows = t.scan_all().unwrap();
            assert_eq!(rows.len(), 500);
            for (_, r) in &rows {
                assert_eq!(r.len(), 2);
            }
        }
        writer.join().unwrap();
    });
    // All rounds landed.
    let rows = t.scan_all().unwrap();
    let updated = rows
        .iter()
        .filter(|(_, r)| r[1].as_i64().unwrap() > 0)
        .count();
    assert_eq!(
        updated, 500,
        "every id % 20 class was touched by some round"
    );
}

#[test]
fn compact_excludes_writers_and_keeps_readers_correct() {
    let env = DualTableEnv::in_memory();
    let t = DualTableStore::create(&env, "t", schema(), config()).unwrap();
    t.insert_rows((0..300).map(|i| vec![Value::Int64(i), Value::Int64(0)]))
        .unwrap();
    t.delete(|r| r[0].as_i64().unwrap() < 30, RatioHint::Explicit(0.1))
        .unwrap();

    std::thread::scope(|scope| {
        let compactor = {
            let t = t.clone();
            scope.spawn(move || t.compact().unwrap())
        };
        // Scans either run before or after COMPACT (it holds the write
        // lock); both views have exactly 270 rows.
        for _ in 0..10 {
            assert_eq!(t.count().unwrap(), 270);
        }
        compactor.join().unwrap();
    });
    assert_eq!(t.stats().unwrap().master_rows, 270);
}

/// Regression (REVIEW: non-repeatable read): autocommit INSERT stages
/// its master files before writing them, so a snapshot pinned anywhere
/// inside an in-flight insert must read a stable row count — never
/// "see the new rows, then lose them when the commit lands past the
/// pin". Races real `insert_rows` calls against pinned re-scans.
#[test]
fn pinned_snapshot_count_is_stable_across_racing_inserts() {
    let env = DualTableEnv::in_memory();
    let cfg = DualTableConfig {
        rows_per_file: 4, // many small files → wide write-to-commit window
        ..config()
    };
    let t = DualTableStore::create(&env, "t", schema(), cfg).unwrap();
    t.insert_rows((0..40).map(|i| vec![Value::Int64(i), Value::Int64(0)]))
        .unwrap();

    std::thread::scope(|scope| {
        let writer = {
            let t = t.clone();
            scope.spawn(move || {
                for round in 0..30i64 {
                    let base = 1000 + round * 40;
                    t.insert_rows(
                        (base..base + 40).map(|i| vec![Value::Int64(i), Value::Int64(round)]),
                    )
                    .unwrap();
                }
            })
        };
        while !writer.is_finished() {
            let snap = t.begin_snapshot().unwrap();
            let first = snap.count().unwrap();
            // Whole inserts only: autocommit INSERT commits all its
            // files at one timestamp.
            assert_eq!(first % 40, 0, "snapshot saw a torn insert");
            for _ in 0..3 {
                assert_eq!(
                    snap.count().unwrap(),
                    first,
                    "pinned snapshot re-scan must be repeatable"
                );
            }
        }
        writer.join().unwrap();
    });
    assert_eq!(t.count().unwrap(), 40 + 30 * 40);
}

#[test]
fn on_disk_environment_roundtrip() {
    let dir = std::env::temp_dir().join(format!("dt-disk-it-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let env = DualTableEnv::on_disk(&dir).unwrap();
        let t = DualTableStore::create(&env, "persisted", schema(), config()).unwrap();
        t.insert_rows((0..100).map(|i| vec![Value::Int64(i), Value::Int64(1)]))
            .unwrap();
        t.update(
            |r| r[0].as_i64().unwrap() == 7,
            &[(1, Box::new(|_| Value::Int64(777)))],
            RatioHint::Explicit(0.01),
        )
        .unwrap();
        let rows = t.scan_all().unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[7].1[1], Value::Int64(777));
        // Real files landed on disk for both tiers.
        assert!(std::fs::read_dir(dir.join("dfs")).unwrap().count() > 0);
        assert!(std::fs::read_dir(dir.join("kv")).unwrap().count() > 0);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// §II-B: Hive's INSERT OVERWRITE rewrite "reads every record and a total
/// of 22 columns … to update only one column". DualTable's UNION READ with
/// a projection must touch only the projected columns' bytes.
#[test]
fn projection_cuts_master_io() {
    use dt_common::DataType;
    let env = DualTableEnv::in_memory();
    let fields: Vec<(String, DataType)> = (0..23)
        .map(|i| (format!("c{i:02}"), DataType::Utf8))
        .collect();
    let pairs: Vec<(&str, DataType)> = fields.iter().map(|(n, t)| (n.as_str(), *t)).collect();
    let schema = Schema::from_pairs(&pairs);
    let t = DualTableStore::create(&env, "wide", schema, config()).unwrap();
    t.insert_rows((0..500).map(|i| {
        (0..23)
            .map(|c| Value::Utf8(format!("row{i}-col{c}-padding-padding")))
            .collect()
    }))
    .unwrap();

    // Warm the footer cache first so both measurements cover data bytes
    // only, then measure each scan with a cold block cache: `bytes_read`
    // counts physical fetches, and the first scan would otherwise pay the
    // footer parses for the second while subsidizing its data blocks.
    let _ = t.count().unwrap();
    env.dfs.clear_block_cache();
    let before = env.dfs.stats().snapshot();
    let _ = t
        .scan(&dualtable::UnionReadOptions::all().with_projection(vec![3]))
        .unwrap();
    let narrow = env.dfs.stats().snapshot().since(&before).bytes_read;

    env.dfs.clear_block_cache();
    let before = env.dfs.stats().snapshot();
    let _ = t.scan_all().unwrap();
    let wide = env.dfs.stats().snapshot().since(&before).bytes_read;

    // Compression flattens the gap (the filler strings encode tightly) and
    // footers/indexes are read either way, so require a 3x reduction.
    assert!(
        narrow * 3 < wide,
        "1-of-23-column read must cost far less I/O: narrow={narrow} wide={wide}"
    );
}
