//! The three-tier crash-point simulation matrix (DESIGN.md §9).
//!
//! A seeded DML workload — INSERT, EDIT-plan UPDATE/DELETE, INSERT
//! OVERWRITE, COMPACT — is run once with I/O-trace recording to learn
//! its operation horizon and each statement's `(start, end]` op range.
//! Then, for every selected crash point `k`, a fresh stack re-runs the
//! workload with a fail-stop fault scheduled at operation `k`, recovers
//! via [`DualTableEnv::crash_and_reopen`] (KV WAL replay + namenode
//! edit-log/checkpoint replay), reopens the table, and checks:
//!
//! 1. **Prefix durability / statement atomicity** — the recovered table
//!    equals the oracle after exactly `acked` statements, or `acked + 1`
//!    if the in-flight statement committed before the fault surfaced.
//!    Never anything in between.
//! 2. **Single generation** — every surviving master file belongs to one
//!    generation directory. A crash inside OVERWRITE or COMPACT lands on
//!    exactly the old or the new generation, never a mix.
//! 3. **Physical hygiene** — fsck reports no corruption and no
//!    under-replication; scrub collects every orphan block and leaves the
//!    logical content untouched.
//!
//! The smoke run covers >= 200 points (plus guaranteed points inside
//! every OVERWRITE/COMPACT statement). Set `CRASH_MATRIX_FULL=1` for the
//! exhaustive run over every operation index.

use std::collections::BTreeSet;
use std::sync::Arc;

use dt_common::crash_matrix::{run_crash_matrix, select_crash_points};
use dt_common::fault::{FaultKind, FaultPlan, IoOp};
use dt_common::{DataType, Row, Schema, Value};
use dt_dfs::DfsConfig;
use dt_kvstore::KvConfig;
use dualtable::{DualTableConfig, DualTableEnv, DualTableStore, PlanMode, RatioHint};

const TABLE: &str = "crash";
const ROWS_PER_FILE: usize = 8;

/// Small chunks, replication 2 and a mid-workload checkpoint interval so
/// crash points land inside block pipelines and checkpoint writes alike.
fn dfs_cfg() -> DfsConfig {
    DfsConfig {
        chunk_size: 64,
        replication: 2,
        checkpoint_interval: 16,
        ..DfsConfig::default()
    }
}

/// Tiny memtable so the workload forces WAL rotation and SSTable flushes,
/// putting crash points inside the attached tier's flush path too.
fn kv_cfg() -> KvConfig {
    KvConfig {
        memtable_flush_bytes: 512,
        ..KvConfig::default()
    }
}

/// Two rewrite workers, so every OVERWRITE/COMPACT crash point below runs
/// against the parallel fan-out (partitioned file-ID reservation, per-
/// worker sinks) while the commit step stays single-threaded. Total op
/// counts per statement stay deterministic under the fan-out — the same
/// operation set executes in any interleaving — which is what lets the
/// record run's `(start, end]` ranges transfer to the crash runs.
fn table_cfg() -> DualTableConfig {
    DualTableConfig {
        rows_per_file: ROWS_PER_FILE,
        plan_mode: PlanMode::CostBased,
        write_threads: 2,
        ..DualTableConfig::default()
    }
}

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)])
}

/// One DML statement of the seeded workload. Shapes keep each statement
/// atomic (see prop_fault_recovery.rs): INSERT batches fit one master
/// file; UPDATE/DELETE hint a tiny ratio so the cost model picks EDIT.
#[derive(Debug, Clone, Copy)]
enum Stmt {
    Insert {
        count: u8,
    },
    Update {
        divisor: i64,
        rem: i64,
        v: i64,
    },
    Delete {
        divisor: i64,
        rem: i64,
    },
    /// INSERT OVERWRITE: every surviving row's `v` bumped by 1000.
    Overwrite,
    Compact,
}

const STMTS: &[Stmt] = &[
    Stmt::Insert { count: 8 },
    Stmt::Insert { count: 6 },
    Stmt::Update {
        divisor: 2,
        rem: 0,
        v: 7,
    },
    Stmt::Insert { count: 8 },
    Stmt::Delete { divisor: 3, rem: 1 },
    Stmt::Compact,
    Stmt::Insert { count: 5 },
    Stmt::Update {
        divisor: 5,
        rem: 2,
        v: -3,
    },
    Stmt::Overwrite,
    Stmt::Insert { count: 8 },
    Stmt::Delete { divisor: 2, rem: 1 },
    Stmt::Update {
        divisor: 3,
        rem: 0,
        v: 11,
    },
    Stmt::Compact,
    Stmt::Insert { count: 7 },
    Stmt::Update {
        divisor: 7,
        rem: 3,
        v: 21,
    },
];

/// The in-memory oracle: table content plus the id allocator.
#[derive(Debug, Clone, Default, PartialEq)]
struct Model {
    rows: Vec<(i64, i64)>,
    next_id: i64,
}

impl Model {
    /// Applies `stmt` to the oracle (the semantics every recovered state
    /// is judged against).
    fn step(&mut self, stmt: &Stmt) {
        match *stmt {
            Stmt::Insert { count } => {
                for _ in 0..count {
                    self.rows.push((self.next_id, self.next_id * 3));
                    self.next_id += 1;
                }
            }
            Stmt::Update { divisor, rem, v } => {
                for (id, val) in self.rows.iter_mut() {
                    if *id % divisor == rem {
                        *val = v;
                    }
                }
            }
            Stmt::Delete { divisor, rem } => self.rows.retain(|(id, _)| id % divisor != rem),
            Stmt::Overwrite => {
                for (_, val) in self.rows.iter_mut() {
                    *val += 1000;
                }
            }
            Stmt::Compact => {}
        }
    }

    fn sorted(&self) -> Vec<(i64, i64)> {
        let mut v = self.rows.clone();
        v.sort_unstable();
        v
    }
}

/// Oracle states after 0, 1, ..., N statements.
fn oracle_states() -> Vec<Vec<(i64, i64)>> {
    let mut m = Model::default();
    let mut states = vec![m.sorted()];
    for stmt in STMTS {
        m.step(stmt);
        states.push(m.sorted());
    }
    states
}

/// Applies one statement to the real table. `model` is the oracle state
/// *before* the statement (it supplies fresh ids and OVERWRITE content).
fn apply(table: &DualTableStore, model: &Model, stmt: &Stmt) -> dt_common::Result<()> {
    match *stmt {
        Stmt::Insert { count } => {
            let rows: Vec<Row> = (0..count as i64)
                .map(|i| {
                    let id = model.next_id + i;
                    vec![Value::Int64(id), Value::Int64(id * 3)]
                })
                .collect();
            table.insert_rows(rows).map(|_| ())
        }
        Stmt::Update { divisor, rem, v } => table
            .update(
                move |row| row[0].as_i64().unwrap() % divisor == rem,
                &[(1, Box::new(move |_| Value::Int64(v)))],
                RatioHint::Explicit(0.01),
            )
            .map(|_| ()),
        Stmt::Delete { divisor, rem } => table
            .delete(
                move |row| row[0].as_i64().unwrap() % divisor == rem,
                RatioHint::Explicit(0.01),
            )
            .map(|_| ()),
        Stmt::Overwrite => {
            let rows: Vec<Row> = model
                .rows
                .iter()
                .map(|&(id, v)| vec![Value::Int64(id), Value::Int64(v + 1000)])
                .collect();
            table.insert_overwrite(rows).map(|_| ())
        }
        Stmt::Compact => table.compact(),
    }
}

/// The table's logical content as sorted `(id, v)` pairs.
fn scan_sorted(table: &DualTableStore) -> Result<Vec<(i64, i64)>, String> {
    let scanned = table.scan_all().map_err(|e| format!("scan: {e}"))?;
    let mut got: Vec<(i64, i64)> = scanned
        .iter()
        .map(|(_, row)| (row[0].as_i64().unwrap(), row[1].as_i64().unwrap()))
        .collect();
    got.sort_unstable();
    Ok(got)
}

/// The set of generation directories holding master files.
fn live_generations(env: &DualTableEnv) -> BTreeSet<String> {
    env.dfs
        .list(&format!("/warehouse/{TABLE}/"))
        .into_iter()
        .filter_map(|p| {
            p.split('/')
                .find(|seg| seg.starts_with("gen-"))
                .map(String::from)
        })
        .collect()
}

#[test]
fn crash_matrix_three_tiers() {
    // ------------------------------------------------------------------
    // Record run: learn the op horizon, the per-op class trace, and each
    // statement's op range. Setup runs disarmed so op 1 is the first
    // workload operation in both this run and every crash run.
    // ------------------------------------------------------------------
    let plan = Arc::new(FaultPlan::new(0xD7A1));
    plan.set_armed(false);
    let env = DualTableEnv::in_memory_faulty_with(plan.clone(), dfs_cfg(), kv_cfg())
        .expect("clean setup");
    let table = DualTableStore::create(&env, TABLE, schema(), table_cfg()).expect("clean create");
    plan.record_trace();
    plan.set_armed(true);

    let oracles = oracle_states();
    let mut model = Model::default();
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for stmt in STMTS {
        let start = plan.ops_seen();
        apply(&table, &model, stmt).expect("record run must not fault");
        model.step(stmt);
        ranges.push((start + 1, plan.ops_seen()));
    }
    plan.set_armed(false);
    let trace = plan.take_trace();
    let total_ops = trace.len() as u64;
    assert_eq!(
        scan_sorted(&table).unwrap(),
        oracles[STMTS.len()],
        "record run diverged from oracle"
    );
    assert!(
        total_ops >= 200,
        "workload too small for a 200-point smoke matrix ({total_ops} ops)"
    );

    // Crash points inside OVERWRITE and COMPACT are mandatory: those are
    // the generation-swap critical sections.
    let must_cover: Vec<(u64, u64)> = STMTS
        .iter()
        .zip(&ranges)
        .filter(|(s, _)| matches!(s, Stmt::Overwrite | Stmt::Compact))
        .map(|(_, &r)| r)
        .collect();
    assert_eq!(
        must_cover.len(),
        3,
        "one OVERWRITE + two COMPACT statements"
    );
    assert!(
        must_cover.iter().all(|&(s, e)| s <= e),
        "empty critical range"
    );

    // ------------------------------------------------------------------
    // Matrix run: >= 200 jittered points by default, every op index under
    // CRASH_MATRIX_FULL=1.
    // ------------------------------------------------------------------
    let full = std::env::var("CRASH_MATRIX_FULL").is_ok_and(|v| v != "0");
    let target = if full { total_ops as usize } else { 200 };
    let points = select_crash_points(0x5EED_CA5B, total_ops, target, &must_cover);
    assert!(points.len() >= 200, "only {} crash points", points.len());
    for &(s, e) in &must_cover {
        assert!(
            points.iter().any(|&p| (s..=e).contains(&p)),
            "no crash point inside critical range ({s}, {e}]"
        );
    }

    let report = run_crash_matrix(&points, |k| {
        // Torn writes on even write ops exercise the salvage paths; a
        // plain crash fires on any op class.
        let kind = if trace[(k - 1) as usize] == IoOp::Write && k % 2 == 0 {
            FaultKind::TornWrite
        } else {
            FaultKind::Crash
        };
        let plan = Arc::new(FaultPlan::new(0xC0FFEE ^ k).fail_at(k, kind));
        plan.set_armed(false);
        let env = DualTableEnv::in_memory_faulty_with(plan.clone(), dfs_cfg(), kv_cfg())
            .map_err(|e| format!("setup: {e}"))?;
        let table = DualTableStore::create(&env, TABLE, schema(), table_cfg())
            .map_err(|e| format!("create: {e}"))?;
        plan.set_armed(true);

        let mut model = Model::default();
        let mut acked = 0usize;
        let mut crashed = false;
        for stmt in STMTS {
            match apply(&table, &model, stmt) {
                Ok(()) => {
                    model.step(stmt);
                    acked += 1;
                    // An Ok statement with a sticky crash behind it: the
                    // fault hit post-commit maintenance. The simulated
                    // process is dead; stop issuing statements.
                    if plan.is_crashed() {
                        crashed = true;
                        break;
                    }
                }
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
        }
        if !crashed && !plan.is_crashed() {
            return Ok(false); // self-healing absorbed the fault
        }

        // Restart the whole stack from its durable state and reopen the
        // table (which settles any deferred generation GC).
        plan.heal_and_disarm();
        env.crash_and_reopen()
            .map_err(|e| format!("recovery: {e}"))?;
        // The restart must purge the block cache: recovery can roll the
        // namespace back past commits, so any block cached pre-crash may
        // describe state the recovered namespace never saw. Every
        // post-recovery read below therefore re-fetches from durable
        // storage — a resurrected pre-crash block would surface as a
        // divergence from the oracle.
        if env.dfs.block_cache_entries() != 0 {
            return Err(format!(
                "{} pre-crash blocks survived recovery in the cache",
                env.dfs.block_cache_entries()
            ));
        }
        let table = DualTableStore::open(&env, TABLE, schema(), table_cfg())
            .map_err(|e| format!("reopen: {e}"))?;

        // Invariant 1: oracle(acked) or oracle(acked + 1), never a mix.
        let got = scan_sorted(&table)?;
        let committed_in_flight = acked + 1 < oracles.len() && got == oracles[acked + 1];
        if got != oracles[acked] && !committed_in_flight {
            return Err(format!(
                "recovered table matches neither oracle({acked}) nor oracle({}): {} rows",
                acked + 1,
                got.len()
            ));
        }
        if table.count().map_err(|e| format!("count: {e}"))? != got.len() as u64 {
            return Err("count() disagrees with scan".into());
        }

        // Invariant 2: one surviving master generation — a crash inside
        // OVERWRITE/COMPACT must land on the old or the new generation.
        let gens = live_generations(&env);
        if gens.len() > 1 {
            return Err(format!("mixed master generations after recovery: {gens:?}"));
        }

        // Invariant 3: no corruption or under-replication; orphans are
        // collected by scrub without touching logical content.
        let fsck = env.dfs.fsck().map_err(|e| format!("fsck: {e}"))?;
        if !fsck.healthy() {
            return Err(format!("fsck unhealthy after recovery: {fsck:?}"));
        }
        env.dfs.scrub().map_err(|e| format!("scrub: {e}"))?;
        let after = env
            .dfs
            .fsck()
            .map_err(|e| format!("post-scrub fsck: {e}"))?;
        if after.orphan_blocks != 0 {
            return Err(format!("{} orphans survived scrub", after.orphan_blocks));
        }
        if scan_sorted(&table)? != got {
            return Err("scrub changed logical table content".into());
        }
        Ok(true)
    });

    assert!(
        report.ok(),
        "crash matrix violations ({} of {} points):\n{:#?}",
        report.violations.len(),
        report.points,
        report.violations
    );
    // Nearly every point must actually kill the workload; a small
    // remainder may be absorbed by replica failover.
    assert!(
        report.crashes_injected * 10 >= report.points * 9,
        "only {} of {} crash points fired",
        report.crashes_injected,
        report.points
    );
}
