//! The three-tier crash-point simulation matrix (DESIGN.md §9).
//!
//! A seeded DML workload — INSERT, EDIT-plan UPDATE/DELETE, INSERT
//! OVERWRITE, COMPACT — is run once with I/O-trace recording to learn
//! its operation horizon and each statement's `(start, end]` op range.
//! Then, for every selected crash point `k`, a fresh stack re-runs the
//! workload with a fail-stop fault scheduled at operation `k`, recovers
//! via [`DualTableEnv::crash_and_reopen`] (KV WAL replay + namenode
//! edit-log/checkpoint replay), reopens the table, and checks:
//!
//! 1. **Prefix durability / statement atomicity** — the recovered table
//!    equals the oracle after exactly `acked` statements, or `acked + 1`
//!    if the in-flight statement committed before the fault surfaced.
//!    Never anything in between.
//! 2. **Single generation** — every surviving master file belongs to one
//!    generation directory. A crash inside OVERWRITE or COMPACT lands on
//!    exactly the old or the new generation, never a mix.
//! 3. **Physical hygiene** — fsck reports no corruption and no
//!    under-replication; scrub collects every orphan block and leaves the
//!    logical content untouched.
//!
//! The smoke run covers >= 200 points (plus guaranteed points inside
//! every OVERWRITE/COMPACT statement). Set `CRASH_MATRIX_FULL=1` for the
//! exhaustive run over every operation index.

use std::collections::BTreeSet;
use std::sync::Arc;

use dt_common::crash_matrix::{run_crash_matrix, select_crash_points};
use dt_common::fault::{FaultKind, FaultPlan, IoOp};
use dt_common::{DataType, Row, Schema, Value};
use dt_dfs::DfsConfig;
use dt_kvstore::KvConfig;
use dualtable::{
    DualTableConfig, DualTableEnv, DualTableStore, PlanMode, RatioHint, RewriteJob, Snapshot,
    Transaction,
};

const TABLE: &str = "crash";
const ROWS_PER_FILE: usize = 8;

/// Small chunks, replication 2 and a mid-workload checkpoint interval so
/// crash points land inside block pipelines and checkpoint writes alike.
fn dfs_cfg() -> DfsConfig {
    DfsConfig {
        chunk_size: 64,
        replication: 2,
        checkpoint_interval: 16,
        ..DfsConfig::default()
    }
}

/// Tiny memtable so the workload forces WAL rotation and SSTable flushes,
/// putting crash points inside the attached tier's flush path too.
fn kv_cfg() -> KvConfig {
    KvConfig {
        memtable_flush_bytes: 512,
        ..KvConfig::default()
    }
}

/// Two rewrite workers, so every OVERWRITE/COMPACT crash point below runs
/// against the parallel fan-out (partitioned file-ID reservation, per-
/// worker sinks) while the commit step stays single-threaded. Total op
/// counts per statement stay deterministic under the fan-out — the same
/// operation set executes in any interleaving — which is what lets the
/// record run's `(start, end]` ranges transfer to the crash runs.
fn table_cfg() -> DualTableConfig {
    DualTableConfig {
        rows_per_file: ROWS_PER_FILE,
        plan_mode: PlanMode::CostBased,
        write_threads: 2,
        ..DualTableConfig::default()
    }
}

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)])
}

/// One DML statement of the seeded workload. Shapes keep each statement
/// atomic (see prop_fault_recovery.rs): INSERT batches fit one master
/// file; UPDATE/DELETE hint a tiny ratio so the cost model picks EDIT.
#[derive(Debug, Clone, Copy)]
enum Stmt {
    Insert {
        count: u8,
    },
    Update {
        divisor: i64,
        rem: i64,
        v: i64,
    },
    Delete {
        divisor: i64,
        rem: i64,
    },
    /// INSERT OVERWRITE: every surviving row's `v` bumped by 1000.
    Overwrite,
    Compact,
    /// Explicit delta-tier spill (DESIGN.md §17): migrates the resident
    /// shadow runs into the LSM. A logical no-op — the oracle ignores it —
    /// but its op range is a mandatory crash window in the delta matrix.
    Spill,
}

const STMTS: &[Stmt] = &[
    Stmt::Insert { count: 8 },
    Stmt::Insert { count: 6 },
    Stmt::Update {
        divisor: 2,
        rem: 0,
        v: 7,
    },
    Stmt::Insert { count: 8 },
    Stmt::Delete { divisor: 3, rem: 1 },
    Stmt::Compact,
    Stmt::Insert { count: 5 },
    Stmt::Update {
        divisor: 5,
        rem: 2,
        v: -3,
    },
    Stmt::Overwrite,
    Stmt::Insert { count: 8 },
    Stmt::Delete { divisor: 2, rem: 1 },
    Stmt::Update {
        divisor: 3,
        rem: 0,
        v: 11,
    },
    Stmt::Compact,
    Stmt::Insert { count: 7 },
    Stmt::Update {
        divisor: 7,
        rem: 3,
        v: 21,
    },
];

/// The in-memory oracle: table content plus the id allocator.
#[derive(Debug, Clone, Default, PartialEq)]
struct Model {
    rows: Vec<(i64, i64)>,
    next_id: i64,
}

impl Model {
    /// Applies `stmt` to the oracle (the semantics every recovered state
    /// is judged against).
    fn step(&mut self, stmt: &Stmt) {
        match *stmt {
            Stmt::Insert { count } => {
                for _ in 0..count {
                    self.rows.push((self.next_id, self.next_id * 3));
                    self.next_id += 1;
                }
            }
            Stmt::Update { divisor, rem, v } => {
                for (id, val) in self.rows.iter_mut() {
                    if *id % divisor == rem {
                        *val = v;
                    }
                }
            }
            Stmt::Delete { divisor, rem } => self.rows.retain(|(id, _)| id % divisor != rem),
            Stmt::Overwrite => {
                for (_, val) in self.rows.iter_mut() {
                    *val += 1000;
                }
            }
            Stmt::Compact | Stmt::Spill => {}
        }
    }

    fn sorted(&self) -> Vec<(i64, i64)> {
        let mut v = self.rows.clone();
        v.sort_unstable();
        v
    }
}

/// Oracle states after 0, 1, ..., N statements.
fn oracle_states(stmts: &[Stmt]) -> Vec<Vec<(i64, i64)>> {
    let mut m = Model::default();
    let mut states = vec![m.sorted()];
    for stmt in stmts {
        m.step(stmt);
        states.push(m.sorted());
    }
    states
}

/// Applies one statement to the real table. `model` is the oracle state
/// *before* the statement (it supplies fresh ids and OVERWRITE content).
fn apply(table: &DualTableStore, model: &Model, stmt: &Stmt) -> dt_common::Result<()> {
    match *stmt {
        Stmt::Insert { count } => {
            let rows: Vec<Row> = (0..count as i64)
                .map(|i| {
                    let id = model.next_id + i;
                    vec![Value::Int64(id), Value::Int64(id * 3)]
                })
                .collect();
            table.insert_rows(rows).map(|_| ())
        }
        Stmt::Update { divisor, rem, v } => table
            .update(
                move |row| row[0].as_i64().unwrap() % divisor == rem,
                &[(1, Box::new(move |_| Value::Int64(v)))],
                RatioHint::Explicit(0.01),
            )
            .map(|_| ()),
        Stmt::Delete { divisor, rem } => table
            .delete(
                move |row| row[0].as_i64().unwrap() % divisor == rem,
                RatioHint::Explicit(0.01),
            )
            .map(|_| ()),
        Stmt::Overwrite => {
            let rows: Vec<Row> = model
                .rows
                .iter()
                .map(|&(id, v)| vec![Value::Int64(id), Value::Int64(v + 1000)])
                .collect();
            table.insert_overwrite(rows).map(|_| ())
        }
        Stmt::Compact => table.compact(),
        Stmt::Spill => table.spill_delta().map(|_| ()),
    }
}

/// The table's logical content as sorted `(id, v)` pairs.
fn scan_sorted(table: &DualTableStore) -> Result<Vec<(i64, i64)>, String> {
    let scanned = table.scan_all().map_err(|e| format!("scan: {e}"))?;
    let mut got: Vec<(i64, i64)> = scanned
        .iter()
        .map(|(_, row)| (row[0].as_i64().unwrap(), row[1].as_i64().unwrap()))
        .collect();
    got.sort_unstable();
    Ok(got)
}

/// The set of generation directories holding master files.
fn live_generations(env: &DualTableEnv) -> BTreeSet<String> {
    env.dfs
        .list(&format!("/warehouse/{TABLE}/"))
        .into_iter()
        .filter_map(|p| {
            p.split('/')
                .find(|seg| seg.starts_with("gen-"))
                .map(String::from)
        })
        .collect()
}

#[test]
fn crash_matrix_three_tiers() {
    // ------------------------------------------------------------------
    // Record run: learn the op horizon, the per-op class trace, and each
    // statement's op range. Setup runs disarmed so op 1 is the first
    // workload operation in both this run and every crash run.
    // ------------------------------------------------------------------
    let plan = Arc::new(FaultPlan::new(0xD7A1));
    plan.set_armed(false);
    let env = DualTableEnv::in_memory_faulty_with(plan.clone(), dfs_cfg(), kv_cfg())
        .expect("clean setup");
    let table = DualTableStore::create(&env, TABLE, schema(), table_cfg()).expect("clean create");
    plan.record_trace();
    plan.set_armed(true);

    let oracles = oracle_states(STMTS);
    let mut model = Model::default();
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for stmt in STMTS {
        let start = plan.ops_seen();
        apply(&table, &model, stmt).expect("record run must not fault");
        model.step(stmt);
        ranges.push((start + 1, plan.ops_seen()));
    }
    plan.set_armed(false);
    let trace = plan.take_trace();
    let total_ops = trace.len() as u64;
    assert_eq!(
        scan_sorted(&table).unwrap(),
        oracles[STMTS.len()],
        "record run diverged from oracle"
    );
    assert!(
        total_ops >= 200,
        "workload too small for a 200-point smoke matrix ({total_ops} ops)"
    );

    // Crash points inside OVERWRITE and COMPACT are mandatory: those are
    // the generation-swap critical sections.
    let must_cover: Vec<(u64, u64)> = STMTS
        .iter()
        .zip(&ranges)
        .filter(|(s, _)| matches!(s, Stmt::Overwrite | Stmt::Compact))
        .map(|(_, &r)| r)
        .collect();
    assert_eq!(
        must_cover.len(),
        3,
        "one OVERWRITE + two COMPACT statements"
    );
    assert!(
        must_cover.iter().all(|&(s, e)| s <= e),
        "empty critical range"
    );

    // ------------------------------------------------------------------
    // Matrix run: >= 200 jittered points by default, every op index under
    // CRASH_MATRIX_FULL=1.
    // ------------------------------------------------------------------
    let full = std::env::var("CRASH_MATRIX_FULL").is_ok_and(|v| v != "0");
    let target = if full { total_ops as usize } else { 200 };
    let points = select_crash_points(0x5EED_CA5B, total_ops, target, &must_cover);
    assert!(points.len() >= 200, "only {} crash points", points.len());
    for &(s, e) in &must_cover {
        assert!(
            points.iter().any(|&p| (s..=e).contains(&p)),
            "no crash point inside critical range ({s}, {e}]"
        );
    }

    let report = run_crash_matrix(&points, |k| {
        // Torn writes on even write ops exercise the salvage paths; a
        // plain crash fires on any op class.
        let kind = if trace[(k - 1) as usize] == IoOp::Write && k % 2 == 0 {
            FaultKind::TornWrite
        } else {
            FaultKind::Crash
        };
        let plan = Arc::new(FaultPlan::new(0xC0FFEE ^ k).fail_at(k, kind));
        plan.set_armed(false);
        let env = DualTableEnv::in_memory_faulty_with(plan.clone(), dfs_cfg(), kv_cfg())
            .map_err(|e| format!("setup: {e}"))?;
        let table = DualTableStore::create(&env, TABLE, schema(), table_cfg())
            .map_err(|e| format!("create: {e}"))?;
        plan.set_armed(true);

        let mut model = Model::default();
        let mut acked = 0usize;
        let mut crashed = false;
        for stmt in STMTS {
            match apply(&table, &model, stmt) {
                Ok(()) => {
                    model.step(stmt);
                    acked += 1;
                    // An Ok statement with a sticky crash behind it: the
                    // fault hit post-commit maintenance. The simulated
                    // process is dead; stop issuing statements.
                    if plan.is_crashed() {
                        crashed = true;
                        break;
                    }
                }
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
        }
        if !crashed && !plan.is_crashed() {
            return Ok(false); // self-healing absorbed the fault
        }

        // Restart the whole stack from its durable state and reopen the
        // table (which settles any deferred generation GC).
        plan.heal_and_disarm();
        env.crash_and_reopen()
            .map_err(|e| format!("recovery: {e}"))?;
        // The restart must purge the block cache: recovery can roll the
        // namespace back past commits, so any block cached pre-crash may
        // describe state the recovered namespace never saw. Every
        // post-recovery read below therefore re-fetches from durable
        // storage — a resurrected pre-crash block would surface as a
        // divergence from the oracle.
        if env.dfs.block_cache_entries() != 0 {
            return Err(format!(
                "{} pre-crash blocks survived recovery in the cache",
                env.dfs.block_cache_entries()
            ));
        }
        let table = DualTableStore::open(&env, TABLE, schema(), table_cfg())
            .map_err(|e| format!("reopen: {e}"))?;

        // Invariant 1: oracle(acked) or oracle(acked + 1), never a mix.
        let got = scan_sorted(&table)?;
        let committed_in_flight = acked + 1 < oracles.len() && got == oracles[acked + 1];
        if got != oracles[acked] && !committed_in_flight {
            return Err(format!(
                "recovered table matches neither oracle({acked}) nor oracle({}): {} rows",
                acked + 1,
                got.len()
            ));
        }
        if table.count().map_err(|e| format!("count: {e}"))? != got.len() as u64 {
            return Err("count() disagrees with scan".into());
        }

        // Invariant 2: one surviving master generation — a crash inside
        // OVERWRITE/COMPACT must land on the old or the new generation.
        let gens = live_generations(&env);
        if gens.len() > 1 {
            return Err(format!("mixed master generations after recovery: {gens:?}"));
        }

        // Invariant 3: no corruption or under-replication; orphans are
        // collected by scrub without touching logical content.
        let fsck = env.dfs.fsck().map_err(|e| format!("fsck: {e}"))?;
        if !fsck.healthy() {
            return Err(format!("fsck unhealthy after recovery: {fsck:?}"));
        }
        env.dfs.scrub().map_err(|e| format!("scrub: {e}"))?;
        let after = env
            .dfs
            .fsck()
            .map_err(|e| format!("post-scrub fsck: {e}"))?;
        if after.orphan_blocks != 0 {
            return Err(format!("{} orphans survived scrub", after.orphan_blocks));
        }
        if scan_sorted(&table)? != got {
            return Err("scrub changed logical table content".into());
        }
        Ok(true)
    });

    assert!(
        report.ok(),
        "crash matrix violations ({} of {} points):\n{:#?}",
        report.violations.len(),
        report.points,
        report.violations
    );
    // Nearly every point must actually kill the workload; a small
    // remainder may be absorbed by replica failover.
    assert!(
        report.crashes_injected * 10 >= report.points * 9,
        "only {} of {} crash points fired",
        report.crashes_injected,
        report.points
    );
}

// ---------------------------------------------------------------------------
// Delta-tier crash matrix (DESIGN.md §17).
//
// The statement matrix above runs with the delta tier off. This one
// re-runs a delta-heavy variant of the workload with EDIT cells routed
// through the WAL-backed shadow runs, and makes every spill window — the
// atomic WAL record carrying the migrated entries plus the retire marker,
// the memtable inserts behind it, and the WAL-rotation carry-forward — a
// mandatory crash range. Invariants are the statement matrix's three,
// plus:
//
// 4. **Replay reaches the tier** — recovery reconstructs the un-spilled
//    shadow entries from the WAL (the recovered scan equals the oracle,
//    which it cannot without them), and the replayed tier stays
//    *operable*: an explicit post-recovery spill drains it to zero bytes
//    without changing a single visible byte.
// ---------------------------------------------------------------------------

/// Delta-heavy workload: every EDIT burst is followed by an explicit
/// spill, and a COMPACT (which spills internally before folding) closes
/// each act. No OVERWRITE — master rewrites don't touch the tier.
const DSTMTS: &[Stmt] = &[
    Stmt::Insert { count: 8 },
    Stmt::Insert { count: 8 },
    Stmt::Update {
        divisor: 2,
        rem: 0,
        v: 7,
    },
    Stmt::Spill,
    Stmt::Insert { count: 6 },
    Stmt::Delete { divisor: 3, rem: 1 },
    Stmt::Update {
        divisor: 5,
        rem: 2,
        v: -3,
    },
    Stmt::Spill,
    Stmt::Compact,
    Stmt::Insert { count: 8 },
    Stmt::Update {
        divisor: 3,
        rem: 0,
        v: 11,
    },
    Stmt::Delete { divisor: 4, rem: 1 },
    Stmt::Spill,
    Stmt::Insert { count: 5 },
    Stmt::Update {
        divisor: 7,
        rem: 3,
        v: 21,
    },
];

/// [`table_cfg`] with the delta tier on. The budget is big enough that
/// spills happen only at the explicit [`Stmt::Spill`] points (and inside
/// COMPACT), keeping every crash run's op trace aligned with the record
/// run's.
fn delta_table_cfg() -> DualTableConfig {
    DualTableConfig {
        delta_bytes: 1 << 20,
        ..table_cfg()
    }
}

#[test]
fn crash_matrix_delta_tier() {
    // Record run (disarmed setup, armed workload) — see the first matrix.
    let plan = Arc::new(FaultPlan::new(0xD7A3));
    plan.set_armed(false);
    let env = DualTableEnv::in_memory_faulty_with(plan.clone(), dfs_cfg(), kv_cfg())
        .expect("clean setup");
    let table =
        DualTableStore::create(&env, TABLE, schema(), delta_table_cfg()).expect("clean create");
    plan.record_trace();
    plan.set_armed(true);

    let oracles = oracle_states(DSTMTS);
    let mut model = Model::default();
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for stmt in DSTMTS {
        let start = plan.ops_seen();
        apply(&table, &model, stmt).expect("record run must not fault");
        model.step(stmt);
        ranges.push((start + 1, plan.ops_seen()));
    }
    plan.set_armed(false);
    let trace = plan.take_trace();
    let total_ops = trace.len() as u64;
    assert_eq!(
        scan_sorted(&table).unwrap(),
        oracles[DSTMTS.len()],
        "record run diverged from oracle"
    );
    // The workload actually exercised the tier: the final EDIT burst left
    // resident entries, and the earlier spills migrated some.
    assert!(
        table.delta_bytes_used().unwrap() > 0,
        "trailing EDIT burst must leave resident delta entries"
    );
    assert!(
        env.kv.health_snapshot().delta_spills >= 3,
        "explicit spills did not reach the tier"
    );
    assert!(
        total_ops >= 100,
        "workload too small for the delta matrix ({total_ops} ops)"
    );

    // Every spill window is mandatory, as is the COMPACT (it spills
    // internally before folding, then swings the generation).
    let must_cover: Vec<(u64, u64)> = DSTMTS
        .iter()
        .zip(&ranges)
        .filter(|(s, _)| matches!(s, Stmt::Spill | Stmt::Compact))
        .map(|(_, &r)| r)
        .collect();
    assert_eq!(must_cover.len(), 4, "three spills + one compact");
    assert!(
        must_cover.iter().all(|&(s, e)| s <= e),
        "empty spill critical range: {must_cover:?}"
    );

    let full = std::env::var("CRASH_MATRIX_FULL").is_ok_and(|v| v != "0");
    let target = if full { total_ops as usize } else { 150 };
    let points = select_crash_points(0x5EED_CA5D, total_ops, target, &must_cover);
    for &(s, e) in &must_cover {
        assert!(
            points.iter().any(|&p| (s..=e).contains(&p)),
            "no crash point inside critical range ({s}, {e}]"
        );
    }

    let report = run_crash_matrix(&points, |k| {
        let kind = if trace[(k - 1) as usize] == IoOp::Write && k % 2 == 0 {
            FaultKind::TornWrite
        } else {
            FaultKind::Crash
        };
        let plan = Arc::new(FaultPlan::new(0xDE17A ^ k).fail_at(k, kind));
        plan.set_armed(false);
        let env = DualTableEnv::in_memory_faulty_with(plan.clone(), dfs_cfg(), kv_cfg())
            .map_err(|e| format!("setup: {e}"))?;
        let table = DualTableStore::create(&env, TABLE, schema(), delta_table_cfg())
            .map_err(|e| format!("create: {e}"))?;
        plan.set_armed(true);

        let mut model = Model::default();
        let mut acked = 0usize;
        let mut crashed = false;
        for stmt in DSTMTS {
            match apply(&table, &model, stmt) {
                Ok(()) => {
                    model.step(stmt);
                    acked += 1;
                    if plan.is_crashed() {
                        crashed = true;
                        break;
                    }
                }
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
        }
        if !crashed && !plan.is_crashed() {
            return Ok(false); // self-healing absorbed the fault
        }

        plan.heal_and_disarm();
        env.crash_and_reopen()
            .map_err(|e| format!("recovery: {e}"))?;
        let table = DualTableStore::open(&env, TABLE, schema(), delta_table_cfg())
            .map_err(|e| format!("reopen: {e}"))?;

        // Invariant 1: oracle(acked) or oracle(acked + 1), never a mix —
        // and the recovered scan can only match if WAL replay rebuilt the
        // un-spilled shadow entries (the trailing EDIT bursts live nowhere
        // else).
        let got = scan_sorted(&table)?;
        let committed_in_flight = acked + 1 < oracles.len() && got == oracles[acked + 1];
        if got != oracles[acked] && !committed_in_flight {
            return Err(format!(
                "recovered table matches neither oracle({acked}) nor oracle({}): {} rows",
                acked + 1,
                got.len()
            ));
        }
        if table.count().map_err(|e| format!("count: {e}"))? != got.len() as u64 {
            return Err("count() disagrees with scan".into());
        }

        // Invariant 2: one surviving master generation.
        let gens = live_generations(&env);
        if gens.len() > 1 {
            return Err(format!("mixed master generations after recovery: {gens:?}"));
        }

        // Invariant 3: physical hygiene.
        let fsck = env.dfs.fsck().map_err(|e| format!("fsck: {e}"))?;
        if !fsck.healthy() {
            return Err(format!("fsck unhealthy after recovery: {fsck:?}"));
        }
        env.dfs.scrub().map_err(|e| format!("scrub: {e}"))?;

        // Invariant 4: the replayed tier is operable — an explicit spill
        // drains it completely and changes nothing visible.
        table
            .spill_delta()
            .map_err(|e| format!("post-recovery spill: {e}"))?;
        if table
            .delta_bytes_used()
            .map_err(|e| format!("delta gauge: {e}"))?
            != 0
        {
            return Err("post-recovery spill left resident delta bytes".into());
        }
        if scan_sorted(&table)? != got {
            return Err("post-recovery spill changed logical table content".into());
        }
        Ok(true)
    });

    assert!(
        report.ok(),
        "delta crash matrix violations ({} of {} points):\n{:#?}",
        report.violations.len(),
        report.points,
        report.violations
    );
    assert!(
        report.crashes_injected * 10 >= report.points * 9,
        "only {} of {} crash points fired",
        report.crashes_injected,
        report.points
    );
}

// ---------------------------------------------------------------------------
// Interleaved-transaction crash matrix (DESIGN.md §13).
//
// The first matrix crashes inside *statements*; this one crashes inside a
// fixed interleaving of concurrent MVCC *sessions*: an autocommit writer, a
// pinned reader snapshot, two explicit transactions, and a two-phase
// compaction whose pointer swing happens while the reader is still pinned
// on the old generation (forcing deferred GC, then a mid-GC window when the
// reader drops). Crash points land between a transaction's conflict check
// and its commit batch, mid-pointer-swing, and mid-GC. Invariants:
//
// 1. **Transaction prefix durability** — the recovered table equals the
//    oracle after exactly `acked` script steps (or `acked + 1` when the
//    in-flight step committed before the fault surfaced). A transaction is
//    all-in or all-out: T1 buffers an UPDATE plus a two-master-file INSERT,
//    so a partial commit (files without patches, one file of two) matches
//    no oracle state and fails the matrix. Staged files orphaned between
//    the durable intent write and the commit batch must be rolled back by
//    intent recovery on reopen — an absent visibility record means always
//    visible, so a leaked staged file would surface as phantom rows.
// 2. **Single generation, no pinned generation deleted** — while the
//    process lives, the pinned reader keeps byte-stable reads across the
//    swing (checked in-script); after recovery exactly one generation
//    directory survives and the deferred-GC ledger is empty (pins do not
//    outlive a process).
// 3. **Physical hygiene** — fsck healthy, scrub collects every orphan and
//    leaves logical content untouched.
// ---------------------------------------------------------------------------

/// One step of the interleaved multi-session script. The script is fixed
/// (not seeded): determinism is what lets the record run's op ranges
/// transfer to the crash runs, and the interesting windows — commit,
/// swing, GC — are guaranteed by construction rather than by search.
#[derive(Debug, Clone, Copy, PartialEq)]
enum TStep {
    /// Autocommit EDIT: `v += 100 WHERE id % 4 == 0`.
    AutoUpdate,
    /// Pin a reader snapshot (holds the current generation alive).
    PinReader,
    BeginT1,
    /// Buffered in T1: `v = -5 WHERE id % 3 == 1`.
    T1Update,
    /// Buffered in T1: ids 100..110 — two master files, so commit
    /// atomicity spans multiple staged files.
    T1Insert,
    /// Conflict check → intent write → staged files → commit batch.
    T1Commit,
    /// Build the replacement generation off to the side.
    BeginCompact,
    /// Pointer swing with the reader still pinned: GC must defer.
    FinishSwing,
    /// Autocommit INSERT ids 200..204 (one master file).
    AutoInsert,
    BeginT2,
    /// Buffered in T2: `v += 7 WHERE id % 5 == 2`.
    T2Update,
    /// The pinned reader must still see its pin-time bytes post-swing.
    ReaderCheck,
    /// Dropping the pin drains the retired generation: mid-GC window.
    DropReader,
    T2Commit,
    /// Blocking compact with no pins: immediate GC of the old generation.
    FinalCompact,
}

const TSTEPS: &[TStep] = &[
    TStep::AutoUpdate,
    TStep::PinReader,
    TStep::BeginT1,
    TStep::T1Update,
    TStep::T1Insert,
    TStep::T1Commit,
    TStep::BeginCompact,
    TStep::FinishSwing,
    TStep::AutoInsert,
    TStep::BeginT2,
    TStep::T2Update,
    TStep::ReaderCheck,
    TStep::DropReader,
    TStep::T2Commit,
    TStep::FinalCompact,
];

/// Live session objects of the script. On a simulated crash the whole
/// context is `mem::forget`-ed: a dead process never runs Drop glue
/// (rollback, abandon, unpin), and running it would model a graceful
/// shutdown instead of a crash.
#[derive(Default)]
struct TxnCtx {
    reader: Option<Snapshot>,
    reader_expect: Vec<(i64, i64)>,
    t1: Option<Transaction>,
    t2: Option<Transaction>,
    job: Option<RewriteJob>,
}

const TXN_SEED_ROWS: i64 = 20;

/// Oracle states after 0, 1, ..., N script steps. Index 0 is the disarmed
/// setup seed (ids `0..20`, `v = 3 * id`); buffered transaction writes
/// only land at their commit step.
fn txn_oracle_states() -> Vec<Vec<(i64, i64)>> {
    let mut m: std::collections::BTreeMap<i64, i64> =
        (0..TXN_SEED_ROWS).map(|id| (id, id * 3)).collect();
    let snap = |m: &std::collections::BTreeMap<i64, i64>| {
        m.iter().map(|(&id, &v)| (id, v)).collect::<Vec<_>>()
    };
    let mut states = vec![snap(&m)];
    for step in TSTEPS {
        match step {
            TStep::AutoUpdate => {
                m.iter_mut().for_each(|(id, v)| {
                    if id % 4 == 0 {
                        *v += 100;
                    }
                });
            }
            TStep::T1Commit => {
                m.iter_mut().for_each(|(id, v)| {
                    if id % 3 == 1 {
                        *v = -5;
                    }
                });
                m.extend((100..110).map(|id| (id, id * 2)));
            }
            TStep::AutoInsert => m.extend((200..204).map(|id| (id, id * 2))),
            TStep::T2Commit => {
                m.iter_mut().for_each(|(id, v)| {
                    if id % 5 == 2 {
                        *v += 7;
                    }
                });
            }
            _ => {}
        }
        states.push(snap(&m));
    }
    states
}

/// Sorted `(id, v)` pairs visible to a pinned snapshot.
fn snap_sorted(snap: &Snapshot) -> Result<Vec<(i64, i64)>, String> {
    let scanned = snap.scan_all().map_err(|e| format!("pinned scan: {e}"))?;
    let mut got: Vec<(i64, i64)> = scanned
        .iter()
        .map(|(_, row)| (row[0].as_i64().unwrap(), row[1].as_i64().unwrap()))
        .collect();
    got.sort_unstable();
    Ok(got)
}

/// Runs one script step. `VIOLATION:`-prefixed errors are matrix failures
/// (wrong bytes observed); everything else is treated as the injected
/// fault surfacing, i.e. the crash.
fn apply_tstep(table: &DualTableStore, ctx: &mut TxnCtx, step: TStep) -> Result<(), String> {
    let io = |e: dt_common::Error| format!("io: {e}");
    match step {
        TStep::AutoUpdate => table
            .update(
                |row| row[0].as_i64().unwrap() % 4 == 0,
                &[(
                    1,
                    Box::new(|row: &Row| Value::Int64(row[1].as_i64().unwrap() + 100)),
                )],
                RatioHint::Explicit(0.01),
            )
            .map(|_| ())
            .map_err(io),
        TStep::PinReader => {
            let snap = table.begin_snapshot().map_err(io)?;
            ctx.reader_expect = snap_sorted(&snap)?;
            ctx.reader = Some(snap);
            Ok(())
        }
        TStep::BeginT1 => {
            ctx.t1 = Some(table.begin_transaction().map_err(io)?);
            Ok(())
        }
        TStep::T1Update => ctx
            .t1
            .as_mut()
            .unwrap()
            .update(
                |row| row[0].as_i64().unwrap() % 3 == 1,
                &[(1, Box::new(|_: &Row| Value::Int64(-5)))],
            )
            .map(|_| ())
            .map_err(io),
        TStep::T1Insert => {
            let rows: Vec<Row> = (100..110)
                .map(|id| vec![Value::Int64(id), Value::Int64(id * 2)])
                .collect();
            ctx.t1
                .as_mut()
                .unwrap()
                .insert(rows)
                .map(|_| ())
                .map_err(io)
        }
        TStep::T1Commit => ctx.t1.take().unwrap().commit().map(|_| ()).map_err(io),
        TStep::BeginCompact => {
            ctx.job = Some(table.begin_compact().map_err(io)?);
            Ok(())
        }
        TStep::FinishSwing => ctx.job.take().unwrap().finish().map(|_| ()).map_err(io),
        TStep::AutoInsert => {
            let rows: Vec<Row> = (200..204)
                .map(|id| vec![Value::Int64(id), Value::Int64(id * 2)])
                .collect();
            table.insert_rows(rows).map(|_| ()).map_err(io)
        }
        TStep::BeginT2 => {
            ctx.t2 = Some(table.begin_transaction().map_err(io)?);
            Ok(())
        }
        TStep::T2Update => ctx
            .t2
            .as_mut()
            .unwrap()
            .update(
                |row| row[0].as_i64().unwrap() % 5 == 2,
                &[(
                    1,
                    Box::new(|row: &Row| Value::Int64(row[1].as_i64().unwrap() + 7)),
                )],
            )
            .map(|_| ())
            .map_err(io),
        TStep::ReaderCheck => {
            let got = snap_sorted(ctx.reader.as_ref().unwrap())?;
            if got != ctx.reader_expect {
                return Err(format!(
                    "VIOLATION: pinned reader drifted across the swing: \
                     {} rows at pin, {} now",
                    ctx.reader_expect.len(),
                    got.len()
                ));
            }
            Ok(())
        }
        TStep::DropReader => {
            ctx.reader = None; // unpin → the retired generation drains
            Ok(())
        }
        TStep::T2Commit => ctx.t2.take().unwrap().commit().map(|_| ()).map_err(io),
        TStep::FinalCompact => table.compact().map_err(io),
    }
}

/// Seeds the table (disarmed in both the record run and every crash run,
/// so op indices align).
fn txn_seed(table: &DualTableStore) {
    let rows: Vec<Row> = (0..TXN_SEED_ROWS)
        .map(|id| vec![Value::Int64(id), Value::Int64(id * 3)])
        .collect();
    table.insert_rows(rows).expect("disarmed seed insert");
}

#[test]
fn crash_matrix_interleaved_transactions() {
    // Record run: learn the op horizon and each step's (start, end] range.
    let plan = Arc::new(FaultPlan::new(0xD7A2));
    plan.set_armed(false);
    let env = DualTableEnv::in_memory_faulty_with(plan.clone(), dfs_cfg(), kv_cfg())
        .expect("clean setup");
    let table = DualTableStore::create(&env, TABLE, schema(), table_cfg()).expect("clean create");
    txn_seed(&table);
    plan.record_trace();
    plan.set_armed(true);

    let oracles = txn_oracle_states();
    let mut ctx = TxnCtx::default();
    let mut ranges: Vec<(u64, u64)> = Vec::new();
    for step in TSTEPS {
        let start = plan.ops_seen();
        apply_tstep(&table, &mut ctx, *step).expect("record run must not fault");
        ranges.push((start + 1, plan.ops_seen()));
    }
    plan.set_armed(false);
    let trace = plan.take_trace();
    let total_ops = trace.len() as u64;
    assert_eq!(
        scan_sorted(&table).unwrap(),
        oracles[TSTEPS.len()],
        "record run diverged from oracle"
    );
    // The script must have exercised the deferred-GC path: the swing ran
    // under a pin, and both retired generations were eventually swept.
    let health = env.health.snapshot();
    assert!(health.generations_deferred >= 1, "swing did not defer GC");
    assert!(health.generations_gcd >= 2, "retired generations not swept");
    assert_eq!(table.pinned_snapshots(), 0);
    assert_eq!(table.retired_generations(), 0);
    assert!(
        total_ops >= 100,
        "script too small for the transaction matrix ({total_ops} ops)"
    );

    // Mandatory windows: the commit of a multi-file transaction, the
    // pointer swing under a pinned reader, and the pin-drop GC drain.
    let must_cover: Vec<(u64, u64)> = TSTEPS
        .iter()
        .zip(&ranges)
        .filter(|(s, _)| matches!(s, TStep::T1Commit | TStep::FinishSwing | TStep::DropReader))
        .map(|(_, &r)| r)
        .collect();
    assert_eq!(must_cover.len(), 3);
    for (&(s, e), name) in must_cover.iter().zip(["commit", "swing", "gc"]) {
        assert!(s <= e, "empty {name} critical range ({s}, {e}]");
    }

    let full = std::env::var("CRASH_MATRIX_FULL").is_ok_and(|v| v != "0");
    let target = if full { total_ops as usize } else { 150 };
    let points = select_crash_points(0x5EED_CA5C, total_ops, target, &must_cover);
    for &(s, e) in &must_cover {
        assert!(
            points.iter().any(|&p| (s..=e).contains(&p)),
            "no crash point inside critical range ({s}, {e}]"
        );
    }

    let report = run_crash_matrix(&points, |k| {
        let kind = if trace[(k - 1) as usize] == IoOp::Write && k % 2 == 0 {
            FaultKind::TornWrite
        } else {
            FaultKind::Crash
        };
        let plan = Arc::new(FaultPlan::new(0xBADC0DE ^ k).fail_at(k, kind));
        plan.set_armed(false);
        let env = DualTableEnv::in_memory_faulty_with(plan.clone(), dfs_cfg(), kv_cfg())
            .map_err(|e| format!("setup: {e}"))?;
        let table = DualTableStore::create(&env, TABLE, schema(), table_cfg())
            .map_err(|e| format!("create: {e}"))?;
        txn_seed(&table);
        plan.set_armed(true);

        let mut ctx = TxnCtx::default();
        let mut acked = 0usize;
        let mut crashed = false;
        for step in TSTEPS {
            match apply_tstep(&table, &mut ctx, *step) {
                Ok(()) => {
                    acked += 1;
                    if plan.is_crashed() {
                        crashed = true;
                        break;
                    }
                }
                Err(msg) if msg.starts_with("VIOLATION:") => return Err(msg),
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
        }
        if !crashed && !plan.is_crashed() {
            return Ok(false); // self-healing absorbed the fault
        }
        // The process is dead: session objects never run their Drop glue
        // (rollback / abandon / unpin would model a graceful shutdown).
        std::mem::forget(ctx);

        plan.heal_and_disarm();
        env.crash_and_reopen()
            .map_err(|e| format!("recovery: {e}"))?;
        let table = DualTableStore::open(&env, TABLE, schema(), table_cfg())
            .map_err(|e| format!("reopen: {e}"))?;

        // Invariant 1: a prefix of whole transactions, never a torn one.
        let got = scan_sorted(&table)?;
        let committed_in_flight = acked + 1 < oracles.len() && got == oracles[acked + 1];
        if got != oracles[acked] && !committed_in_flight {
            return Err(format!(
                "recovered table matches neither oracle({acked}) nor oracle({}): {} rows",
                acked + 1,
                got.len()
            ));
        }
        if table.count().map_err(|e| format!("count: {e}"))? != got.len() as u64 {
            return Err("count() disagrees with scan".into());
        }

        // Invariant 2: one surviving generation; pins die with the
        // process, so reopen must settle any GC the crash deferred.
        let gens = live_generations(&env);
        if gens.len() > 1 {
            return Err(format!("mixed master generations after recovery: {gens:?}"));
        }
        if table.pinned_snapshots() != 0 {
            return Err("phantom pin survived the crash".into());
        }
        if table.retired_generations() != 0 {
            return Err("deferred-GC ledger not settled by reopen".into());
        }

        // Invariant 3: physical hygiene.
        let fsck = env.dfs.fsck().map_err(|e| format!("fsck: {e}"))?;
        if !fsck.healthy() {
            return Err(format!("fsck unhealthy after recovery: {fsck:?}"));
        }
        env.dfs.scrub().map_err(|e| format!("scrub: {e}"))?;
        let after = env
            .dfs
            .fsck()
            .map_err(|e| format!("post-scrub fsck: {e}"))?;
        if after.orphan_blocks != 0 {
            return Err(format!("{} orphans survived scrub", after.orphan_blocks));
        }
        if scan_sorted(&table)? != got {
            return Err("scrub changed logical table content".into());
        }
        Ok(true)
    });

    assert!(
        report.ok(),
        "transaction crash matrix violations ({} of {} points):\n{:#?}",
        report.violations.len(),
        report.points,
        report.violations
    );
    assert!(
        report.crashes_injected * 10 >= report.points * 9,
        "only {} of {} crash points fired",
        report.crashes_injected,
        report.points
    );
}
