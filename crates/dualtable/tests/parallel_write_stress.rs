//! The parallel write path under stress (DESIGN.md §12).
//!
//! The rewrite fan-out (OVERWRITE plans, INSERT OVERWRITE, COMPACT) must
//! be invisible at every observation point: its output equals the
//! sequential writer's row for row, concurrent readers and EDIT writers
//! see the same states they would around a single-threaded rewrite, and a
//! crash anywhere inside the fan-out — including the commit step — leaves
//! exactly the old or the new generation, never a mix.

use std::sync::Arc;

use dt_common::fault::{FaultKind, FaultPlan};
use dt_common::{DataType, Schema, Value};
use dt_dfs::DfsConfig;
use dt_kvstore::KvConfig;
use dualtable::{DualTableConfig, DualTableEnv, DualTableStore, PlanMode, RatioHint};

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)])
}

fn config(write_threads: usize) -> DualTableConfig {
    DualTableConfig {
        rows_per_file: 32,
        write_threads,
        ..DualTableConfig::default()
    }
}

fn seeded(env: &DualTableEnv, n: i64, cfg: DualTableConfig) -> DualTableStore {
    let t = DualTableStore::create(env, "t", schema(), cfg).unwrap();
    t.insert_rows((0..n).map(|i| vec![Value::Int64(i), Value::Int64(i * 2)]))
        .unwrap();
    t
}

fn rows_of(t: &DualTableStore) -> Vec<(i64, i64)> {
    t.scan_all()
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect()
}

/// Same workload, one writer thread vs four: COMPACT output must be
/// identical in content *and* order, and the record-ID scan order of the
/// parallel output must still ascend (partition-ordered ID reservation).
#[test]
fn parallel_compact_matches_sequential() {
    let mut outputs = Vec::new();
    for threads in [1usize, 4] {
        let env = DualTableEnv::in_memory();
        let t = seeded(&env, 500, config(threads));
        t.update(
            |r| r[0].as_i64().unwrap() % 7 == 0,
            &[(1, Box::new(|_| Value::Int64(-1)))],
            RatioHint::Explicit(0.01),
        )
        .unwrap();
        t.delete(
            |r| r[0].as_i64().unwrap() % 11 == 3,
            RatioHint::Explicit(0.01),
        )
        .unwrap();
        t.compact().unwrap();
        let ids: Vec<_> = t
            .scan_all()
            .unwrap()
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "record IDs ascend");
        let stats = t.stats().unwrap();
        assert_eq!(stats.attached_entries, 0, "compact clears attached");
        outputs.push(rows_of(&t));
        if threads > 1 {
            assert!(
                env.health.snapshot().write_workers_used >= 2,
                "parallel compact must report its fan-out"
            );
            assert!(env.dfs.stats().snapshot().write_workers_used >= 2);
        } else {
            assert_eq!(env.health.snapshot().write_workers_used, 0);
        }
    }
    assert_eq!(outputs[0], outputs[1], "parallel compact diverged");
}

/// OVERWRITE-plan UPDATE and DELETE through the fan-out equal their
/// sequential runs, counts included.
#[test]
fn parallel_overwrite_matches_sequential() {
    let mut outputs = Vec::new();
    for threads in [1usize, 4] {
        let env = DualTableEnv::in_memory();
        let mut cfg = config(threads);
        cfg.plan_mode = PlanMode::AlwaysOverwrite;
        let t = seeded(&env, 400, cfg);
        let up = t
            .update(
                |r| r[0].as_i64().unwrap() % 2 == 0,
                &[(
                    1,
                    Box::new(|r: &dt_common::Row| Value::Int64(r[0].as_i64().unwrap() + 1000)),
                )],
                RatioHint::Explicit(0.5),
            )
            .unwrap();
        assert_eq!(up.rows_matched, 200);
        assert_eq!(up.rows_scanned, 400);
        let del = t
            .delete(|r| r[0].as_i64().unwrap() < 100, RatioHint::Explicit(0.25))
            .unwrap();
        assert_eq!(del.rows_matched, 100);
        outputs.push(rows_of(&t));
    }
    assert_eq!(outputs[0], outputs[1], "parallel overwrite diverged");
}

/// INSERT OVERWRITE (a materialized row set fanned out at whole-file
/// boundaries) also matches the sequential writer.
#[test]
fn parallel_insert_overwrite_matches_sequential() {
    let mut outputs = Vec::new();
    for threads in [1usize, 4] {
        let env = DualTableEnv::in_memory();
        let t = seeded(&env, 100, config(threads));
        t.insert_overwrite((0..300).map(|i| vec![Value::Int64(i), Value::Int64(7 * i)]))
            .unwrap();
        assert_eq!(t.count().unwrap(), 300);
        outputs.push(rows_of(&t));
    }
    assert_eq!(outputs[0], outputs[1], "parallel insert overwrite diverged");
}

/// A bad UPDATE value through the OVERWRITE plan must surface as a schema
/// error (not silently fall back to EDIT) and leave no half-built
/// generation behind.
#[test]
fn parallel_overwrite_schema_error_propagates() {
    let env = DualTableEnv::in_memory();
    let mut cfg = config(4);
    cfg.plan_mode = PlanMode::AlwaysOverwrite;
    let t = seeded(&env, 200, cfg);
    let before = rows_of(&t);
    let err = t
        .update(
            |_| true,
            &[(1, Box::new(|_| Value::Utf8("not an int".into())))],
            RatioHint::Explicit(1.0),
        )
        .unwrap_err();
    assert!(
        matches!(err, dt_common::Error::Schema(_)),
        "expected schema error, got {err}"
    );
    assert_eq!(rows_of(&t), before, "failed statement must change nothing");
    assert_eq!(
        env.health.snapshot().plan_fallbacks,
        0,
        "schema failure is not a plan fallback"
    );
    // The aborted generation was swept: exactly one generation dir lives.
    let gens: std::collections::BTreeSet<String> = env
        .dfs
        .list("/warehouse/t/")
        .into_iter()
        .filter_map(|p| {
            p.split('/')
                .find(|s| s.starts_with("gen-"))
                .map(String::from)
        })
        .collect();
    assert!(gens.len() <= 1, "stale generations left behind: {gens:?}");
}

/// Mixed DML and SELECT traffic racing a parallel COMPACT: the ops lock
/// serializes statements around the rewrite, so the final state must
/// equal the oracle no matter how the threads interleave, and every scan
/// observes a complete, untorn row set.
#[test]
fn mixed_dml_during_parallel_compact_matches_oracle() {
    let env = DualTableEnv::in_memory();
    let t = seeded(&env, 600, config(4));

    std::thread::scope(|scope| {
        let updater = {
            let t = t.clone();
            scope.spawn(move || {
                for round in 1..=10i64 {
                    t.update(
                        move |r| r[0].as_i64().unwrap() % 3 == 0,
                        &[(1, Box::new(move |_| Value::Int64(round)))],
                        RatioHint::Explicit(0.05),
                    )
                    .unwrap();
                }
            })
        };
        let deleter = {
            let t = t.clone();
            scope.spawn(move || {
                t.delete(
                    |r| r[0].as_i64().unwrap() % 5 == 4,
                    RatioHint::Explicit(0.02),
                )
                .unwrap();
            })
        };
        let compactor = {
            let t = t.clone();
            scope.spawn(move || {
                for _ in 0..3 {
                    t.compact().unwrap();
                }
            })
        };
        for _ in 0..10 {
            let rows = t.scan_all().unwrap();
            assert!(
                rows.len() == 600 || rows.len() == 480,
                "torn scan: {}",
                rows.len()
            );
            assert!(rows.iter().all(|(_, r)| r.len() == 2));
        }
        updater.join().unwrap();
        deleter.join().unwrap();
        compactor.join().unwrap();
    });

    // Oracle: ids without id % 5 == 4; v = 10 where id % 3 == 0 (the last
    // update round), else the seeded 2·id.
    let expect: Vec<(i64, i64)> = (0..600)
        .filter(|id| id % 5 != 4)
        .map(|id| (id, if id % 3 == 0 { 10 } else { id * 2 }))
        .collect();
    let mut got = rows_of(&t);
    got.sort_unstable();
    assert_eq!(got, expect);
    assert!(env.health.snapshot().write_workers_used >= 2);
}

/// Crash points swept across a parallel COMPACT — including the fan-out
/// writes and the commit step: recovery must always land on a single
/// generation whose content equals the table before the compact (COMPACT
/// never changes logical content), and the DFS must check out clean.
#[test]
fn crash_mid_parallel_compact_never_tears() {
    let dfs_cfg = DfsConfig {
        chunk_size: 64,
        replication: 2,
        ..DfsConfig::default()
    };
    let expect: Vec<(i64, i64)> = (0..160)
        .filter(|id| id % 4 != 1)
        .map(|id| (id, id * 2))
        .collect();
    let mut crashes = 0u32;
    for k in (1..240).step_by(3) {
        let kind = if k % 2 == 0 {
            FaultKind::TornWrite
        } else {
            FaultKind::Crash
        };
        let plan = Arc::new(FaultPlan::new(0xBEEF ^ k).fail_at(k, kind));
        plan.set_armed(false);
        let env = DualTableEnv::in_memory_faulty_with(plan.clone(), dfs_cfg, KvConfig::default())
            .unwrap();
        let mut cfg = config(3);
        cfg.rows_per_file = 16;
        let t = DualTableStore::create(&env, "t", schema(), cfg.clone()).unwrap();
        t.insert_rows((0..160).map(|i| vec![Value::Int64(i), Value::Int64(i * 2)]))
            .unwrap();
        t.delete(
            |r| r[0].as_i64().unwrap() % 4 == 1,
            RatioHint::Explicit(0.01),
        )
        .unwrap();
        // Arm only for the compact, so every crash point lands inside the
        // parallel fan-out or its commit/cleanup step.
        plan.set_armed(true);
        let result = t.compact();
        if result.is_ok() && !plan.is_crashed() {
            continue; // fault absorbed by retry/failover
        }
        crashes += 1;
        plan.heal_and_disarm();
        env.crash_and_reopen().unwrap();
        let t = DualTableStore::open(&env, "t", schema(), cfg).unwrap();
        let mut got = rows_of(&t);
        got.sort_unstable();
        assert_eq!(got, expect, "crash at op {k} tore the table");
        let gens: std::collections::BTreeSet<String> = env
            .dfs
            .list("/warehouse/t/")
            .into_iter()
            .filter_map(|p| {
                p.split('/')
                    .find(|s| s.starts_with("gen-"))
                    .map(String::from)
            })
            .collect();
        assert!(
            gens.len() <= 1,
            "mixed generations after crash at op {k}: {gens:?}"
        );
        let fsck = env.dfs.fsck().unwrap();
        assert!(
            fsck.healthy(),
            "unhealthy DFS after crash at op {k}: {fsck:?}"
        );
    }
    assert!(crashes >= 20, "only {crashes} crash points actually fired");
}

// ----------------------------------------------------------------------
// Transaction-level checking (DESIGN.md §13): real threads, real races.
// ----------------------------------------------------------------------

/// The classic lost-update proof, threaded. K writer threads each apply M
/// read-modify-write increments to the same row through snapshot-isolation
/// transactions, retrying on first-committer-wins conflicts, while a
/// background compactor swings generations under them. Under FCW every
/// increment lands exactly once: the final value must be K·M, and the
/// health counters must account for exactly the conflicts the threads
/// observed — no silent (uncounted, or worse, unconflicted-and-lost)
/// retries.
#[test]
fn transactional_increments_never_lose_updates() {
    use std::sync::atomic::{AtomicU64, Ordering};

    const WRITERS: usize = 4;
    const INCREMENTS: usize = 25;

    let env = DualTableEnv::in_memory();
    let mut cfg = config(2);
    cfg.plan_mode = PlanMode::AlwaysEdit;
    let t = seeded(&env, 8, cfg);
    let observed_conflicts = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let t = t.clone();
            let observed = &observed_conflicts;
            scope.spawn(move || {
                for _ in 0..INCREMENTS {
                    loop {
                        let mut txn = t.begin_transaction().unwrap();
                        txn.update(
                            |r| r[0].as_i64().unwrap() == 0,
                            &[(
                                1,
                                Box::new(|r: &dt_common::Row| {
                                    Value::Int64(r[1].as_i64().unwrap() + 1)
                                }),
                            )],
                        )
                        .unwrap();
                        match txn.commit() {
                            Ok(commit_ts) => {
                                assert!(commit_ts > 0, "commit timestamp must tick");
                                break;
                            }
                            Err(err) => {
                                assert!(
                                    err.is_conflict(),
                                    "retry loop hit a non-conflict error: {err}"
                                );
                                observed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            });
        }
        let t = t.clone();
        scope.spawn(move || {
            for _ in 0..3 {
                t.compact().unwrap();
                std::thread::yield_now();
            }
        });
    });

    let rows = rows_of(&t);
    let hot = rows.iter().find(|(id, _)| *id == 0).unwrap();
    assert_eq!(
        hot.1,
        (WRITERS * INCREMENTS) as i64,
        "lost update: {} of {} increments survived",
        hot.1,
        WRITERS * INCREMENTS
    );
    // Every other row kept its seeded value.
    for (id, v) in rows.iter().filter(|(id, _)| *id != 0) {
        assert_eq!(*v, id * 2, "row {id} corrupted by the increment storm");
    }
    // Exact conflict accounting: each observed retryable error bumped
    // exactly one of the two conflict counters, and nothing else did
    // (the blocking compactor holds the ops lock, so it cannot lose).
    let health = env.health.snapshot();
    assert_eq!(
        health.ww_conflicts + health.swing_conflicts,
        observed_conflicts.load(Ordering::Relaxed),
        "counters disagree with the conflicts the threads saw"
    );
    assert_eq!(health.cleanup_failures, 0);
    assert_eq!(t.pinned_snapshots(), 0, "all transaction pins released");
}

/// Disjoint write sets never conflict: K threads each own a 100-id range
/// and push M transactions over it concurrently. Every commit must
/// succeed first try (zero conflicts table-wide), and the merged result
/// is exactly every thread's increments applied.
#[test]
fn disjoint_transactions_commit_without_conflict() {
    const WRITERS: i64 = 4;
    const ROUNDS: i64 = 5;
    const RANGE: i64 = 100;

    let env = DualTableEnv::in_memory();
    let mut cfg = config(2);
    cfg.plan_mode = PlanMode::AlwaysEdit;
    let t = seeded(&env, WRITERS * RANGE, cfg);

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let t = t.clone();
            scope.spawn(move || {
                let (lo, hi) = (w * RANGE, (w + 1) * RANGE);
                for _ in 0..ROUNDS {
                    let mut txn = t.begin_transaction().unwrap();
                    let n = txn
                        .update(
                            move |r| (lo..hi).contains(&r[0].as_i64().unwrap()),
                            &[(
                                1,
                                Box::new(|r: &dt_common::Row| {
                                    Value::Int64(r[1].as_i64().unwrap() + 1)
                                }),
                            )],
                        )
                        .unwrap();
                    assert_eq!(n, RANGE as u64);
                    txn.commit().expect("disjoint write sets cannot conflict");
                }
            });
        }
    });

    let mut got = rows_of(&t);
    got.sort_unstable();
    let expect: Vec<(i64, i64)> = (0..WRITERS * RANGE)
        .map(|id| (id, id * 2 + ROUNDS))
        .collect();
    assert_eq!(got, expect);
    let health = env.health.snapshot();
    assert_eq!(health.ww_conflicts, 0, "phantom write-write conflict");
    assert_eq!(health.swing_conflicts, 0, "phantom swing conflict");
}
