//! Cache-coherence suite for the read-acceleration layer (DESIGN.md §10).
//!
//! Every test here runs the same workload twice — once on a stack with the
//! block and footer caches enabled (the default) and once with both
//! disabled — or compares warm-cache reads against counters. Caching is an
//! optimization, never a semantic: results must be byte-identical either
//! way, and a warm cache must eliminate physical reads entirely.

use dt_common::{DataType, Row, Schema, Value};
use dt_dfs::{Dfs, DfsConfig};
use dt_kvstore::{KvCluster, KvConfig};
use dt_orcfile::{ColumnPredicate, PredicateOp, WriterOptions};
use dualtable::{
    DualTableConfig, DualTableEnv, DualTableStore, PlanMode, RatioHint, UnionReadOptions,
};

fn schema() -> Schema {
    Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)])
}

fn row(i: i64) -> Row {
    vec![Value::Int64(i), Value::Int64(i * 10)]
}

fn table_cfg() -> DualTableConfig {
    DualTableConfig {
        rows_per_file: 32,
        plan_mode: PlanMode::AlwaysEdit,
        writer: WriterOptions {
            stripe_rows: 8,
            ..WriterOptions::default()
        },
        ..DualTableConfig::default()
    }
}

/// A fresh in-memory stack; `cached = false` disables the DFS block cache
/// and the table-level footer cache.
fn env_with(cached: bool) -> DualTableEnv {
    let dfs_config = if cached {
        DfsConfig::default()
    } else {
        DfsConfig::default().without_block_cache()
    };
    DualTableEnv::new(
        Dfs::in_memory(dfs_config),
        KvCluster::in_memory(KvConfig::default()),
    )
    .unwrap()
}

fn create(env: &DualTableEnv, cached: bool) -> DualTableStore {
    let mut config = table_cfg();
    if !cached {
        config.footer_cache_entries = 0;
    }
    DualTableStore::create(env, "t", schema(), config).unwrap()
}

// ----------------------------------------------------------------------
// Acceptance: a warm repeated SELECT performs zero physical block reads.
// ----------------------------------------------------------------------

#[test]
fn warm_repeated_select_reads_no_blocks() {
    let env = env_with(true);
    let t = create(&env, true);
    t.insert_rows((0..128).map(row)).unwrap();

    let cold = t.scan_all().unwrap();
    assert_eq!(cold.len(), 128);
    let after_cold = env.dfs.stats().snapshot();
    assert!(after_cold.cache_misses > 0, "cold scan fetches blocks");

    for _ in 0..3 {
        let warm = t.scan_all().unwrap();
        assert_eq!(warm, cold);
    }
    // `cache_misses` counts physical block-store fetches; `bytes_read`
    // counts logical bytes served and keeps growing on hits.
    let after_warm = env.dfs.stats().snapshot().since(&after_cold);
    assert_eq!(
        after_warm.cache_misses, 0,
        "warm scans must perform zero block-store reads beyond the first scan"
    );
    assert!(
        after_warm.cache_hits > 0,
        "warm scans were served by the cache"
    );
}

#[test]
fn warm_hit_rate_exceeds_ninety_percent() {
    let env = env_with(true);
    let t = create(&env, true);
    t.insert_rows((0..256).map(row)).unwrap();
    t.scan_all().unwrap(); // warm
    for _ in 0..19 {
        t.scan_all().unwrap();
    }
    let snap = env.dfs.stats().snapshot();
    let total = snap.cache_hits + snap.cache_misses;
    assert!(
        snap.cache_hits * 100 > total * 90,
        "warm hit rate too low: {} hits / {} accesses",
        snap.cache_hits,
        total
    );
}

// ----------------------------------------------------------------------
// Coherence: cache on vs cache off is byte-identical through DML loops.
// ----------------------------------------------------------------------

/// Runs `step` against both stacks `rounds` times, comparing full scans
/// after every round.
fn assert_coherent(rounds: usize, mut step: impl FnMut(&DualTableStore, usize)) {
    let env_on = env_with(true);
    let env_off = env_with(false);
    let on = create(&env_on, true);
    let off = create(&env_off, false);
    for t in [&on, &off] {
        t.insert_rows((0..96).map(row)).unwrap();
    }
    for round in 0..rounds {
        step(&on, round);
        step(&off, round);
        assert_eq!(
            on.scan_all().unwrap(),
            off.scan_all().unwrap(),
            "cached and uncached stacks diverged in round {round}"
        );
        assert_eq!(on.count().unwrap(), off.count().unwrap());
    }
    // The cached stack actually cached something.
    assert!(env_on.dfs.stats().snapshot().cache_hits > 0);
    assert_eq!(env_off.dfs.stats().snapshot().cache_hits, 0);
}

#[test]
fn update_compact_select_loop_is_cache_transparent() {
    assert_coherent(4, |t, round| {
        t.update(
            move |r| r[0].as_i64().unwrap() % 4 == round as i64 % 4,
            &[(
                1,
                Box::new(move |r: &Row| Value::Int64(r[0].as_i64().unwrap() + round as i64)),
            )],
            RatioHint::Explicit(0.25),
        )
        .unwrap();
        if round % 2 == 1 {
            t.compact().unwrap();
        }
    });
}

#[test]
fn overwrite_select_loop_is_cache_transparent() {
    assert_coherent(3, |t, round| {
        let base = (round as i64 + 1) * 1000;
        t.insert_overwrite((base..base + 64).map(row)).unwrap();
    });
}

// ----------------------------------------------------------------------
// Acceptance: per-file predicate push-down with updates elsewhere.
// ----------------------------------------------------------------------

/// Two master files of 32 rows (4 stripes of 8 each). Updates touch only
/// the predicate column of file 2, so file 1 keeps full push-down: a
/// predicate selecting file 1's first stripe must prune file 1 down to 8
/// rows while file 2 — where push-down is withheld — surfaces all 32.
/// Before the presence index, one update cell anywhere disabled push-down
/// everywhere and this scan surfaced all 64 rows.
#[test]
fn pushdown_prunes_stripes_per_file_with_updates_elsewhere() {
    let env = env_with(true);
    let t = create(&env, true);
    t.insert_rows((0..64).map(row)).unwrap();
    let file_ids = t.master_file_ids().unwrap();
    assert_eq!(file_ids.len(), 2);

    // Update column 0 (the predicate column) in the second file only.
    t.update(
        |r| r[0].as_i64().unwrap() >= 56,
        &[(
            0,
            Box::new(|r: &Row| Value::Int64(r[0].as_i64().unwrap() + 1000)),
        )],
        RatioHint::Explicit(0.125),
    )
    .unwrap();

    let index = t.presence_index().unwrap().expect("index present");
    assert!(!index.is_dirty(file_ids[0]), "file 1 is clean");
    assert!(index.is_dirty(file_ids[1]), "file 2 holds the overlays");
    assert!(index.file(file_ids[1]).unwrap().has_update_on(0));

    let mut opts = UnionReadOptions::all();
    opts.predicates = Some(vec![ColumnPredicate {
        column: 0,
        op: PredicateOp::Lt,
        literal: Value::Int64(8),
    }]);
    let rows = t.scan(&opts).unwrap();
    // File 1: stripes 2-4 pruned by statistics, stripe 1 surfaces rows
    // 0..8. File 2: no push-down, all 32 rows surface (stripe-skipping
    // predicates are not row filters).
    assert_eq!(rows.len(), 8 + 32, "per-file pruning must apply");
    let ids: Vec<i64> = rows.iter().map(|(_, r)| r[0].as_i64().unwrap()).collect();
    assert_eq!(&ids[..8], &[0, 1, 2, 3, 4, 5, 6, 7]);
    assert!(
        ids[8..].iter().all(|&id| id >= 32),
        "rest comes from file 2"
    );
    assert!(
        ids.iter().any(|&id| id >= 1000),
        "overlay visible in file 2"
    );

    // A predicate on the *unmodified* column keeps push-down even in the
    // dirty file.
    let mut opts = UnionReadOptions::all();
    opts.predicates = Some(vec![ColumnPredicate {
        column: 1,
        op: PredicateOp::Lt,
        literal: Value::Int64(80),
    }]);
    let rows = t.scan(&opts).unwrap();
    assert_eq!(rows.len(), 8, "both files prune on the clean column");
}

/// A file with only delete markers keeps full push-down (markers can only
/// hide rows, never move one into a pruned stripe's range).
#[test]
fn delete_markers_do_not_block_pushdown() {
    let env = env_with(true);
    let t = create(&env, true);
    t.insert_rows((0..32).map(row)).unwrap();
    t.delete(|r| r[0].as_i64().unwrap() == 20, RatioHint::Explicit(0.04))
        .unwrap();

    let index = t.presence_index().unwrap().expect("index present");
    let file_id = t.master_file_ids().unwrap()[0];
    assert!(index.is_dirty(file_id));
    assert!(!index.file(file_id).unwrap().has_update_on(0));

    let mut opts = UnionReadOptions::all();
    opts.predicates = Some(vec![ColumnPredicate {
        column: 0,
        op: PredicateOp::Lt,
        literal: Value::Int64(8),
    }]);
    let rows = t.scan(&opts).unwrap();
    assert_eq!(rows.len(), 8, "stripes 2-4 pruned despite delete markers");
}

// ----------------------------------------------------------------------
// Satellite 1: stats() and opens are served from the footer cache.
// ----------------------------------------------------------------------

#[test]
fn footer_parsed_once_per_file_per_process() {
    let env = env_with(true);
    let t = create(&env, true);
    t.insert_rows((0..128).map(row)).unwrap();
    let files = t.master_file_ids().unwrap().len() as u64;
    assert_eq!(files, 4);

    for _ in 0..3 {
        let stats = t.stats().unwrap();
        assert_eq!(stats.master_rows, 128);
    }
    t.scan_all().unwrap();
    t.count().unwrap();

    let fc = t.footer_cache_stats();
    assert_eq!(
        fc.misses, files,
        "each master footer must be parsed exactly once per process"
    );
    assert!(
        fc.hits >= 3 * files,
        "everything else was served from cache"
    );
}

// ----------------------------------------------------------------------
// Satellite 2: parallel scan shares plan state and preserves ordering.
// ----------------------------------------------------------------------

/// Differential test: with the presence index active, per-file push-down
/// applied, and updates confined to some files, the parallel scan must
/// produce exactly the sequential scan's rows in exactly its order.
#[test]
fn parallel_scan_matches_sequential_under_pushdown() {
    let env = env_with(true);
    let t = create(&env, true);
    t.insert_rows((0..160).map(row)).unwrap();
    // Dirty two of the five files, one on each column.
    t.update(
        |r| (40..44).contains(&r[0].as_i64().unwrap()),
        &[(
            0,
            Box::new(|r: &Row| Value::Int64(r[0].as_i64().unwrap() + 500)),
        )],
        RatioHint::Explicit(0.025),
    )
    .unwrap();
    t.update(
        |r| (100..104).contains(&r[0].as_i64().unwrap()),
        &[(1, Box::new(|_| Value::Int64(-1)))],
        RatioHint::Explicit(0.025),
    )
    .unwrap();
    t.delete(|r| r[0].as_i64().unwrap() == 70, RatioHint::Explicit(0.01))
        .unwrap();

    let job = dt_engine::JobConfig {
        max_mappers: 4,
        num_reducers: 2,
    };
    for predicates in [
        None,
        Some(vec![ColumnPredicate {
            column: 0,
            op: PredicateOp::Lt,
            literal: Value::Int64(48),
        }]),
        Some(vec![
            ColumnPredicate {
                column: 0,
                op: PredicateOp::Ge,
                literal: Value::Int64(16),
            },
            ColumnPredicate {
                column: 1,
                op: PredicateOp::Le,
                literal: Value::Int64(1200),
            },
        ]),
    ] {
        let mut opts = UnionReadOptions::all();
        opts.predicates = predicates;
        let sequential = t.scan(&opts).unwrap();
        let parallel = t.scan_parallel(&opts, &job).unwrap();
        assert_eq!(sequential, parallel, "order and content must match");

        let opts = opts.clone().with_projection(vec![1]);
        let sequential = t.scan(&opts).unwrap();
        let parallel = t.scan_parallel(&opts, &job).unwrap();
        assert_eq!(sequential, parallel, "projected order must match too");
    }
}

// ----------------------------------------------------------------------
// Attached-scan skipping: clean files bypass the KV tier entirely.
// ----------------------------------------------------------------------

#[test]
fn clean_files_skip_attached_scans() {
    let env = env_with(true);
    let t = create(&env, true);
    t.insert_rows((0..128).map(row)).unwrap(); // 4 files
    t.update(
        |r| r[0].as_i64().unwrap() == 33,
        &[(1, Box::new(|_| Value::Int64(0)))],
        RatioHint::Explicit(0.01),
    )
    .unwrap();

    let before = env.health.snapshot();
    t.scan_all().unwrap();
    let skipped = env.health.snapshot().attached_scans_skipped - before.attached_scans_skipped;
    assert_eq!(skipped, 3, "three of four files are clean");
}

// ----------------------------------------------------------------------
// Restart coherence: caches never resurrect pre-crash state.
// ----------------------------------------------------------------------

#[test]
fn crash_and_reopen_purges_all_cache_tiers() {
    let env = env_with(true);
    let t = create(&env, true);
    t.insert_rows((0..64).map(row)).unwrap();
    let expected = t.scan_all().unwrap(); // warm both caches
    assert!(env.dfs.block_cache_entries() > 0);

    env.crash_and_reopen().unwrap();
    assert_eq!(
        env.dfs.block_cache_entries(),
        0,
        "restart must purge the block cache"
    );

    // Reads after recovery re-fetch from durable state (the reopened
    // table's footer cache starts empty, and the epoch bump would have
    // invalidated any surviving one).
    let t = DualTableStore::open(&env, "t", schema(), table_cfg()).unwrap();
    assert_eq!(t.scan_all().unwrap(), expected);
    assert_eq!(
        t.footer_cache_stats().misses,
        2,
        "both footers re-parsed after the restart"
    );
}

// ----------------------------------------------------------------------
// MVCC sessions: caches stay coherent across concurrent snapshots,
// commits and generation swings (DESIGN.md §13).
// ----------------------------------------------------------------------

/// A reader pinned on generation E must keep being served from the warm
/// block and footer caches while another session commits an EDIT and
/// swings a COMPACT to generation E+1: per-path invalidation means the
/// swing touches nothing the pinned reader needs. Only the *new*
/// generation's footers are parsed for latest-state reads, and the
/// deferred GC that runs when the pin drops must not evict them.
#[test]
fn pinned_reader_stays_warm_across_concurrent_swing() {
    let env = env_with(true);
    let t = create(&env, true);
    t.insert_rows((0..128).map(row)).unwrap(); // 4 master files in gen E

    let snap = t.begin_snapshot().unwrap();
    let expected = snap.scan_all().unwrap(); // warms both cache tiers
    let fc0 = t.footer_cache_stats();
    let dfs0 = env.dfs.stats().snapshot();

    // A concurrent session commits an EDIT, then swings a COMPACT.
    let writer = t.clone();
    writer
        .update(
            |r| r[0].as_i64().unwrap() == 7,
            &[(1, Box::new(|_| Value::Int64(-7)))],
            RatioHint::Explicit(0.01),
        )
        .unwrap();
    writer.begin_compact().unwrap().finish().unwrap();
    assert_eq!(t.retired_generations(), 1, "old generation pinned, not GCd");

    // The pinned reader re-scans: byte-identical, and served entirely
    // from the caches warmed before the swing — zero new footer parses,
    // zero physical block fetches.
    let fc1 = t.footer_cache_stats();
    let dfs1 = env.dfs.stats().snapshot();
    for _ in 0..3 {
        assert_eq!(snap.scan_all().unwrap(), expected);
    }
    let fc2 = t.footer_cache_stats();
    let dfs2 = env.dfs.stats().snapshot().since(&dfs1);
    assert_eq!(
        fc2.misses, fc1.misses,
        "pinned re-scan after the swing re-parsed a footer"
    );
    assert_eq!(
        dfs2.cache_misses, 0,
        "pinned re-scan after the swing fetched blocks"
    );
    assert!(fc1.misses >= fc0.misses, "counters are monotonic");
    let _ = dfs0;

    // Latest-state reads parse exactly the new generation's footers.
    let latest = t.scan_all().unwrap();
    assert_eq!(latest.len(), 128);
    assert!(latest.iter().any(|(_, r)| r[1].as_i64().unwrap() == -7));
    let new_files = t.master_file_ids().unwrap().len() as u64;
    let fc3 = t.footer_cache_stats();
    assert_eq!(
        fc3.misses - fc2.misses,
        new_files,
        "each new-generation footer parsed exactly once"
    );

    // Dropping the pin sweeps generation E; its per-path invalidation
    // must leave the new generation's cached footers untouched.
    drop(snap);
    assert_eq!(t.retired_generations(), 0, "drained pin triggers the sweep");
    assert_eq!(t.scan_all().unwrap(), latest);
    let fc4 = t.footer_cache_stats();
    assert_eq!(
        fc4.misses, fc3.misses,
        "GC of the old generation evicted new-generation footers"
    );
}

// ----------------------------------------------------------------------
// Delta (HTAP) tier: routing through the WAL-backed shadow runs is an
// optimization, never a semantic (DESIGN.md §17). Scans must be
// byte-identical with the tier on or off, across every scan variant.
// ----------------------------------------------------------------------

fn delta_cfg(delta_bytes: usize) -> DualTableConfig {
    DualTableConfig {
        delta_bytes,
        ..table_cfg()
    }
}

/// Runs the same EDIT-heavy workload on a delta-on and a delta-off stack,
/// comparing sequential, parallel, predicated and projected scans after
/// every round. `budget` small enough forces mid-workload spills, so the
/// comparison covers entries in the shadow runs *and* entries migrated
/// into the LSM.
fn assert_delta_coherent(budget: usize) {
    let env_on = env_with(true);
    let env_off = env_with(true);
    let on = DualTableStore::create(&env_on, "t", schema(), delta_cfg(budget)).unwrap();
    let off = DualTableStore::create(&env_off, "t", schema(), delta_cfg(0)).unwrap();
    for t in [&on, &off] {
        t.insert_rows((0..160).map(row)).unwrap();
    }
    let job = dt_engine::JobConfig {
        max_mappers: 4,
        num_reducers: 2,
    };
    for round in 0..4i64 {
        for t in [&on, &off] {
            t.update(
                move |r| r[0].as_i64().unwrap() % 4 == round % 4,
                &[(
                    1,
                    Box::new(move |r: &Row| Value::Int64(r[0].as_i64().unwrap() * 100 + round)),
                )],
                RatioHint::Explicit(0.25),
            )
            .unwrap();
            t.delete(
                move |r| r[0].as_i64().unwrap() == 150 + round,
                RatioHint::Explicit(0.01),
            )
            .unwrap();
        }
        let mut opts = UnionReadOptions::all();
        opts.predicates = Some(vec![ColumnPredicate {
            column: 0,
            op: PredicateOp::Lt,
            literal: Value::Int64(120),
        }]);
        for o in [UnionReadOptions::all(), opts] {
            let expected = off.scan(&o).unwrap();
            assert_eq!(
                on.scan(&o).unwrap(),
                expected,
                "delta-on sequential scan diverged in round {round}"
            );
            assert_eq!(
                on.scan_parallel(&o, &job).unwrap(),
                expected,
                "delta-on parallel scan diverged in round {round}"
            );
            let p = o.clone().with_projection(vec![1]);
            assert_eq!(
                on.scan_parallel(&p, &job).unwrap(),
                off.scan(&p).unwrap(),
                "projected delta-on parallel scan diverged in round {round}"
            );
        }
        assert_eq!(on.count().unwrap(), off.count().unwrap());
    }
    assert_eq!(off.delta_bytes_used().unwrap(), 0, "delta-off stays empty");
}

/// Large budget: every EDIT cell stays resident in the shadow runs — the
/// merge cursor itself must be coherent.
#[test]
fn delta_resident_scans_match_delta_off() {
    assert_delta_coherent(1 << 20);
}

/// Tiny budget: the workload spills repeatedly, so scans see a mix of
/// shadow-resident and LSM-migrated entries. Spilling must be invisible.
#[test]
fn delta_spilling_scans_match_delta_off() {
    assert_delta_coherent(256);
}

/// The tier actually engages (bytes accounted, spill drains them), and an
/// explicit spill is a read no-op.
#[test]
fn delta_tier_engages_and_explicit_spill_is_a_read_noop() {
    let env = env_with(true);
    let t = DualTableStore::create(&env, "t", schema(), delta_cfg(1 << 20)).unwrap();
    t.insert_rows((0..96).map(row)).unwrap();
    t.update(
        |r| r[0].as_i64().unwrap() < 48,
        &[(1, Box::new(|_| Value::Int64(-1)))],
        RatioHint::Explicit(0.5),
    )
    .unwrap();
    assert!(
        t.delta_bytes_used().unwrap() > 0,
        "EDIT cells must land in the delta tier"
    );
    let before = t.scan_all().unwrap();
    let spilled = t.spill_delta().unwrap();
    assert!(spilled > 0, "spill must migrate the resident entries");
    assert_eq!(t.delta_bytes_used().unwrap(), 0);
    assert_eq!(t.scan_all().unwrap(), before, "spill is a visibility no-op");
}

/// Scatter-gather over a sharded table with the delta tier enabled on
/// every shard matches the delta-off sharded scan exactly: the shadow
/// stream threads through the same projection/predicate path as the
/// attached scan in every fan-out variant.
#[test]
fn delta_sharded_scatter_matches_delta_off() {
    use dt_common::Deadline;
    use dualtable::{ShardSpec, ShardedTable};

    let spec = || ShardSpec::new(0, vec![40, 80]).unwrap();
    let env_on = env_with(true);
    let env_off = env_with(true);
    let on = ShardedTable::create(&env_on, "s", schema(), delta_cfg(1 << 20), spec()).unwrap();
    let off = ShardedTable::create(&env_off, "s", schema(), delta_cfg(0), spec()).unwrap();
    for t in [&on, &off] {
        t.insert_rows((0..120).map(row).collect()).unwrap();
        t.update_keyed(
            |r| r[0].as_i64().unwrap() % 3 == 0,
            &[(1, Box::new(|r: &Row| Value::Int64(r[0].as_i64().unwrap())))],
            RatioHint::Explicit(0.34),
            None,
            None,
        )
        .unwrap();
        t.delete_keyed(
            |r| r[0].as_i64().unwrap() == 77,
            RatioHint::Explicit(0.01),
            None,
            None,
        )
        .unwrap();
    }
    assert!(
        on.shards()
            .iter()
            .any(|s| s.delta_bytes_used().unwrap() > 0),
        "at least one shard holds resident delta entries"
    );
    let expected = off.scan_scatter(None, None, &Deadline::never()).unwrap();
    assert_eq!(
        on.scan_scatter(None, None, &Deadline::never()).unwrap(),
        expected,
        "delta-on scatter diverged from delta-off"
    );
    // Range-pruned + projected scatter stays coherent too.
    let preds = vec![
        ColumnPredicate {
            column: 0,
            op: PredicateOp::Ge,
            literal: Value::Int64(30),
        },
        ColumnPredicate {
            column: 0,
            op: PredicateOp::Lt,
            literal: Value::Int64(90),
        },
    ];
    let proj = [1usize];
    assert_eq!(
        on.scan_scatter(Some(&proj), Some(&preds), &Deadline::never())
            .unwrap(),
        off.scan_scatter(Some(&proj), Some(&preds), &Deadline::never())
            .unwrap(),
        "range-pruned delta-on scatter diverged"
    );
}

/// Presence-index push-down must stay snapshot-scoped: a session that
/// dirties a file's predicate column after a reader pinned may widen the
/// set of stripes the pinned scan surfaces (push-down is withheld for
/// dirty files), but every surfaced row must still carry pin-time bytes.
/// The fresh autocommit scan sees the new reality immediately.
#[test]
fn pinned_predicate_scan_sees_pin_time_values_under_concurrent_dirtying() {
    let env = env_with(true);
    let t = create(&env, true);
    t.insert_rows((0..64).map(row)).unwrap(); // 2 files, both clean
    let pred = || {
        let mut opts = UnionReadOptions::all();
        opts.predicates = Some(vec![ColumnPredicate {
            column: 0,
            op: PredicateOp::Lt,
            literal: Value::Int64(8),
        }]);
        opts
    };

    let snap = t.begin_snapshot().unwrap();
    let at_pin = snap.scan(&pred()).unwrap();
    assert_eq!(at_pin.len(), 8, "clean files: full push-down");

    // A concurrent session dirties file 2's predicate column.
    t.update(
        |r| r[0].as_i64().unwrap() >= 56,
        &[(
            0,
            Box::new(|r: &Row| Value::Int64(r[0].as_i64().unwrap() + 1000)),
        )],
        RatioHint::Explicit(0.125),
    )
    .unwrap();

    // The pinned scan may surface more rows now (file 2 lost push-down),
    // but none of them may show the post-pin update: the overlay cells
    // are newer than the pin and must be filtered out.
    let pinned = snap.scan(&pred()).unwrap();
    assert!(
        pinned.iter().all(|(_, r)| r[0].as_i64().unwrap() < 1000),
        "pinned scan surfaced a post-pin overlay value"
    );
    let matching: Vec<_> = pinned
        .iter()
        .filter(|(_, r)| r[0].as_i64().unwrap() < 8)
        .cloned()
        .collect();
    assert_eq!(matching, at_pin, "pin-time predicate rows are byte-stable");

    // The autocommit scan sees the dirty file immediately: push-down is
    // withheld there and the updated ids surface.
    let fresh = t.scan(&pred()).unwrap();
    assert!(
        fresh.iter().any(|(_, r)| r[0].as_i64().unwrap() >= 1000),
        "latest scan must see the committed update"
    );
    let index = t.presence_index().unwrap().expect("index present");
    let files = t.master_file_ids().unwrap();
    assert!(!index.is_dirty(files[0]));
    assert!(index.file(files[1]).unwrap().has_update_on(0));
}
