//! Session-facing MVCC objects (DESIGN.md §13): pinned snapshots,
//! first-committer-wins transactions, and two-phase rewrites that build a
//! generation off to the side while DML keeps committing.
//!
//! All three types wrap a pinned `(generation, timestamp)` epoch and hold
//! it until dropped; dropping the last pin on a superseded generation
//! triggers its physical GC (see [`crate::mvcc`]).
//!
//! # Panic safety of the `Drop` paths
//!
//! These destructors are the teardown mechanism the server relies on
//! (DESIGN.md §14): when a session panics mid-statement or a connection
//! dies mid-transaction, dropping its `Transaction`/`Snapshot` must still
//! release the pin, or generation GC stalls forever behind a phantom
//! reader. Three properties make that hold:
//!
//! * `Snapshot::drop` → `release_pin` → `sweep_gc` never panics: GC
//!   failures are swallowed into the `cleanup_failures` health counter and
//!   retried by the next sweep, so unwinding through the drop is safe.
//! * The registry locks are the poison-recovering `parking_lot` shim
//!   (`unwrap_or_else(|e| e.into_inner())`): a thread that panicked while
//!   holding one does not wedge every later pin release.
//! * `RewriteJob::drop` → `abandon_rewrite` likewise reports failures via
//!   counters rather than panicking.
//!
//! The regression test `tests/drop_safety.rs` pins these properties: a
//! session that panics inside `catch_unwind` with a live transaction must
//! leave `pinned_snapshots() == 0` and must not block a subsequent
//! OVERWRITE's generation GC.

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use dt_common::{Error, RecordId, Result, Row, Value};

use crate::store::{Assignment, DualTableStore};
use crate::union_read::UnionReadOptions;

/// A transaction's buffered effect on one committed record.
#[derive(Debug, Clone, Default)]
pub(crate) struct RowPatch {
    /// Row deleted by this transaction (wins over updates).
    pub(crate) deleted: bool,
    /// Column ordinal → new value.
    pub(crate) updates: BTreeMap<usize, Value>,
}

/// A pinned read snapshot: scans see exactly the table as of the pin's
/// `(generation, timestamp)`, regardless of what commits afterwards — and
/// never block writers. Dropping the snapshot releases the pin (and any
/// generation GC it was holding back).
pub struct Snapshot {
    store: DualTableStore,
    gen: u64,
    ts: u64,
}

impl Snapshot {
    pub(crate) fn new(store: DualTableStore, gen: u64, ts: u64) -> Self {
        Snapshot { store, gen, ts }
    }

    /// The pinned generation.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// The pinned timestamp.
    pub fn ts(&self) -> u64 {
        self.ts
    }

    pub(crate) fn store(&self) -> &DualTableStore {
        &self.store
    }

    /// UNION READ at the pin. `opts.snapshot_ts` is overridden by the
    /// pin's timestamp — a snapshot has exactly one point in time.
    pub fn for_each(
        &self,
        opts: &UnionReadOptions,
        mut f: impl FnMut(RecordId, Row) -> Result<ControlFlow<()>>,
    ) -> Result<()> {
        let mut opts = opts.clone();
        opts.snapshot_ts = self.ts;
        self.store.pinned_for_each(self.gen, &opts, &mut f)
    }

    /// Materializes a scan at the pin.
    pub fn scan(&self, opts: &UnionReadOptions) -> Result<Vec<(RecordId, Row)>> {
        let mut out = Vec::new();
        self.for_each(opts, |id, row| {
            out.push((id, row));
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(out)
    }

    /// Materializes the whole table at the pin.
    pub fn scan_all(&self) -> Result<Vec<(RecordId, Row)>> {
        self.scan(&UnionReadOptions::all())
    }

    /// Counts rows visible at the pin.
    pub fn count(&self) -> Result<u64> {
        let mut n = 0u64;
        let opts = UnionReadOptions::all().with_projection(vec![0]);
        self.for_each(&opts, |_, _| {
            n += 1;
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(n)
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.store.release_pin(self.ts);
    }
}

/// A snapshot-isolation transaction over one DualTable.
///
/// Reads see the pinned snapshot plus this transaction's own buffered
/// writes (read-your-own-writes); nothing is visible to other sessions
/// until [`Transaction::commit`], which applies every buffered effect in
/// one atomic attached-tier batch — after re-validating, under the
/// table's commit lock, that no other transaction committed a write to
/// the same record ids (and no OVERWRITE/COMPACT swung the generation)
/// since this transaction began. The first committer wins; losers get a
/// retryable [`Error::Conflict`] and nothing is applied.
pub struct Transaction {
    snapshot: Snapshot,
    overlay: BTreeMap<RecordId, RowPatch>,
    pending: Vec<Row>,
}

impl Transaction {
    pub(crate) fn new(snapshot: Snapshot) -> Self {
        Transaction {
            snapshot,
            overlay: BTreeMap::new(),
            pending: Vec::new(),
        }
    }

    /// The pinned generation this transaction reads.
    pub fn generation(&self) -> u64 {
        self.snapshot.generation()
    }

    /// The pinned snapshot timestamp.
    pub fn snapshot_ts(&self) -> u64 {
        self.snapshot.ts()
    }

    /// Committed record ids this transaction has written (its write set —
    /// the first-committer-wins conflict footprint). Buffered inserts are
    /// not in it: fresh rows can never collide with anyone.
    pub fn write_set(&self) -> Vec<RecordId> {
        self.overlay.keys().copied().collect()
    }

    /// `true` iff committing would write nothing.
    pub fn is_read_only(&self) -> bool {
        self.overlay.is_empty() && self.pending.is_empty()
    }

    fn schema_check(&self, col: usize, value: &Value) -> Result<()> {
        let schema = self.snapshot.store().schema();
        if !value.conforms_to(schema.field(col).data_type) {
            return Err(Error::schema(format!(
                "value {value:?} does not fit column '{}'",
                schema.field(col).name
            )));
        }
        Ok(())
    }

    /// Streams the committed snapshot with this transaction's overlay
    /// applied: deleted rows dropped, updated columns replaced.
    fn for_each_visible(
        &self,
        mut f: impl FnMut(RecordId, Row) -> Result<ControlFlow<()>>,
    ) -> Result<()> {
        self.snapshot
            .for_each(&UnionReadOptions::all(), |id, mut row| {
                if let Some(patch) = self.overlay.get(&id) {
                    if patch.deleted {
                        return Ok(ControlFlow::Continue(()));
                    }
                    for (&col, value) in &patch.updates {
                        row[col] = value.clone();
                    }
                }
                f(id, row)
            })
    }

    /// Buffers `UPDATE ... SET ... WHERE predicate`. Sees (and may touch)
    /// this transaction's earlier writes and buffered inserts. Returns the
    /// matched row count.
    pub fn update(
        &mut self,
        predicate: impl Fn(&Row) -> bool,
        assignments: &[Assignment<'_>],
    ) -> Result<u64> {
        let schema_len = self.snapshot.store().schema().len();
        for (col, _) in assignments {
            if *col >= schema_len {
                return Err(Error::schema(format!("assignment to unknown column {col}")));
            }
        }
        let mut matched = 0u64;
        let mut patches: Vec<(RecordId, Vec<(usize, Value)>)> = Vec::new();
        self.for_each_visible(|id, row| {
            if predicate(&row) {
                matched += 1;
                let values: Vec<(usize, Value)> =
                    assignments.iter().map(|(col, f)| (*col, f(&row))).collect();
                patches.push((id, values));
            }
            Ok(ControlFlow::Continue(()))
        })?;
        let mut pending_patches: Vec<(usize, Vec<(usize, Value)>)> = Vec::new();
        for (i, row) in self.pending.iter().enumerate() {
            if predicate(row) {
                matched += 1;
                let values: Vec<(usize, Value)> =
                    assignments.iter().map(|(col, f)| (*col, f(row))).collect();
                pending_patches.push((i, values));
            }
        }
        // Validate every new value — committed-row patches and buffered
        // inserts alike — before mutating any transaction state: a failed
        // UPDATE statement must leave the buffer untouched, or a later
        // COMMIT would persist the partial statement.
        for values in patches
            .iter()
            .map(|(_, v)| v)
            .chain(pending_patches.iter().map(|(_, v)| v))
        {
            for (col, value) in values {
                self.schema_check(*col, value)?;
            }
        }
        for (id, values) in patches {
            let patch = self.overlay.entry(id).or_default();
            for (col, value) in values {
                patch.updates.insert(col, value);
            }
        }
        for (i, values) in pending_patches {
            for (col, value) in values {
                self.pending[i][col] = value;
            }
        }
        Ok(matched)
    }

    /// Buffers `DELETE FROM ... WHERE predicate`. Returns the matched row
    /// count.
    pub fn delete(&mut self, predicate: impl Fn(&Row) -> bool) -> Result<u64> {
        let mut matched = 0u64;
        let mut hits: Vec<RecordId> = Vec::new();
        self.for_each_visible(|id, row| {
            if predicate(&row) {
                matched += 1;
                hits.push(id);
            }
            Ok(ControlFlow::Continue(()))
        })?;
        for id in hits {
            let patch = self.overlay.entry(id).or_default();
            patch.deleted = true;
            patch.updates.clear();
        }
        let before = self.pending.len();
        self.pending.retain(|row| !predicate(row));
        matched += (before - self.pending.len()) as u64;
        Ok(matched)
    }

    /// Buffers an insert. The rows become master files only at commit,
    /// under a durable undo intent (crash-atomic with the rest of the
    /// transaction).
    pub fn insert(&mut self, rows: Vec<Row>) -> Result<u64> {
        let schema = self.snapshot.store().schema();
        for row in &rows {
            if row.len() != schema.len() {
                return Err(Error::schema(format!(
                    "row arity {} does not match schema arity {}",
                    row.len(),
                    schema.len()
                )));
            }
            for (col, value) in row.iter().enumerate() {
                self.schema_check(col, value)?;
            }
        }
        let n = rows.len() as u64;
        self.pending.extend(rows);
        Ok(n)
    }

    /// Snapshot + overlay scan of committed rows, in record-id order.
    /// Buffered inserts are not included (they have no record ids yet);
    /// use [`Transaction::rows`] for the full read-your-own-writes view.
    pub fn scan(&self) -> Result<Vec<(RecordId, Row)>> {
        let mut out = Vec::new();
        self.for_each_visible(|id, row| {
            out.push((id, row));
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(out)
    }

    /// The full read-your-own-writes view: committed rows (with overlay)
    /// followed by this transaction's buffered inserts, optionally
    /// projected.
    pub fn rows(&self, projection: Option<&[usize]>) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        self.for_each_visible(|_, row| {
            out.push(row);
            Ok(ControlFlow::Continue(()))
        })?;
        out.extend(self.pending.iter().cloned());
        if let Some(projection) = projection {
            for row in &mut out {
                *row = projection.iter().map(|&c| row[c].clone()).collect();
            }
        }
        Ok(out)
    }

    /// Commits every buffered effect atomically. Returns the commit
    /// timestamp. On a first-committer-wins loss, returns
    /// [`Error::Conflict`] and applies nothing — re-begin and retry.
    pub fn commit(self) -> Result<u64> {
        let store = self.snapshot.store().clone();
        store.commit_transaction(
            self.snapshot.generation(),
            self.snapshot.ts(),
            &self.overlay,
            &self.pending,
        )
        // `self.snapshot` drops here: pin released, GC swept.
    }

    /// Discards every buffered effect. (Dropping the transaction does the
    /// same; this spelling documents intent.)
    pub fn rollback(self) {}
}

/// A two-phase OVERWRITE/COMPACT: [`DualTableStore::begin_compact`] /
/// [`DualTableStore::begin_insert_overwrite`] build the new generation
/// off to the side from a pinned snapshot — without blocking concurrent
/// DML — and [`RewriteJob::finish`] atomically swings the generation
/// pointer, failing with a retryable [`Error::Conflict`] if anything
/// committed since the pin (the built files would silently lose those
/// writes). Dropping an unfinished job abandons the built generation.
pub struct RewriteJob {
    snapshot: Snapshot,
    next: u64,
    written: u64,
    finished: bool,
    /// `Some(file IDs)` for an incremental fold
    /// ([`DualTableStore::begin_incremental_compact`]): the master files
    /// the build folded, whose attached rows the swing retires. `None` for
    /// full rewrites, whose swing truncates the whole attached tier.
    folded: Option<Vec<u32>>,
}

impl RewriteJob {
    pub(crate) fn new(snapshot: Snapshot, next: u64, written: u64) -> Self {
        RewriteJob {
            snapshot,
            next,
            written,
            finished: false,
            folded: None,
        }
    }

    pub(crate) fn new_fold(snapshot: Snapshot, next: u64, written: u64, folded: Vec<u32>) -> Self {
        RewriteJob {
            snapshot,
            next,
            written,
            finished: false,
            folded: Some(folded),
        }
    }

    /// The snapshot timestamp the build read from.
    pub fn snapshot_ts(&self) -> u64 {
        self.snapshot.ts()
    }

    /// The generation number being built.
    pub fn target_generation(&self) -> u64 {
        self.next
    }

    /// Rows written into the new generation.
    pub fn rows_written(&self) -> u64 {
        self.written
    }

    /// The master files an incremental fold will retire; `None` for full
    /// rewrites.
    pub fn folded_files(&self) -> Option<&[u32]> {
        self.folded.as_deref()
    }

    /// Atomically swings the generation pointer to the built generation.
    /// Returns the rows written, or [`Error::Conflict`] if a commit raced
    /// the build (the built generation is deleted; retry from a fresh
    /// begin).
    pub fn finish(mut self) -> Result<u64> {
        self.finished = true;
        let store = self.snapshot.store().clone();
        match &self.folded {
            Some(folded) => store.finish_fold(self.next, self.snapshot.ts(), folded)?,
            None => store.finish_rewrite(self.next, self.snapshot.ts())?,
        }
        Ok(self.written)
    }

    /// Abandons the build, deleting the half-built generation.
    pub fn abandon(self) {}
}

impl Drop for RewriteJob {
    fn drop(&mut self) {
        if !self.finished {
            self.snapshot.store().abandon_rewrite(self.next);
        }
    }
}
