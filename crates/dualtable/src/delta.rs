//! Delta-tier policy (DESIGN.md §17).
//!
//! The mechanism — WAL-durable sorted runs held out of the LSM — lives in
//! the attached kvstore ([`dt_kvstore::Store::put_shadow_batch`]); this
//! module owns the *policy*: whether a table routes EDIT-plan cells
//! through the tier at all, and when the tier's memory budget forces a
//! spill into the LSM proper. Kept separate from the store so the
//! routing decision reads as one predicate at each call site.

use dt_common::Result;

/// Per-table delta-tier policy, derived from
/// [`crate::DualTableConfig::delta_bytes`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeltaPolicy {
    /// Memory budget in bytes; `0` disables the tier entirely.
    budget_bytes: usize,
}

impl DeltaPolicy {
    pub fn new(budget_bytes: usize) -> Self {
        DeltaPolicy { budget_bytes }
    }

    /// Whether EDIT-plan DML routes through the delta tier.
    pub fn enabled(&self) -> bool {
        self.budget_bytes > 0
    }

    /// Spills the attached store's delta tier if it has outgrown the
    /// budget. Called *after* the commit that may have pushed it over:
    /// the entries are already durable, so a failed spill loses nothing —
    /// the next commit retries it. Returns the number of entries spilled
    /// (0 when under budget or disabled).
    pub fn maybe_spill(&self, attached: &dt_kvstore::Store) -> Result<u64> {
        if !self.enabled() || attached.shadow_bytes() <= self.budget_bytes {
            return Ok(0);
        }
        attached.spill_shadow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::{IoStats, LogicalClock};
    use dt_kvstore::{KvConfig, Store};
    use std::sync::Arc;

    fn store() -> Store {
        Store::open(
            Arc::new(dt_kvstore::MemEnv::new()),
            KvConfig {
                auto_maintenance: false,
                ..KvConfig::default()
            },
            LogicalClock::new(),
            IoStats::new(),
        )
        .unwrap()
    }

    #[test]
    fn zero_budget_disables_the_tier() {
        let p = DeltaPolicy::new(0);
        assert!(!p.enabled());
        assert_eq!(p.maybe_spill(&store()).unwrap(), 0);
    }

    #[test]
    fn spills_only_over_budget() {
        let p = DeltaPolicy::new(200);
        let s = store();
        s.put_shadow_batch(vec![(b"a".to_vec(), b"q".to_vec(), vec![0u8; 16])])
            .unwrap();
        assert!(p.enabled());
        assert_eq!(p.maybe_spill(&s).unwrap(), 0, "under budget: no spill");
        assert_eq!(s.shadow_entry_count(), 1);
        // Blow past the budget; the next check migrates everything.
        s.put_shadow_batch(vec![(b"b".to_vec(), b"q".to_vec(), vec![0u8; 512])])
            .unwrap();
        assert_eq!(p.maybe_spill(&s).unwrap(), 2);
        assert_eq!(s.shadow_entry_count(), 0);
        assert_eq!(s.get(b"a", b"q").unwrap().unwrap(), vec![0u8; 16]);
    }
}
