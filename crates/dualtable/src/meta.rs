//! The system-wide metadata table (paper §V-A, Figure 3).
//!
//! Lives in the KV tier (one HBase table in the paper). It allocates the
//! incremental **file IDs** that make record IDs unique, and records the
//! historical modification ratios the cost model's "historical analysis of
//! the execution log" estimator (§IV) consumes.

use dt_common::{Error, Result};
use dt_kvstore::{KvCluster, Store};
use parking_lot::Mutex;
use std::sync::Arc;

/// Name of the metadata table inside the KV cluster.
pub const META_TABLE: &str = "__dualtable_meta";

const QUAL_FILE_ID: &[u8] = b"file_id_counter";
const QUAL_RATIO_SUM: &[u8] = b"ratio_sum";
const QUAL_RATIO_COUNT: &[u8] = b"ratio_count";
const QUAL_GENERATION: &[u8] = b"generation";

/// Handle to the system-wide metadata table.
#[derive(Clone)]
pub struct MetadataManager {
    // Resolved per call: a simulated crash-and-reopen replaces the Store
    // inside the cluster, so a cached handle would go stale.
    kv: KvCluster,
    // File-ID allocation is get-then-put; serialize it.
    alloc_lock: Arc<Mutex<()>>,
}

impl MetadataManager {
    /// Opens (creating if needed) the metadata table.
    pub fn open(kv: &KvCluster) -> Result<Self> {
        kv.table_or_create(META_TABLE)?;
        Ok(MetadataManager {
            kv: kv.clone(),
            alloc_lock: Arc::new(Mutex::new(())),
        })
    }

    fn store(&self) -> Result<Store> {
        self.kv.table(META_TABLE)
    }

    /// Allocates the next file ID for `table` (starting at 1; 0 is
    /// reserved). IDs are never reused — not even across INSERT
    /// OVERWRITE / COMPACT — which is what keeps stale attached-tier
    /// overlays from ever resolving against a new master file.
    pub fn next_file_id(&self, table: &str) -> Result<u32> {
        self.reserve_file_ids(table, 1)
    }

    /// Reserves `count` consecutive file IDs for `table` in one counter
    /// bump, returning the first. Parallel rewrite workers (DESIGN.md §12)
    /// reserve one range per partition *in partition order* so the
    /// ascending-file-ID scan order of the new generation equals the
    /// concatenation of the partitions — ID gaps from over-reservation are
    /// harmless because IDs only need uniqueness and ordering.
    pub fn reserve_file_ids(&self, table: &str, count: u32) -> Result<u32> {
        let count = count.max(1);
        let _guard = self.alloc_lock.lock();
        let store = self.store()?;
        let row = format!("table:{table}");
        let current = match store.get(row.as_bytes(), QUAL_FILE_ID)? {
            Some(bytes) => u32::from_be_bytes(
                bytes
                    .as_slice()
                    .try_into()
                    .map_err(|_| Error::corrupt("bad file id counter"))?,
            ),
            None => 0,
        };
        let last = current
            .checked_add(count)
            .ok_or_else(|| Error::internal("file id space exhausted"))?;
        store.put(row.as_bytes(), QUAL_FILE_ID, &last.to_be_bytes())?;
        Ok(current + 1)
    }

    /// The committed master-table generation of `table` (0 before any
    /// OVERWRITE/COMPACT commits one).
    pub fn generation(&self, table: &str) -> Result<u64> {
        let row = format!("table:{table}");
        match self.store()?.get(row.as_bytes(), QUAL_GENERATION)? {
            Some(bytes) => Ok(u64::from_be_bytes(
                bytes
                    .as_slice()
                    .try_into()
                    .map_err(|_| Error::corrupt("bad generation"))?,
            )),
            None => Ok(0),
        }
    }

    /// Commits `generation` as the live master generation of `table`.
    ///
    /// This single durable put is the commit point of INSERT OVERWRITE
    /// and COMPACT: it either lands (the new file set becomes visible
    /// atomically) or it doesn't (readers keep the old set).
    pub fn commit_generation(&self, table: &str, generation: u64) -> Result<()> {
        let row = format!("table:{table}");
        self.store()?
            .put(row.as_bytes(), QUAL_GENERATION, &generation.to_be_bytes())?;
        Ok(())
    }

    /// Records an observed modification ratio for a statement key.
    pub fn record_ratio(&self, statement_key: &str, ratio: f64) -> Result<()> {
        let store = self.store()?;
        let row = format!("stmt:{statement_key}");
        let (sum, count) = self.ratio_stats(&row)?;
        store.put(row.as_bytes(), QUAL_RATIO_SUM, &(sum + ratio).to_le_bytes())?;
        store.put(row.as_bytes(), QUAL_RATIO_COUNT, &(count + 1).to_le_bytes())?;
        Ok(())
    }

    /// Historical average ratio for a statement key, if any runs were
    /// recorded.
    pub fn historical_ratio(&self, statement_key: &str) -> Result<Option<f64>> {
        let row = format!("stmt:{statement_key}");
        let (sum, count) = self.ratio_stats(&row)?;
        if count == 0 {
            Ok(None)
        } else {
            Ok(Some(sum / count as f64))
        }
    }

    fn ratio_stats(&self, row: &str) -> Result<(f64, u64)> {
        let store = self.store()?;
        let sum = match store.get(row.as_bytes(), QUAL_RATIO_SUM)? {
            Some(bytes) => f64::from_le_bytes(
                bytes
                    .as_slice()
                    .try_into()
                    .map_err(|_| Error::corrupt("bad ratio sum"))?,
            ),
            None => 0.0,
        };
        let count = match store.get(row.as_bytes(), QUAL_RATIO_COUNT)? {
            Some(bytes) => u64::from_le_bytes(
                bytes
                    .as_slice()
                    .try_into()
                    .map_err(|_| Error::corrupt("bad ratio count"))?,
            ),
            None => 0,
        };
        Ok((sum, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_kvstore::KvConfig;

    fn manager() -> MetadataManager {
        let kv = KvCluster::in_memory(KvConfig::default());
        MetadataManager::open(&kv).unwrap()
    }

    #[test]
    fn file_ids_increment_per_table() {
        let m = manager();
        assert_eq!(m.next_file_id("a").unwrap(), 1);
        assert_eq!(m.next_file_id("a").unwrap(), 2);
        assert_eq!(m.next_file_id("b").unwrap(), 1);
        assert_eq!(m.next_file_id("a").unwrap(), 3);
    }

    #[test]
    fn reserved_ranges_are_disjoint_and_ordered() {
        let m = manager();
        let a = m.reserve_file_ids("t", 4).unwrap();
        let b = m.reserve_file_ids("t", 2).unwrap();
        let c = m.next_file_id("t").unwrap();
        assert_eq!(a, 1);
        assert_eq!(b, 5, "second range starts after the first");
        assert_eq!(c, 7);
        // A zero-count reservation still hands out one valid ID.
        assert_eq!(m.reserve_file_ids("t", 0).unwrap(), 8);
    }

    #[test]
    fn generation_defaults_to_zero_and_commits() {
        let m = manager();
        assert_eq!(m.generation("t").unwrap(), 0);
        m.commit_generation("t", 3).unwrap();
        assert_eq!(m.generation("t").unwrap(), 3);
        assert_eq!(m.generation("other").unwrap(), 0);
    }

    #[test]
    fn historical_ratio_averages() {
        let m = manager();
        assert_eq!(m.historical_ratio("u1").unwrap(), None);
        m.record_ratio("u1", 0.02).unwrap();
        m.record_ratio("u1", 0.04).unwrap();
        let avg = m.historical_ratio("u1").unwrap().unwrap();
        assert!((avg - 0.03).abs() < 1e-12);
        assert_eq!(m.historical_ratio("other").unwrap(), None);
    }

    #[test]
    fn concurrent_allocation_is_unique() {
        let m = manager();
        let mut ids = std::collections::HashSet::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let m = m.clone();
                    s.spawn(move || {
                        (0..25)
                            .map(|_| m.next_file_id("t").unwrap())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                for id in h.join().unwrap() {
                    assert!(ids.insert(id), "duplicate file id {id}");
                }
            }
        });
        assert_eq!(ids.len(), 100);
    }
}
