//! Attached-Table cell layout (paper §V-B).
//!
//! * row key = the 8-byte big-endian record ID ([`RecordId::to_key`]);
//! * UPDATE info: qualifier = the updated column's 2-byte big-endian
//!   ordinal, cell value = the encoded new field value;
//! * DELETE info: a marker cell under the reserved qualifier
//!   [`DELETE_MARKER_QUALIFIER`].
//!
//! Because record IDs are big-endian and the KV store scans row keys in
//! lexicographic order, the attached scan order equals master scan order.

use dt_common::codec::{decode_value, encode_value};
use dt_common::{Error, RecordId, Result, Value};
use dt_kvstore::RowEntry;

/// Qualifier of the delete marker ("a special HBase cell", §V-B). Column
/// ordinals are bounded by the schema width, so `0xFFFF` cannot collide.
pub const DELETE_MARKER_QUALIFIER: [u8; 2] = [0xFF, 0xFF];

/// Qualifier bytes for an updated column ordinal.
pub fn update_qualifier(column: usize) -> [u8; 2] {
    debug_assert!(column < 0xFFFF, "column ordinal out of qualifier range");
    (column as u16).to_be_bytes()
}

/// One record's resolved modification state from the Attached Table.
#[derive(Debug, Clone, PartialEq)]
pub struct AttachedEntry {
    /// Which master row this entry modifies.
    pub record: RecordId,
    /// `true` iff a delete marker is present (deletes dominate updates).
    pub deleted: bool,
    /// Updated cells: `(column ordinal, new value)`, ordinals ascending.
    pub updates: Vec<(usize, Value)>,
}

impl AttachedEntry {
    /// Parses one KV row into an entry.
    pub fn from_row(row: &RowEntry) -> Result<Self> {
        let record = RecordId::from_key(&row.row)
            .ok_or_else(|| Error::corrupt("attached row key is not a record ID"))?;
        let mut deleted = false;
        let mut updates = Vec::new();
        let mut delete_ts = 0u64;
        for (qual, ts, value) in &row.cells {
            if qual.as_slice() == DELETE_MARKER_QUALIFIER {
                deleted = true;
                delete_ts = *ts;
                continue;
            }
            let bytes: [u8; 2] = qual
                .as_slice()
                .try_into()
                .map_err(|_| Error::corrupt("attached qualifier is not a column ordinal"))?;
            let column = u16::from_be_bytes(bytes) as usize;
            updates.push((column, *ts, decode_value(value)?));
        }
        // An update issued after a delete marker is unreachable through
        // UNION READ (the row is gone), but multi-version history can hold
        // both; updates older than the marker are shadowed by it.
        let updates = updates
            .into_iter()
            .filter(|(_, ts, _)| !deleted || *ts > delete_ts)
            .map(|(c, _, v)| (c, v))
            .collect();
        Ok(AttachedEntry {
            record,
            deleted,
            updates,
        })
    }
}

/// Builds the KV cells for an EDIT-plan UPDATE of one record:
/// `(row key, qualifier, value)` triples.
pub fn update_cells(
    record: RecordId,
    assignments: &[(usize, Value)],
) -> Vec<(Vec<u8>, Vec<u8>, Vec<u8>)> {
    assignments
        .iter()
        .map(|(column, value)| {
            (
                record.to_key().to_vec(),
                update_qualifier(*column).to_vec(),
                encode_value(value),
            )
        })
        .collect()
}

/// Builds the KV cell for an EDIT-plan DELETE of one record.
pub fn delete_cell(record: RecordId) -> (Vec<u8>, Vec<u8>, Vec<u8>) {
    (
        record.to_key().to_vec(),
        DELETE_MARKER_QUALIFIER.to_vec(),
        Vec::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_cells_roundtrip_through_row_entry() {
        let record = RecordId::new(3, 17);
        let cells = update_cells(record, &[(2, Value::Int64(9)), (0, Value::from("x"))]);
        let row = RowEntry {
            row: record.to_key().to_vec(),
            cells: cells
                .iter()
                .enumerate()
                .map(|(i, (_, q, v))| (q.clone(), i as u64 + 1, v.clone()))
                .collect(),
        };
        let entry = AttachedEntry::from_row(&row).unwrap();
        assert_eq!(entry.record, record);
        assert!(!entry.deleted);
        assert_eq!(entry.updates.len(), 2);
        assert!(entry.updates.contains(&(2, Value::Int64(9))));
        assert!(entry.updates.contains(&(0, Value::from("x"))));
    }

    #[test]
    fn delete_marker_dominates_older_updates() {
        let record = RecordId::new(1, 1);
        let (rk, dq, dv) = delete_cell(record);
        let row = RowEntry {
            row: rk,
            cells: vec![
                (
                    update_qualifier(0).to_vec(),
                    1,
                    encode_value(&Value::Int64(5)),
                ),
                (dq, 2, dv),
            ],
        };
        let entry = AttachedEntry::from_row(&row).unwrap();
        assert!(entry.deleted);
        assert!(entry.updates.is_empty());
    }

    #[test]
    fn bad_key_rejected() {
        let row = RowEntry {
            row: vec![1, 2, 3],
            cells: vec![],
        };
        assert!(AttachedEntry::from_row(&row).is_err());
    }
}
