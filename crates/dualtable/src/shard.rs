//! Range sharding (DESIGN.md §16): one logical table partitioned by
//! primary-key range into N independent [`DualTableStore`] shards.
//!
//! Each shard is a *full* dualtable — its own master file set, attached
//! KV table, record-ID space, presence index and MVCC generation chain —
//! so the §IV cost model, the incremental compactor and the crash-recovery
//! machinery all run per shard with zero new code. What this module adds
//! is purely the layer above:
//!
//! * a [`ShardSpec`] (key column + strictly ascending split points) whose
//!   durable form, the **shard map**, is a CRC-framed file written through
//!   the DFS namenode edit log — shard topology survives crashes exactly
//!   like every master file does;
//! * **routing**: a row lands in the shard whose half-open range
//!   `[lo, hi)` contains its key (a key equal to a split point belongs to
//!   the shard *starting* at that split);
//! * **scatter-gather scans** on the engine's job pool, with per-shard
//!   range pruning: a predicate on the shard key eliminates whole shards
//!   *before any I/O* — the pruned shards' masters and attached tables
//!   are never opened;
//! * **cross-shard transactions**: one statement touching k shards
//!   commits shard-by-shard in shard order through the PR 6 multi-table
//!   path; on a mid-sequence failure the caller gets the exact list of
//!   durably committed shards (the committed-prefix contract).
//!
//! The gather step is a k-way ordered merge in its degenerate form:
//! shard ranges are disjoint and scanned in ascending range order, so
//! concatenating per-shard results (which `parallel_map_fallible` already
//! yields in split order) *is* the merge by key range.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use dt_common::crc32::crc32;
use dt_common::{DataType, Deadline, Error, Result, Row, Schema, Value};
use dt_engine::JobConfig;
use dt_orcfile::{ColumnPredicate, PredicateOp};

use crate::config::DualTableConfig;
use crate::cost::{PlanChoice, RatioHint};
use crate::env::DualTableEnv;
use crate::store::{Assignment, DmlReport, DualTableStore};
use crate::txn::Transaction;
use crate::union_read::UnionReadOptions;
use crate::FoldOutcome;

/// Rows between two deadline checks inside a shard scan (same cadence as
/// the query layer's scans).
const DEADLINE_CHECK_ROWS: usize = 1024;

/// Magic + version prefix of the durable shard map.
const SHARD_MAP_MAGIC: &[u8; 8] = b"DTSHARD1";

/// How a table is partitioned: the key column and the ascending split
/// points. N split points make N+1 shards; shard `i` covers
/// `[split[i-1], split[i])` with open ends at both extremes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    key_column: usize,
    split_points: Vec<i64>,
}

impl ShardSpec {
    /// Validates and builds a spec. Split points must be strictly
    /// ascending (equal or descending points would create empty or
    /// ambiguous ranges by construction, not by data).
    pub fn new(key_column: usize, split_points: Vec<i64>) -> Result<Self> {
        for w in split_points.windows(2) {
            if w[0] >= w[1] {
                return Err(Error::invalid(format!(
                    "shard split points must be strictly ascending ({} then {})",
                    w[0], w[1]
                )));
            }
        }
        Ok(ShardSpec {
            key_column,
            split_points,
        })
    }

    /// Ordinal of the shard key column.
    pub fn key_column(&self) -> usize {
        self.key_column
    }

    /// The split points, ascending.
    pub fn split_points(&self) -> &[i64] {
        &self.split_points
    }

    /// Number of shards (always ≥ 1).
    pub fn shard_count(&self) -> usize {
        self.split_points.len() + 1
    }

    /// The shard owning `key`. A key equal to a split point routes to the
    /// shard whose range *starts* there (split points are inclusive lower
    /// bounds).
    pub fn shard_of(&self, key: i64) -> usize {
        self.split_points.partition_point(|&s| s <= key)
    }

    /// Half-open range `[lo, hi)` of shard `i`; `None` is an open end.
    pub fn bounds(&self, i: usize) -> (Option<i64>, Option<i64>) {
        let lo = if i == 0 {
            None
        } else {
            Some(self.split_points[i - 1])
        };
        let hi = self.split_points.get(i).copied();
        (lo, hi)
    }

    /// `true` iff shard `i`'s range could contain a row satisfying every
    /// predicate — the shard-level analogue of stripe skipping. Only
    /// predicates on the key column with an `Int64` literal constrain the
    /// range; everything else is conservatively "may match".
    pub fn shard_may_match(&self, i: usize, predicates: &[ColumnPredicate]) -> bool {
        let (lo, hi) = self.bounds(i);
        predicates.iter().all(|p| {
            if p.column != self.key_column {
                return true;
            }
            let Value::Int64(v) = p.literal else {
                return true;
            };
            // Evaluate in i128: `hi - 1` must not wrap at i64::MIN.
            let (lo, hi, v) = (lo.map(i128::from), hi.map(i128::from), i128::from(v));
            match p.op {
                PredicateOp::Eq => lo.is_none_or(|l| l <= v) && hi.is_none_or(|h| v < h),
                // Shard holds keys in [lo, hi): some key < v iff lo < v.
                PredicateOp::Lt => lo.is_none_or(|l| l < v),
                PredicateOp::Le => lo.is_none_or(|l| l <= v),
                // Largest possible key is hi - 1.
                PredicateOp::Gt => hi.is_none_or(|h| h - 1 > v),
                PredicateOp::Ge => hi.is_none_or(|h| h > v),
            }
        })
    }

    /// Durable encoding: magic, key column, split count, split points,
    /// CRC-32 over all of the above.
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 + 4 + 4 + 8 * self.split_points.len() + 4);
        buf.extend_from_slice(SHARD_MAP_MAGIC);
        buf.extend_from_slice(&(self.key_column as u32).to_le_bytes());
        buf.extend_from_slice(&(self.split_points.len() as u32).to_le_bytes());
        for s in &self.split_points {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    fn decode(data: &[u8]) -> Result<Self> {
        let err = |msg: &str| Error::corrupt(format!("shard map: {msg}"));
        if data.len() < 8 + 4 + 4 + 4 {
            return Err(err("truncated"));
        }
        if &data[..8] != SHARD_MAP_MAGIC {
            return Err(err("bad magic"));
        }
        let (body, crc_bytes) = data.split_at(data.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4-byte split"));
        if crc32(body) != stored {
            return Err(err("checksum mismatch"));
        }
        let key_column = u32::from_le_bytes(body[8..12].try_into().expect("slice")) as usize;
        let n = u32::from_le_bytes(body[12..16].try_into().expect("slice")) as usize;
        if body.len() != 16 + 8 * n {
            return Err(err("length inconsistent with split count"));
        }
        let split_points = (0..n)
            .map(|i| {
                let off = 16 + 8 * i;
                i64::from_le_bytes(body[off..off + 8].try_into().expect("slice"))
            })
            .collect();
        ShardSpec::new(key_column, split_points)
    }
}

/// Durable shard topology, persisted as a single CRC-framed DFS file so
/// it flows through the namenode edit log / checkpoint machinery and
/// survives crashes like every other piece of master-tier state.
pub struct ShardMap;

impl ShardMap {
    fn path(table: &str) -> String {
        format!("/warehouse/{table}/__shard_map")
    }

    fn tmp_path(table: &str) -> String {
        format!("/warehouse/{table}/__shard_map.tmp")
    }

    /// `true` iff `table` has a durable shard map (i.e. was created
    /// sharded).
    pub fn exists(env: &DualTableEnv, table: &str) -> bool {
        env.dfs.exists(&Self::path(table))
    }

    /// Persists the spec: write to a temp name, then the namenode's
    /// atomic rename publishes it. A crash before the rename leaves only
    /// the temp file (swept on the next create); after it, the map is
    /// fully durable.
    pub fn save(env: &DualTableEnv, table: &str, spec: &ShardSpec) -> Result<()> {
        let tmp = Self::tmp_path(table);
        if env.dfs.exists(&tmp) {
            env.dfs.delete(&tmp)?;
        }
        env.dfs.write_file(&tmp, &spec.encode())?;
        env.dfs.rename(&tmp, &Self::path(table))
    }

    /// Loads and validates the spec.
    pub fn load(env: &DualTableEnv, table: &str) -> Result<ShardSpec> {
        ShardSpec::decode(&env.dfs.read_to_vec(&Self::path(table))?)
    }

    fn delete(env: &DualTableEnv, table: &str) -> Result<()> {
        env.dfs.delete(&Self::path(table))
    }
}

/// Per-shard maintenance ledger, surfaced by `SHOW COMPACTION`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardFoldStats {
    /// Fold probes the round-robin walk pointed at this shard.
    pub attempted: u64,
    /// Probes that folded at least one file.
    pub folded: u64,
    /// Probes that lost the fold race to a concurrent writer.
    pub lost_race: u64,
    /// Probes that found nothing worth folding.
    pub clean: u64,
}

#[derive(Default)]
struct ShardFoldCounters {
    attempted: AtomicU64,
    folded: AtomicU64,
    lost_race: AtomicU64,
    clean: AtomicU64,
}

impl ShardFoldCounters {
    fn snapshot(&self) -> ShardFoldStats {
        ShardFoldStats {
            attempted: self.attempted.load(Ordering::Relaxed),
            folded: self.folded.load(Ordering::Relaxed),
            lost_race: self.lost_race.load(Ordering::Relaxed),
            clean: self.clean.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of one sharded UPDATE/DELETE: the per-shard plan reports, so
/// callers can see different key ranges independently landing on
/// different sides of the EDIT/OVERWRITE crossover.
#[derive(Debug, Clone)]
pub struct ShardedDmlReport {
    /// Total rows matched across executed shards.
    pub rows_matched: u64,
    /// Total rows scanned across executed shards.
    pub rows_scanned: u64,
    /// `(shard index, report)` for every shard the statement executed on
    /// (range-pruned shards are absent).
    pub per_shard: Vec<(usize, DmlReport)>,
}

impl ShardedDmlReport {
    /// Human summary of the plans chosen, e.g. `"EDIT×2, OVERWRITE×1"`.
    pub fn plan_summary(&self) -> String {
        let edits = self
            .per_shard
            .iter()
            .filter(|(_, r)| r.plan == PlanChoice::Edit)
            .count();
        let overwrites = self.per_shard.len() - edits;
        match (edits, overwrites) {
            (0, 0) => "no shards touched".to_string(),
            (e, 0) => format!("EDIT×{e}"),
            (0, o) => format!("OVERWRITE×{o}"),
            (e, o) => format!("EDIT×{e}, OVERWRITE×{o}"),
        }
    }
}

/// A cross-shard commit that failed partway. `committed` is the exact
/// prefix of shards (by store name, in shard order) whose commits are
/// already durable — mirroring the multi-table commit contract: the
/// client is told precisely what did happen.
#[derive(Debug)]
pub struct ShardCommitFailure {
    /// Shard store names whose commits are durable.
    pub committed: Vec<String>,
    /// The shard store name whose commit failed.
    pub failed: String,
    /// The underlying error.
    pub error: Error,
}

struct ShardedInner {
    name: String,
    schema: Schema,
    env: DualTableEnv,
    spec: ShardSpec,
    shards: Vec<DualTableStore>,
    /// Round-robin cursor of the maintenance walk.
    cursor: AtomicUsize,
    folds: Vec<ShardFoldCounters>,
}

/// One logical table backed by range shards. Cheap to clone (`Arc`).
#[derive(Clone)]
pub struct ShardedTable {
    inner: Arc<ShardedInner>,
}

impl ShardedTable {
    fn shard_store_name(table: &str, i: usize) -> String {
        format!("{table}__s{i}")
    }

    fn validate_spec(schema: &Schema, spec: &ShardSpec) -> Result<()> {
        let Some(field) = schema.fields().get(spec.key_column) else {
            return Err(Error::schema(format!(
                "shard key column {} out of range",
                spec.key_column
            )));
        };
        if field.data_type != DataType::Int64 {
            return Err(Error::schema(format!(
                "shard key column '{}' must be BIGINT (range sharding is by integer key)",
                field.name
            )));
        }
        Ok(())
    }

    /// Creates a sharded table: persists the shard map first (the map is
    /// the table's durable existence marker), then creates every shard.
    /// A crash between those steps leaves a map with missing shards;
    /// [`ShardedTable::open`] heals that by creating the absentees — an
    /// empty shard is indistinguishable from a never-written one.
    pub fn create(
        env: &DualTableEnv,
        name: &str,
        schema: Schema,
        config: DualTableConfig,
        spec: ShardSpec,
    ) -> Result<Self> {
        Self::validate_spec(&schema, &spec)?;
        if ShardMap::exists(env, name) {
            return Err(Error::AlreadyExists(format!("sharded table '{name}'")));
        }
        ShardMap::save(env, name, &spec)?;
        let shards = (0..spec.shard_count())
            .map(|i| {
                DualTableStore::create(
                    env,
                    &Self::shard_store_name(name, i),
                    schema.clone(),
                    config.clone(),
                )
            })
            .collect::<Result<Vec<_>>>()?;
        env.shard_health.add_shards(shards.len() as u64);
        Ok(Self::assemble(env, name, schema, spec, shards))
    }

    /// Opens a sharded table from its durable map, creating any shard a
    /// create-time crash left missing. The shard gauge is not re-added on
    /// open: it counts shards brought online by `create`, and a reopened
    /// process starts a fresh counter anyway.
    pub fn open(
        env: &DualTableEnv,
        name: &str,
        schema: Schema,
        config: DualTableConfig,
    ) -> Result<Self> {
        let spec = ShardMap::load(env, name)?;
        Self::validate_spec(&schema, &spec)?;
        let shards = (0..spec.shard_count())
            .map(|i| {
                DualTableStore::open_or_create(
                    env,
                    &Self::shard_store_name(name, i),
                    schema.clone(),
                    config.clone(),
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self::assemble(env, name, schema, spec, shards))
    }

    /// `true` iff a durable shard map exists for `name`.
    pub fn exists(env: &DualTableEnv, name: &str) -> bool {
        ShardMap::exists(env, name)
    }

    fn assemble(
        env: &DualTableEnv,
        name: &str,
        schema: Schema,
        spec: ShardSpec,
        shards: Vec<DualTableStore>,
    ) -> Self {
        let folds = (0..shards.len())
            .map(|_| ShardFoldCounters::default())
            .collect();
        ShardedTable {
            inner: Arc::new(ShardedInner {
                name: name.to_string(),
                schema,
                env: env.clone(),
                spec,
                shards,
                cursor: AtomicUsize::new(0),
                folds,
            }),
        }
    }

    /// Logical table name (shard stores are `{name}__s{i}`).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The table schema (identical across shards).
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// The environment this table lives on.
    pub fn env(&self) -> &DualTableEnv {
        &self.inner.env
    }

    /// The shard topology.
    pub fn spec(&self) -> &ShardSpec {
        &self.inner.spec
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The underlying shard stores, in range order.
    pub fn shards(&self) -> &[DualTableStore] {
        &self.inner.shards
    }

    /// Maintenance ledger of shard `i`.
    pub fn fold_stats(&self, i: usize) -> ShardFoldStats {
        self.inner.folds[i].snapshot()
    }

    /// The shard a key routes to.
    pub fn shard_for_key(&self, key: i64) -> usize {
        self.inner.spec.shard_of(key)
    }

    fn key_of(&self, row: &Row) -> Result<i64> {
        match row.get(self.inner.spec.key_column()) {
            Some(Value::Int64(k)) => Ok(*k),
            _ => Err(Error::schema(format!(
                "shard key column {} must be a non-NULL BIGINT in every row",
                self.inner.spec.key_column()
            ))),
        }
    }

    /// Partitions rows into one bucket per shard (buckets may be empty).
    fn partition(&self, rows: Vec<Row>) -> Result<Vec<Vec<Row>>> {
        let mut buckets: Vec<Vec<Row>> = (0..self.shard_count()).map(|_| Vec::new()).collect();
        for row in rows {
            let shard = self.inner.spec.shard_of(self.key_of(&row)?);
            buckets[shard].push(row);
        }
        Ok(buckets)
    }

    /// Shard indices whose range survives the predicates' key-range
    /// constraints; everything else is pruned before any I/O.
    pub fn shards_matching(&self, predicates: Option<&[ColumnPredicate]>) -> Vec<usize> {
        (0..self.shard_count())
            .filter(|&i| match predicates {
                Some(p) => self.inner.spec.shard_may_match(i, p),
                None => true,
            })
            .collect()
    }

    /// Routes an INSERT: each row goes to exactly one shard.
    pub fn insert_rows(&self, rows: Vec<Row>) -> Result<u64> {
        let buckets = self.partition(rows)?;
        let mut n = 0u64;
        for (i, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                n += self.inner.shards[i].insert_rows(bucket)?;
            }
        }
        Ok(n)
    }

    /// INSERT OVERWRITE: every shard is rewritten, including shards whose
    /// bucket is empty (their old content must vanish too).
    pub fn insert_overwrite(&self, rows: Vec<Row>) -> Result<u64> {
        let buckets = self.partition(rows)?;
        let mut n = 0u64;
        for (i, bucket) in buckets.into_iter().enumerate() {
            n += self.inner.shards[i].insert_overwrite(bucket)?;
        }
        Ok(n)
    }

    /// Scatter-gather scan: range pruning first (pruned shards see zero
    /// I/O — their files are never opened), then the surviving shards
    /// scan in parallel on the engine's job pool, then the gather
    /// concatenates in shard order (= ordered merge; see module docs).
    pub fn scan_scatter(
        &self,
        projection: Option<&[usize]>,
        predicates: Option<&[ColumnPredicate]>,
        deadline: &Deadline,
    ) -> Result<Vec<Row>> {
        let health = &self.inner.env.shard_health;
        health.record_scatter_scan();
        let matched = self.shards_matching(predicates);
        health.record_shards_pruned((self.shard_count() - matched.len()) as u64);
        let mut opts = UnionReadOptions::all();
        opts.projection = projection.map(<[usize]>::to_vec);
        opts.predicates = predicates.map(<[ColumnPredicate]>::to_vec);
        let per_shard = dt_engine::parallel_map_fallible(
            &JobConfig::default(),
            matched,
            |i: usize| -> Result<Vec<Row>> {
                let mut rows = Vec::new();
                let mut since_check = 0usize;
                self.inner.shards[i].for_each(&opts, |_, row| {
                    since_check += 1;
                    if since_check >= DEADLINE_CHECK_ROWS {
                        since_check = 0;
                        deadline.check()?;
                    }
                    rows.push(row);
                    Ok(ControlFlow::Continue(()))
                })?;
                Ok(rows)
            },
        )?;
        Ok(per_shard.into_iter().flatten().collect())
    }

    /// Total row count across shards.
    pub fn count(&self) -> Result<u64> {
        let mut n = 0u64;
        for s in &self.inner.shards {
            n += s.count()?;
        }
        Ok(n)
    }

    /// Sharded UPDATE: range pruning via `pushdown`, then each surviving
    /// shard runs its own cost model — different ranges may independently
    /// choose EDIT vs OVERWRITE.
    pub fn update_keyed(
        &self,
        predicate: impl Fn(&Row) -> bool + Sync,
        assignments: &[Assignment<'_>],
        ratio: RatioHint,
        statement_key: Option<&str>,
        pushdown: Option<&[ColumnPredicate]>,
    ) -> Result<ShardedDmlReport> {
        let mut out = ShardedDmlReport {
            rows_matched: 0,
            rows_scanned: 0,
            per_shard: Vec::new(),
        };
        for i in self.shards_matching(pushdown) {
            let report =
                self.inner.shards[i].update_keyed(&predicate, assignments, ratio, statement_key)?;
            out.rows_matched += report.rows_matched;
            out.rows_scanned += report.rows_scanned;
            out.per_shard.push((i, report));
        }
        Ok(out)
    }

    /// Sharded DELETE (see [`ShardedTable::update_keyed`]).
    pub fn delete_keyed(
        &self,
        predicate: impl Fn(&Row) -> bool + Sync,
        ratio: RatioHint,
        statement_key: Option<&str>,
        pushdown: Option<&[ColumnPredicate]>,
    ) -> Result<ShardedDmlReport> {
        let mut out = ShardedDmlReport {
            rows_matched: 0,
            rows_scanned: 0,
            per_shard: Vec::new(),
        };
        for i in self.shards_matching(pushdown) {
            let report = self.inner.shards[i].delete_keyed(&predicate, ratio, statement_key)?;
            out.rows_matched += report.rows_matched;
            out.rows_scanned += report.rows_scanned;
            out.per_shard.push((i, report));
        }
        Ok(out)
    }

    /// Full COMPACT of every shard.
    pub fn compact(&self) -> Result<()> {
        for s in &self.inner.shards {
            s.compact()?;
        }
        Ok(())
    }

    /// One incremental maintenance step, walking shards round-robin: the
    /// cursor advances one shard per probe, so in any window of
    /// `shard_count` consecutive calls every shard is probed exactly once
    /// — no shard is starved for more than one full cycle. Probing stops
    /// at the first shard that actually had work (folded or lost a race);
    /// clean shards just advance the cursor.
    pub fn compact_incremental(&self) -> Result<FoldOutcome> {
        let n = self.shard_count();
        for _ in 0..n {
            let i = self.inner.cursor.fetch_add(1, Ordering::Relaxed) % n;
            let counters = &self.inner.folds[i];
            counters.attempted.fetch_add(1, Ordering::Relaxed);
            match self.inner.shards[i].compact_incremental()? {
                FoldOutcome::Folded { files, rows } => {
                    counters.folded.fetch_add(1, Ordering::Relaxed);
                    return Ok(FoldOutcome::Folded { files, rows });
                }
                FoldOutcome::LostRace => {
                    counters.lost_race.fetch_add(1, Ordering::Relaxed);
                    return Ok(FoldOutcome::LostRace);
                }
                FoldOutcome::Clean => {
                    counters.clean.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        Ok(FoldOutcome::Clean)
    }

    /// Opens a cross-shard transaction: every shard is pinned at a
    /// snapshot up front, so the statement sees one consistent epoch per
    /// shard and FCW conflict checks run per shard at commit.
    pub fn begin_transaction(&self) -> Result<ShardedTransaction> {
        let txns = self
            .inner
            .shards
            .iter()
            .map(|s| s.begin_transaction())
            .collect::<Result<Vec<_>>>()?;
        Ok(ShardedTransaction {
            table: self.clone(),
            txns,
        })
    }

    /// Drops every shard and the durable shard map.
    pub fn drop_table(self) -> Result<()> {
        let n = self.inner.shards.len() as u64;
        // The Arc is uniquely held in practice (the catalog removed its
        // handle); shards are owned stores, so drop each in turn.
        let inner = Arc::try_unwrap(self.inner).map_err(|_| {
            Error::invalid("cannot drop a sharded table while other handles are live")
        })?;
        for shard in inner.shards {
            shard.drop_table()?;
        }
        ShardMap::delete(&inner.env, &inner.name)?;
        inner.env.shard_health.remove_shards(n);
        Ok(())
    }
}

/// A transaction spanning every shard of one table. DML routes to the
/// per-shard [`Transaction`]s; commit walks shards in range order and
/// reports the committed prefix on partial failure.
pub struct ShardedTransaction {
    table: ShardedTable,
    txns: Vec<Transaction>,
}

impl ShardedTransaction {
    /// Buffers an INSERT, routing each row to its shard's transaction.
    pub fn insert(&mut self, rows: Vec<Row>) -> Result<u64> {
        let buckets = self.table.partition(rows)?;
        let mut n = 0u64;
        for (i, bucket) in buckets.into_iter().enumerate() {
            if !bucket.is_empty() {
                n += self.txns[i].insert(bucket)?;
            }
        }
        Ok(n)
    }

    /// Buffers an UPDATE against every shard; returns total matched.
    pub fn update(
        &mut self,
        predicate: impl Fn(&Row) -> bool,
        assignments: &[Assignment<'_>],
    ) -> Result<u64> {
        let mut n = 0u64;
        for txn in &mut self.txns {
            n += txn.update(&predicate, assignments)?;
        }
        Ok(n)
    }

    /// Buffers a DELETE against every shard; returns total matched.
    pub fn delete(&mut self, predicate: impl Fn(&Row) -> bool) -> Result<u64> {
        let mut n = 0u64;
        for txn in &mut self.txns {
            n += txn.delete(&predicate)?;
        }
        Ok(n)
    }

    /// Snapshot read across all shards, in range order.
    pub fn rows(&self, projection: Option<&[usize]>) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        for txn in &self.txns {
            out.extend(txn.rows(projection)?);
        }
        Ok(out)
    }

    /// `true` iff no shard transaction buffered a write.
    pub fn is_read_only(&self) -> bool {
        self.txns.iter().all(Transaction::is_read_only)
    }

    /// Commits shard-by-shard in range order (read-only shards just
    /// release their pins). Each shard's commit is its own FCW conflict
    /// check and durable publish; once shard `i` commits there is no
    /// undo, so a failure at shard `j` reports the exact durable prefix
    /// `[..j)` — the same contract the multi-table session commit gives
    /// across tables. Returns total rows written on full success.
    pub fn commit(self) -> std::result::Result<u64, Box<ShardCommitFailure>> {
        let table = self.table;
        let mut committed: Vec<String> = Vec::new();
        let mut wrote = 0usize;
        let mut rows = 0u64;
        for (i, txn) in self.txns.into_iter().enumerate() {
            let name = table.inner.shards[i].name().to_string();
            if txn.is_read_only() {
                txn.rollback();
                continue;
            }
            match txn.commit() {
                Ok(n) => {
                    rows += n;
                    wrote += 1;
                    committed.push(name);
                }
                Err(error) => {
                    if !committed.is_empty() {
                        table
                            .inner
                            .env
                            .shard_health
                            .record_cross_shard_partial_commit();
                    }
                    return Err(Box::new(ShardCommitFailure {
                        committed,
                        failed: name,
                        error,
                    }));
                }
            }
        }
        if wrote >= 2 {
            table.inner.env.shard_health.record_cross_shard_commit();
        }
        Ok(rows)
    }

    /// Discards every shard's buffered writes and releases all pins.
    pub fn rollback(self) {
        for txn in self.txns {
            txn.rollback();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(splits: &[i64]) -> ShardSpec {
        ShardSpec::new(0, splits.to_vec()).unwrap()
    }

    #[test]
    fn split_points_route_to_right_shard() {
        let s = spec(&[10, 20]);
        assert_eq!(s.shard_count(), 3);
        assert_eq!(s.shard_of(i64::MIN), 0);
        assert_eq!(s.shard_of(9), 0);
        assert_eq!(
            s.shard_of(10),
            1,
            "key == split point starts the next shard"
        );
        assert_eq!(s.shard_of(19), 1);
        assert_eq!(s.shard_of(20), 2);
        assert_eq!(s.shard_of(i64::MAX), 2);
    }

    #[test]
    fn bounds_are_half_open() {
        let s = spec(&[10, 20]);
        assert_eq!(s.bounds(0), (None, Some(10)));
        assert_eq!(s.bounds(1), (Some(10), Some(20)));
        assert_eq!(s.bounds(2), (Some(20), None));
    }

    #[test]
    fn non_ascending_splits_rejected() {
        assert!(ShardSpec::new(0, vec![10, 10]).is_err());
        assert!(ShardSpec::new(0, vec![20, 10]).is_err());
        assert!(ShardSpec::new(0, vec![]).is_ok(), "single shard is legal");
    }

    #[test]
    fn shard_map_roundtrip_and_corruption() {
        let s = ShardSpec::new(3, vec![-5, 0, 1_000_000]).unwrap();
        let bytes = s.encode();
        assert_eq!(ShardSpec::decode(&bytes).unwrap(), s);
        // Flip one split-point byte: the CRC must catch it.
        let mut bad = bytes.clone();
        bad[20] ^= 0xFF;
        assert!(ShardSpec::decode(&bad).is_err());
        assert!(ShardSpec::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(ShardSpec::decode(b"NOTAMAP!").is_err());
    }

    fn pred(op: PredicateOp, v: i64) -> ColumnPredicate {
        ColumnPredicate::new(0, op, Value::Int64(v))
    }

    #[test]
    fn range_pruning_per_operator() {
        let s = spec(&[10, 20]); // shards: (-inf,10) [10,20) [20,+inf)
        let matches = |p: ColumnPredicate| -> Vec<usize> {
            (0..3)
                .filter(|&i| s.shard_may_match(i, std::slice::from_ref(&p)))
                .collect()
        };
        assert_eq!(matches(pred(PredicateOp::Eq, 10)), vec![1]);
        assert_eq!(matches(pred(PredicateOp::Eq, 9)), vec![0]);
        assert_eq!(matches(pred(PredicateOp::Lt, 10)), vec![0]);
        assert_eq!(matches(pred(PredicateOp::Le, 10)), vec![0, 1]);
        assert_eq!(matches(pred(PredicateOp::Gt, 19)), vec![2]);
        assert_eq!(matches(pred(PredicateOp::Gt, 18)), vec![1, 2]);
        assert_eq!(matches(pred(PredicateOp::Ge, 19)), vec![1, 2]);
        assert_eq!(matches(pred(PredicateOp::Ge, 20)), vec![2]);
        // Conjunction with an empty intersection prunes everything.
        let none: Vec<usize> = (0..3)
            .filter(|&i| {
                s.shard_may_match(i, &[pred(PredicateOp::Lt, 5), pred(PredicateOp::Gt, 25)])
            })
            .collect();
        assert!(none.is_empty());
        // Predicates on other columns never prune.
        let other = ColumnPredicate::new(1, PredicateOp::Eq, Value::Int64(7));
        assert_eq!(
            (0..3)
                .filter(|&i| s.shard_may_match(i, std::slice::from_ref(&other)))
                .count(),
            3
        );
    }

    #[test]
    fn extreme_bounds_do_not_overflow() {
        let s = spec(&[i64::MIN + 1, i64::MAX]);
        // `hi - 1` at the extremes must not wrap.
        assert!(s.shard_may_match(0, &[pred(PredicateOp::Ge, i64::MIN)]));
        assert!(!s.shard_may_match(0, &[pred(PredicateOp::Ge, i64::MIN + 1)]));
        assert!(s.shard_may_match(2, &[pred(PredicateOp::Ge, i64::MAX)]));
        assert!(!s.shard_may_match(1, &[pred(PredicateOp::Gt, i64::MAX - 1)]));
    }
}
