//! DualTable configuration.

use dt_common::RetryPolicy;
use dt_orcfile::WriterOptions;

use crate::cost::Rates;

/// How UPDATE/DELETE choose their implementation plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanMode {
    /// Decide per statement with the §IV cost model (the paper's default).
    #[default]
    CostBased,
    /// Always write deltas to the Attached Table ("DualTable EDIT" in the
    /// paper's figures).
    AlwaysEdit,
    /// Always rewrite the Master Table (Hive's behaviour).
    AlwaysOverwrite,
}

/// Background incremental compaction knobs (DESIGN.md §15).
///
/// These bound one *cycle* of the maintenance loop; the supervisor's
/// restart/backoff/circuit-breaker policy lives with the supervisor
/// (`dt_engine::Supervisor`), not per table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompactionConfig {
    /// Upper bound on master files folded per incremental cycle: the
    /// "pick the k dirtiest" of the fold score
    /// ([`crate::cost::CostModel::fold_score`]). `0` disables
    /// incremental folding entirely (every cycle is a no-op).
    pub max_files_per_cycle: usize,
    /// Files carrying fewer attached cells than this are never fold
    /// candidates — folding them would pay a full rewrite to reclaim
    /// almost nothing.
    pub min_attached_cells: u64,
}

impl Default for CompactionConfig {
    fn default() -> Self {
        CompactionConfig {
            max_files_per_cycle: 2,
            min_attached_cells: 1,
        }
    }
}

/// Per-table configuration.
#[derive(Debug, Clone)]
pub struct DualTableConfig {
    /// Maximum rows per master ORC file; inserts roll over to a new file
    /// (and a new file ID) beyond this.
    pub rows_per_file: usize,
    /// ORC writer options for master files.
    pub writer: WriterOptions,
    /// Plan selection mode.
    pub plan_mode: PlanMode,
    /// The cost model's `k`: how many times the table is expected to be
    /// read after a modification (set by the designer or inferred from the
    /// HiveQL code, per §IV).
    pub k_successive_reads: u32,
    /// Throughput rates used by the cost model.
    pub rates: Rates,
    /// Rows sampled when a DML statement provides no ratio hint.
    pub sample_rows: usize,
    /// Encoded size of a delete marker in the Attached Table (the `m` of
    /// the §IV DELETE model).
    pub delete_marker_bytes: u64,
    /// Retry policy for table-level operations that may hit transient
    /// storage faults (COMPACT; see DESIGN.md §8). Tier-internal retries
    /// (DFS pipeline, KV env I/O) are configured on those tiers.
    pub retry: RetryPolicy,
    /// Maximum parsed ORC footers kept by this table's footer cache
    /// (DESIGN.md §10). `0` disables the cache and re-parses every footer
    /// on every open.
    pub footer_cache_entries: u64,
    /// Worker threads for the parallel rewrite fan-out: OVERWRITE-plan
    /// DML, INSERT OVERWRITE and COMPACT partition their work across this
    /// many writers, each streaming into its own master files (DESIGN.md
    /// §12). `1` (or a single-file table) reproduces the sequential write
    /// path exactly. The commit step is always single-threaded regardless.
    pub write_threads: usize,
    /// How many dead (superseded *and* unpinned) generations may linger
    /// before the sweeper physically deletes them (DESIGN.md §13).
    /// Generations pinned by live readers are always kept regardless;
    /// `0` deletes dead generations as soon as they drain — the
    /// single-session behaviour.
    pub max_generations: usize,
    /// Background incremental compaction knobs (DESIGN.md §15).
    pub compaction: CompactionConfig,
    /// Memory budget for the delta (shadow) tier in the attached kvstore
    /// (DESIGN.md §17). EDIT-plan DML routes its cells through the
    /// WAL-durable in-memory tier — no memtable or SSTable work on the
    /// hot path — until the tier holds this many bytes, at which point it
    /// spills into the LSM proper. `0` disables the delta tier and EDITs
    /// write straight to the memtable (the pre-HTAP behaviour).
    pub delta_bytes: usize,
}

impl Default for DualTableConfig {
    fn default() -> Self {
        DualTableConfig {
            rows_per_file: 1 << 20,
            writer: WriterOptions::default(),
            plan_mode: PlanMode::CostBased,
            k_successive_reads: 1,
            rates: Rates::default(),
            sample_rows: 2_000,
            // Row key (8) + qualifier (2) + LSM entry overhead.
            delete_marker_bytes: 26,
            retry: RetryPolicy::default(),
            footer_cache_entries: 1024,
            // Like Hadoop's default mapper count: one writer per core.
            write_threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            max_generations: 0,
            compaction: CompactionConfig::default(),
            delta_bytes: 0,
        }
    }
}
