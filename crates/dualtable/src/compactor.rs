//! Background incremental compaction (DESIGN.md §15).
//!
//! The paper's COMPACT is all-or-nothing and foreground: it rewrites every
//! master file and blocks all other operations while it runs. This module
//! holds the table-side pieces of the *incremental* alternative — fold only
//! the k dirtiest files, in the background, without ever blocking DML:
//!
//! * [`FoldOutcome`] — what one maintenance cycle
//!   ([`crate::DualTableStore::compact_incremental`]) did;
//! * [`CompactionController`] — the shared mode/state cell behind
//!   `SET COMPACTION = AUTO | OFF` and `SHOW COMPACTION`, read by the
//!   server's maintenance daemon every tick.
//!
//! The fold itself lives in `store.rs` (candidate scoring, the
//! carried/folded build, the incremental swing) because it is made of the
//! same MVCC machinery as the full two-phase COMPACT; the supervisor that
//! drives cycles, restarts panicked workers and throttles under load lives
//! in `dt_engine::Supervisor`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Outcome of one incremental fold cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FoldOutcome {
    /// A fold swung in: `files` master files merged with their overlays
    /// into fresh files, `rows` rows written into the new generation
    /// (carried copies included).
    Folded {
        /// Master files folded (their attached rows are retired).
        files: usize,
        /// Rows written into the new generation.
        rows: u64,
    },
    /// A concurrent commit won the swing race; the built generation was
    /// abandoned. Clean retry next cycle.
    LostRace,
    /// Nothing was dirty enough to fold.
    Clean,
}

/// Whether the maintenance daemon may fold at all (`SET COMPACTION`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionMode {
    /// The daemon folds whenever the fold score finds work (the default).
    #[default]
    Auto,
    /// The daemon idles; `COMPACT TABLE … INCREMENTAL` still works.
    Off,
}

/// What the maintenance daemon is doing right now (`SHOW COMPACTION`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactorState {
    /// Waiting for the next tick.
    #[default]
    Idle,
    /// A fold cycle is in flight.
    Running,
    /// Paused because the server is under load (queue depth / shedding);
    /// resumes automatically when the pressure drains.
    Throttled,
    /// The circuit breaker tripped on repeated permanent failures;
    /// compaction stays down until `SET COMPACTION = AUTO` resets it.
    Parked,
}

/// The shared mode/state cell coordinating sessions (`SET COMPACTION`,
/// `SHOW COMPACTION`) with the background maintenance daemon. One per
/// environment; lock-free because every access is a single word.
#[derive(Debug, Default)]
pub struct CompactionController {
    mode: AtomicU8,
    state: AtomicU8,
    /// Bumped on every `set_mode`, even a no-op one — the daemon's parked
    /// circuit breaker unparks when it sees the epoch move past the value
    /// it recorded at park time, so `SET COMPACTION = AUTO` always works
    /// as a reset lever regardless of the mode it "changes" from.
    epoch: AtomicU64,
}

impl CompactionController {
    /// A controller in the default `AUTO` / `Idle` position.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current mode.
    pub fn mode(&self) -> CompactionMode {
        match self.mode.load(Ordering::Acquire) {
            0 => CompactionMode::Auto,
            _ => CompactionMode::Off,
        }
    }

    /// Flips the mode (`SET COMPACTION = AUTO | OFF`). Switching to
    /// `AUTO` is also the operator's reset lever for a parked breaker:
    /// the daemon observes the mode change and resumes from `Idle`.
    pub fn set_mode(&self, mode: CompactionMode) {
        let v = match mode {
            CompactionMode::Auto => 0,
            CompactionMode::Off => 1,
        };
        self.mode.store(v, Ordering::Release);
        self.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// How many times `set_mode` has ever been called. A parked daemon
    /// records this at park time and unparks when it moves while the mode
    /// reads `AUTO`.
    pub fn mode_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The daemon's current state.
    pub fn state(&self) -> CompactorState {
        match self.state.load(Ordering::Acquire) {
            0 => CompactorState::Idle,
            1 => CompactorState::Running,
            2 => CompactorState::Throttled,
            _ => CompactorState::Parked,
        }
    }

    /// Publishes the daemon's state (the daemon is the only writer).
    pub fn set_state(&self, state: CompactorState) {
        let v = match state {
            CompactorState::Idle => 0,
            CompactorState::Running => 1,
            CompactorState::Throttled => 2,
            CompactorState::Parked => 3,
        };
        self.state.store(v, Ordering::Release);
    }

    /// `SHOW COMPACTION`'s rendering of the mode.
    pub fn mode_name(&self) -> &'static str {
        match self.mode() {
            CompactionMode::Auto => "auto",
            CompactionMode::Off => "off",
        }
    }

    /// `SHOW COMPACTION`'s rendering of the state.
    pub fn state_name(&self) -> &'static str {
        match self.state() {
            CompactorState::Idle => "idle",
            CompactorState::Running => "running",
            CompactorState::Throttled => "throttled",
            CompactorState::Parked => "parked",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompactionConfig, DualTableConfig, PlanMode};
    use crate::cost::RatioHint;
    use crate::env::DualTableEnv;
    use crate::store::DualTableStore;
    use dt_common::{DataType, Schema, Value};

    #[test]
    fn controller_mode_and_state_roundtrip() {
        let c = CompactionController::new();
        assert_eq!(c.mode(), CompactionMode::Auto);
        assert_eq!(c.state(), CompactorState::Idle);
        assert_eq!(c.mode_epoch(), 0);
        c.set_mode(CompactionMode::Off);
        assert_eq!(c.mode(), CompactionMode::Off);
        assert_eq!(c.mode_name(), "off");
        c.set_mode(CompactionMode::Auto);
        assert_eq!(c.mode_epoch(), 2, "every set_mode bumps the epoch");
        for (state, name) in [
            (CompactorState::Running, "running"),
            (CompactorState::Throttled, "throttled"),
            (CompactorState::Parked, "parked"),
            (CompactorState::Idle, "idle"),
        ] {
            c.set_state(state);
            assert_eq!(c.state(), state);
            assert_eq!(c.state_name(), name);
        }
    }

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Float64)])
    }

    fn row(i: i64) -> Vec<Value> {
        vec![Value::Int64(i), Value::Float64(i as f64)]
    }

    fn config() -> DualTableConfig {
        DualTableConfig {
            rows_per_file: 8,
            plan_mode: PlanMode::AlwaysEdit,
            compaction: CompactionConfig {
                max_files_per_cycle: 1,
                min_attached_cells: 1,
            },
            ..DualTableConfig::default()
        }
    }

    /// Satellite regression: a half-folded table — the fold swung but its
    /// attached-row retirement was gated off (here by a pinned reader of
    /// the old generation, the same state a crash between swing and sweep
    /// leaves) — must, after crash-and-reopen, still skip clean files and
    /// never skip dirty ones. The open-time residue sweep retires exactly
    /// the folded file's presence and data rows, nothing else.
    #[test]
    fn half_folded_table_keeps_presence_honest_after_reopen() {
        let env = DualTableEnv::in_memory();
        let t = DualTableStore::create(&env, "ht", schema(), config()).unwrap();
        t.insert_rows((0..24).map(row)).unwrap(); // files 1, 2, 3
                                                  // File 3 (rows 16..24) very dirty, file 1 (row 0) slightly dirty,
                                                  // file 2 clean — with k = 1 the fold must pick file 3.
        t.update(
            |r| r[0].as_i64().unwrap() >= 16,
            &[(1, Box::new(|_| Value::Float64(-1.0)))],
            RatioHint::Explicit(0.3),
        )
        .unwrap();
        t.update(
            |r| r[0].as_i64().unwrap() == 0,
            &[(1, Box::new(|_| Value::Float64(-2.0)))],
            RatioHint::Explicit(0.05),
        )
        .unwrap();
        let candidates = t.fold_candidates().unwrap();
        assert_eq!(candidates, vec![3], "densest file wins the score");

        // A pinned reader of the old generation defers the attached-row
        // retirement at swing time — the durable state is then identical
        // to a crash between the swing and the sweep.
        let pin = t.begin_snapshot().unwrap();
        let outcome = t.compact_incremental().unwrap();
        assert_eq!(outcome, FoldOutcome::Folded { files: 1, rows: 24 });
        let index = t.presence_index().unwrap().expect("index stays decodable");
        assert!(
            index.files.contains_key(&3),
            "folded file's rows survive as residue while the pin lives"
        );
        // The pinned reader still sees its epoch exactly.
        assert_eq!(pin.count().unwrap(), 24);
        drop(pin);

        env.crash_and_reopen().unwrap();
        let t = DualTableStore::open(&env, "ht", schema(), config()).unwrap();

        // Residue swept: the folded file's presence entry is gone, the
        // dirty carried file's entry survives, the clean file never had
        // one.
        let index = t.presence_index().unwrap().expect("index stays decodable");
        assert!(!index.files.contains_key(&3), "fold residue swept at open");
        assert!(index.files.contains_key(&1), "dirty file still indexed");
        assert!(!index.files.contains_key(&2), "clean file never indexed");

        // Clean files are skipped, dirty ones are not: one scan must skip
        // exactly the clean carried file and the freshly folded file.
        let skipped_before = env.health.snapshot().attached_scans_skipped;
        let rows = t.scan_all().unwrap();
        let skipped = env.health.snapshot().attached_scans_skipped - skipped_before;
        assert_eq!(skipped, 2, "clean + folded files skip the attached scan");
        assert_eq!(rows.len(), 24);
        assert_eq!(
            rows[0].1[1],
            Value::Float64(-2.0),
            "dirty file never skipped"
        );
        for (_, r) in &rows[16..] {
            assert_eq!(r[1], Value::Float64(-1.0), "folded values are material");
        }
        // Ledger: the single cycle is exactly one started + one completed.
        let snap = env.health.snapshot();
        assert_eq!(snap.compactions_started, 1);
        assert_eq!(snap.compactions_completed, 1);
        assert_eq!(snap.compactions_lost_race + snap.compactions_aborted, 0);
    }

    /// An incremental cycle on a table with nothing dirty is a no-op and
    /// never opens the health ledger.
    #[test]
    fn clean_table_cycle_is_free() {
        let env = DualTableEnv::in_memory();
        let t = DualTableStore::create(&env, "c", schema(), config()).unwrap();
        t.insert_rows((0..8).map(row)).unwrap();
        assert_eq!(t.compact_incremental().unwrap(), FoldOutcome::Clean);
        assert_eq!(env.health.snapshot().compactions_started, 0);
        assert_eq!(t.pinned_snapshots(), 0, "no-op cycle leaks no pin");
    }

    /// `max_files_per_cycle: 0` disables folding outright.
    #[test]
    fn zero_budget_disables_folding() {
        let env = DualTableEnv::in_memory();
        let mut cfg = config();
        cfg.compaction.max_files_per_cycle = 0;
        let t = DualTableStore::create(&env, "z", schema(), cfg).unwrap();
        t.insert_rows((0..8).map(row)).unwrap();
        t.update(
            |_| true,
            &[(1, Box::new(|_| Value::Float64(0.0)))],
            RatioHint::Explicit(1.0),
        )
        .unwrap();
        assert!(t.fold_candidates().unwrap().is_empty());
        assert_eq!(t.compact_incremental().unwrap(), FoldOutcome::Clean);
    }
}
