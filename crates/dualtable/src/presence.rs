//! The attached-table presence index (DESIGN.md §10).
//!
//! UNION READ pays two per-file costs even when a master file has no
//! modifications at all: a KV range scan over the file's record-ID range,
//! and — because a single update cell *anywhere* in the table makes stripe
//! push-down unsound *everywhere* — the loss of all predicate pruning.
//!
//! The presence index removes both. It lives inside the attached table
//! itself, under the reserved master file ID `0` (real file IDs start at 1,
//! see [`crate::MetadataManager`]): the index row for master file `f` has
//! row key `RecordId(0, f)`, which sorts strictly before every data row, so
//! per-file data scans never see it. Its cells reuse the attached-cell
//! qualifier scheme — [`update_qualifier`]`(col)` holds the count of update
//! cells written for that column of file `f`, and
//! [`DELETE_MARKER_QUALIFIER`] holds the count of delete markers — each as
//! a big-endian `u64`.
//!
//! **Maintenance is transactional**: every EDIT-plan flush appends its
//! index increments to the same `put_batch` as the data cells, and the KV
//! store commits a batch as one fsynced WAL record — the index can never
//! drift from the data, even across crashes (a torn WAL tail drops the
//! whole record). OVERWRITE and COMPACT reset the index for free: the
//! attached-table truncate that retires the data cells retires the index
//! rows with them.
//!
//! **Snapshot soundness**: within a generation, attached cells only
//! accumulate — nothing deletes them short of the truncate at a generation
//! swap, which retires every record ID at once. Counts are therefore
//! monotone in time, and the index read at the *latest* timestamp is a
//! conservative over-approximation for every earlier snapshot: a file with
//! no index row is clean at any `snapshot_ts`, and a column listed as
//! updated may merely be "updated later". Skipping the scan for clean
//! files and withholding push-down for listed columns is thus sound for
//! time-travel reads too.

use std::collections::BTreeMap;

use dt_common::{Error, RecordId, Result};

use crate::attached::{update_qualifier, DELETE_MARKER_QUALIFIER};

/// The reserved master file ID under which index rows live.
pub const PRESENCE_FILE_ID: u32 = 0;

/// Row key of the index row for master file `file_id`.
pub fn presence_key(file_id: u32) -> [u8; 8] {
    RecordId::new(PRESENCE_FILE_ID, file_id).to_key()
}

/// Qualifier for one index cell: a column's update count, or the
/// delete-marker count when `column` is `None`.
pub fn presence_qualifier(column: Option<usize>) -> [u8; 2] {
    match column {
        Some(col) => update_qualifier(col),
        None => DELETE_MARKER_QUALIFIER,
    }
}

/// Decodes a big-endian `u64` count cell.
pub fn decode_count(bytes: &[u8]) -> Result<u64> {
    let arr: [u8; 8] = bytes
        .try_into()
        .map_err(|_| Error::corrupt("presence-index count is not 8 bytes"))?;
    Ok(u64::from_be_bytes(arr))
}

/// Encodes a count cell.
pub fn encode_count(count: u64) -> Vec<u8> {
    count.to_be_bytes().to_vec()
}

/// What the attached table holds for one master file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FilePresence {
    /// Delete markers written against this file.
    pub delete_markers: u64,
    /// Update cells written against this file, per column ordinal.
    pub update_counts: BTreeMap<usize, u64>,
}

impl FilePresence {
    /// `true` iff the file has neither updates nor delete markers.
    pub fn is_clean(&self) -> bool {
        self.delete_markers == 0 && self.update_counts.values().all(|&n| n == 0)
    }

    /// `true` iff at least one update cell targets `column` — the
    /// condition under which stripe push-down on that column is unsound
    /// for this file (an overlay can move a row into a range its stripe
    /// statistics exclude).
    pub fn has_update_on(&self, column: usize) -> bool {
        self.update_counts.get(&column).copied().unwrap_or(0) > 0
    }
}

/// The decoded index: per-master-file presence, files ascending.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PresenceIndex {
    /// Files with at least one attached cell. A file absent from this map
    /// is clean: UNION READ skips its attached scan and keeps full
    /// push-down.
    pub files: BTreeMap<u32, FilePresence>,
}

impl PresenceIndex {
    /// Presence info for one file, if it is dirty.
    pub fn file(&self, file_id: u32) -> Option<&FilePresence> {
        self.files.get(&file_id)
    }

    /// `true` iff the attached table holds anything for `file_id`.
    pub fn is_dirty(&self, file_id: u32) -> bool {
        self.files.contains_key(&file_id)
    }
}

/// Accumulates one statement's index increments between batch flushes:
/// `(master file, column-or-delete) → cells added`.
#[derive(Debug, Default)]
pub struct PresenceDelta {
    counts: BTreeMap<(u32, Option<usize>), u64>,
}

impl PresenceDelta {
    /// Fresh, empty delta.
    pub fn new() -> Self {
        PresenceDelta::default()
    }

    /// Records `n` update cells on `column` of `record`'s file.
    pub fn add_updates(&mut self, file_id: u32, column: usize, n: u64) {
        *self.counts.entry((file_id, Some(column))).or_insert(0) += n;
    }

    /// Records one delete marker on `record`'s file.
    pub fn add_delete(&mut self, file_id: u32) {
        *self.counts.entry((file_id, None)).or_insert(0) += 1;
    }

    /// `true` iff nothing was recorded since the last drain.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Takes the accumulated increments, leaving the delta empty.
    pub fn drain(&mut self) -> BTreeMap<(u32, Option<usize>), u64> {
        std::mem::take(&mut self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presence_rows_sort_before_every_data_row() {
        // File IDs start at 1; the index row for any file sorts before the
        // first data row of file 1.
        let first_data = RecordId::file_start(1).to_key();
        assert!(presence_key(u32::MAX) < first_data);
        assert!(presence_key(0) < first_data);
    }

    #[test]
    fn count_codec_roundtrip() {
        assert_eq!(decode_count(&encode_count(0)).unwrap(), 0);
        assert_eq!(decode_count(&encode_count(u64::MAX)).unwrap(), u64::MAX);
        assert!(decode_count(b"short").is_err());
    }

    #[test]
    fn delta_accumulates_and_drains() {
        let mut d = PresenceDelta::new();
        assert!(d.is_empty());
        d.add_updates(3, 1, 2);
        d.add_updates(3, 1, 1);
        d.add_delete(3);
        d.add_delete(7);
        let drained = d.drain();
        assert!(d.is_empty());
        assert_eq!(drained[&(3, Some(1))], 3);
        assert_eq!(drained[&(3, None)], 1);
        assert_eq!(drained[&(7, None)], 1);
    }

    #[test]
    fn file_presence_cleanliness_and_pushdown_query() {
        let mut p = FilePresence::default();
        assert!(p.is_clean());
        p.update_counts.insert(2, 5);
        assert!(!p.is_clean());
        assert!(p.has_update_on(2));
        assert!(!p.has_update_on(0));
        let d = FilePresence {
            delete_markers: 1,
            ..Default::default()
        };
        assert!(!d.is_clean());
        assert!(!d.has_update_on(0), "delete markers never block push-down");
    }
}
