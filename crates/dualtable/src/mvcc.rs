//! MVCC bookkeeping for multi-session DualTables (DESIGN.md §13).
//!
//! The generation pointer (DESIGN.md §7) already gives every table a chain
//! of immutable master file sets; this module turns that chain into a
//! snapshot-isolation substrate shared by all sessions of a process:
//!
//! * **Snapshot pins** — a reader (or transaction) pins `(generation,
//!   timestamp)` at begin. Scans at a pin see exactly the master files
//!   committed at or before the pin's timestamp, overlaid with the
//!   attached cells at `scan_at(ts)` — the attached tier was always
//!   multi-versioned; this module extends the same visibility rule to
//!   master files via [`MvccState::file_visible`].
//! * **First-committer-wins conflicts** — every committed write records
//!   `record id → commit ts`; a transaction commits only if no record in
//!   its write set (and no generation swing) committed after its pin.
//!   Losers get a retryable [`Error::Conflict`].
//! * **Deferred generation GC** — a generation swing that would strand a
//!   pinned reader parks the old generation in a retired set instead of
//!   deleting it; the files (and their cached footers/blocks) are
//!   collected only when the last pin on that generation drains.
//!
//! All state is in-memory and per-process, guarded by one mutex per table:
//! pins and conflict windows are session metadata, not durable data. After
//! a crash there are no sessions, so an empty registry is the correct
//! recovered state (uncommitted transactional inserts are undone by the
//! durable intent cell — see [`crate::store`]).
//!
//! Lock order: a table's `ops` lock (read or write) is always acquired
//! before its [`TableMvcc`] state mutex; the state mutex is held across
//! the commit's KV write so the conflict check, the durable commit and the
//! bookkeeping update form one atomic step against other committers.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};

/// Qualifier *prefix* of transactional-insert intent cells, stored under
/// row key `RecordId { file_id: 0, row: 0 }` — strictly below every
/// presence row (`{0, file_id ≥ 1}`) and every data row. Column ordinals
/// top out at `0xFFFD` (table creation rejects wider schemas) and the
/// delete marker is `[0xFF, 0xFF]`, so the prefix collides with neither.
pub(crate) const TXN_INTENT_QUALIFIER: [u8; 2] = [0xFF, 0xFE];

/// The full intent qualifier for one transaction: the prefix plus the
/// transaction's first reserved file ID (file-ID ranges are never reused,
/// so concurrent transactions' intents never collide).
pub(crate) fn txn_intent_qualifier(first_file_id: u32) -> Vec<u8> {
    let mut qual = TXN_INTENT_QUALIFIER.to_vec();
    qual.extend_from_slice(&first_file_id.to_be_bytes());
    qual
}

/// Encodes a transactional-insert intent: the generation and file ids the
/// commit is about to create. Present in the attached table only between
/// intent write and commit; recovery deletes the listed files if it finds
/// one (the transaction never committed).
pub(crate) fn encode_txn_intent(gen: u64, file_ids: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * file_ids.len());
    out.extend_from_slice(&gen.to_be_bytes());
    for id in file_ids {
        out.extend_from_slice(&id.to_be_bytes());
    }
    out
}

/// Decodes [`encode_txn_intent`]; `None` on malformed bytes.
pub(crate) fn decode_txn_intent(bytes: &[u8]) -> Option<(u64, Vec<u32>)> {
    if bytes.len() < 8 || !(bytes.len() - 8).is_multiple_of(4) {
        return None;
    }
    let gen = u64::from_be_bytes(bytes[..8].try_into().ok()?);
    let ids = bytes[8..]
        .chunks_exact(4)
        .map(|c| u32::from_be_bytes(c.try_into().expect("chunks_exact(4)")))
        .collect();
    Some((gen, ids))
}

/// Visibility of one master file, keyed by `(generation, file id)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FileVis {
    /// Written but not committed (a transactional insert in flight):
    /// invisible to every snapshot.
    Staged,
    /// Committed at this timestamp: visible to snapshots at or after it.
    Committed(u64),
}

/// Why a commit or swing was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Conflict {
    /// The generation pointer swung after the snapshot was pinned.
    Swing,
    /// This record id committed after the snapshot was pinned.
    Record(u64),
}

/// Per-table MVCC state. All methods expect the caller to hold the state
/// mutex via [`TableMvcc::lock`].
#[derive(Debug, Default)]
pub(crate) struct MvccState {
    /// Timestamp of the last committed generation swing.
    last_swing_ts: u64,
    /// Timestamp of the last committed EDIT write (transactional or
    /// autocommit).
    last_edit_commit_ts: u64,
    /// `record id → commit ts` for the conflict window. Pruned of entries
    /// older than every live pin — they can never conflict again.
    record_commits: HashMap<u64, u64>,
    /// Master-file visibility overrides; a file absent here is visible at
    /// any timestamp (pre-registry data, recovered data).
    file_commits: HashMap<(u64, u32), FileVis>,
    /// Live pins: `pin ts → pinned generation`.
    pins: BTreeMap<u64, u64>,
    /// Superseded generations kept alive for pinned readers.
    retired: BTreeSet<u64>,
    /// Dead (superseded, unpinned) generations awaiting physical GC.
    drained: Vec<u64>,
    /// File ids strictly below this are retired with the old generations;
    /// their attached cells may be collected once `retired` empties.
    attached_floor: Option<u32>,
    /// Highest generation number handed to an off-to-the-side build, so
    /// two concurrent rewrites never share a directory.
    build_highwater: u64,
    /// Generations currently being built off to the side. Stale-generation
    /// cleanup must not delete them out from under their writers (the
    /// build would fail with I/O errors instead of a clean swing
    /// conflict).
    building: BTreeSet<u64>,
}

impl MvccState {
    /// Registers a pin at `(gen, ts)`.
    pub(crate) fn pin(&mut self, gen: u64, ts: u64) {
        self.pins.insert(ts, gen);
    }

    /// Drops the pin taken at `ts`.
    pub(crate) fn unpin(&mut self, ts: u64) {
        self.pins.remove(&ts);
    }

    /// Live pins count (diagnostics).
    pub(crate) fn pin_count(&self) -> usize {
        self.pins.len()
    }

    /// First-committer-wins check for a snapshot pinned at `snapshot_ts`:
    /// `None` iff nothing the snapshot raced with has committed since.
    /// `write_set` lists the record ids the committer intends to write;
    /// pass an empty slice for swings (they conflict with *any* later
    /// commit, which `last_edit_commit_ts` covers) and insert-only
    /// transactions (only a swing invalidates their target generation).
    pub(crate) fn conflict_since(&self, snapshot_ts: u64, write_set: &[u64]) -> Option<Conflict> {
        if self.last_swing_ts > snapshot_ts {
            return Some(Conflict::Swing);
        }
        for &record in write_set {
            if self
                .record_commits
                .get(&record)
                .is_some_and(|&ts| ts > snapshot_ts)
            {
                return Some(Conflict::Record(record));
            }
        }
        None
    }

    /// `true` iff an EDIT write committed after `snapshot_ts` — the extra
    /// condition a rewrite swing checks (its new files were derived from
    /// the snapshot, so any later edit would be silently lost).
    pub(crate) fn edits_since(&self, snapshot_ts: u64) -> bool {
        self.last_edit_commit_ts > snapshot_ts
    }

    /// Records a committed EDIT write (transactional or autocommit) over
    /// `records` at `commit_ts`, then prunes conflict entries no live pin
    /// can ever race with.
    pub(crate) fn note_edit_commit(
        &mut self,
        records: impl IntoIterator<Item = u64>,
        commit_ts: u64,
    ) {
        for record in records {
            self.record_commits.insert(record, commit_ts);
        }
        self.last_edit_commit_ts = self.last_edit_commit_ts.max(commit_ts);
        if self.record_commits.len() > 4096 {
            let min_pin = self.pins.keys().next().copied().unwrap_or(commit_ts);
            self.record_commits.retain(|_, ts| *ts > min_pin);
        }
    }

    /// Marks a freshly created master file invisible until committed.
    pub(crate) fn stage_file(&mut self, gen: u64, file_id: u32) {
        self.file_commits.insert((gen, file_id), FileVis::Staged);
    }

    /// Commits staged or new files at `commit_ts`.
    pub(crate) fn commit_files(
        &mut self,
        gen: u64,
        file_ids: impl IntoIterator<Item = u32>,
        commit_ts: u64,
    ) {
        for id in file_ids {
            self.file_commits
                .insert((gen, id), FileVis::Committed(commit_ts));
        }
    }

    /// Forgets staged files (aborted transactional insert).
    pub(crate) fn unstage_files(&mut self, gen: u64, file_ids: impl IntoIterator<Item = u32>) {
        for id in file_ids {
            if self.file_commits.get(&(gen, id)) == Some(&FileVis::Staged) {
                self.file_commits.remove(&(gen, id));
            }
        }
    }

    /// Whether a snapshot at `at_ts` may read `(gen, file_id)`. Files with
    /// no recorded visibility (pre-registry, recovered after a crash) are
    /// visible at any timestamp.
    pub(crate) fn file_visible(&self, gen: u64, file_id: u32, at_ts: u64) -> bool {
        match self.file_commits.get(&(gen, file_id)) {
            None => true,
            Some(FileVis::Staged) => false,
            Some(FileVis::Committed(ts)) => *ts <= at_ts,
        }
    }

    /// Reserves a generation number for an off-to-the-side build: at least
    /// `candidate` (what the directory listing implies) and past every
    /// number already handed out.
    #[cfg(test)]
    pub(crate) fn reserve_build_gen(&mut self, candidate: u64) -> u64 {
        let gen = self.observe_build_gen(candidate);
        self.building.insert(gen);
        gen
    }

    /// Like [`MvccState::reserve_build_gen`] but without registering the
    /// build for cleanup protection — the same-thread rewrite path, whose
    /// builds run entirely under the table's write lock (nothing can sweep
    /// concurrently) but must still stay clear of reserved numbers: a
    /// reserved build may have written zero files, leaving no directory
    /// for the listing-based candidate to see.
    pub(crate) fn observe_build_gen(&mut self, candidate: u64) -> u64 {
        let gen = candidate.max(self.build_highwater + 1);
        self.build_highwater = gen;
        gen
    }

    /// Registers an already-reserved generation number as a build in
    /// progress (cleanup protection) — for callers that obtained the
    /// number via [`MvccState::observe_build_gen`].
    pub(crate) fn register_build(&mut self, gen: u64) {
        self.build_highwater = self.build_highwater.max(gen);
        self.building.insert(gen);
    }

    /// Marks an off-to-the-side build as no longer in progress (finished
    /// or abandoned); its directory becomes fair game for cleanup.
    pub(crate) fn finish_build(&mut self, gen: u64) {
        self.building.remove(&gen);
    }

    /// Records a committed swing `old_gen → new_gen` at `swing_ts`.
    /// `floor` is the lowest file id belonging to `new_gen`: every id
    /// below it is retired with the old generations. `own_pin_ts` is the
    /// swinging rewrite's build pin, which it is about to release and must
    /// not count as a stranded reader. Returns `true` iff `old_gen` must
    /// be kept for *another* pinned reader (deferred GC).
    pub(crate) fn note_swing(
        &mut self,
        old_gen: u64,
        new_gen: u64,
        swing_ts: u64,
        floor: u32,
        own_pin_ts: Option<u64>,
    ) -> bool {
        self.last_swing_ts = swing_ts;
        self.build_highwater = self.build_highwater.max(new_gen);
        self.attached_floor = Some(self.attached_floor.map_or(floor, |f| f.max(floor)));
        // Conflict windows only matter within a generation: the swing
        // retires every old record id, and new pins (ts > swing_ts) can
        // only conflict with commits after the swing.
        self.record_commits.retain(|_, ts| *ts > swing_ts);
        // File visibility records of a *pinned* old generation must
        // survive the swing: its readers still rely on them to hide files
        // committed after their pin (an absent record means always
        // visible). They are pruned when the generation drains
        // ([`MvccState::take_sweepable`]).
        let pinned_gens: BTreeSet<u64> = self.pins.values().copied().collect();
        self.file_commits
            .retain(|(g, _), _| *g >= new_gen || pinned_gens.contains(g));
        self.building.remove(&new_gen);
        let pinned = self
            .pins
            .iter()
            .any(|(&ts, &g)| g == old_gen && Some(ts) != own_pin_ts);
        if pinned {
            self.retired.insert(old_gen);
        } else {
            self.drained.push(old_gen);
        }
        pinned
    }

    /// Forgets the attached-tier floor without sweeping it — the legacy
    /// single-session commit truncates the whole attached table instead,
    /// which subsumes any ranged sweep.
    pub(crate) fn clear_attached_floor(&mut self) {
        self.attached_floor = None;
    }

    /// Moves retired generations whose last pin drained into the dead
    /// list, then hands back what to collect: the dead generations (all of
    /// them once they outnumber `max_generations`) and, when no old-
    /// generation pin remains at all, the attached-tier floor to sweep
    /// below. Physical deletion is the caller's job — this only updates
    /// bookkeeping.
    pub(crate) fn take_sweepable(&mut self, max_generations: usize) -> (Vec<u64>, Option<u32>) {
        let newly_dead: Vec<u64> = self
            .retired
            .iter()
            .copied()
            .filter(|g| !self.pins.values().any(|p| p == g))
            .collect();
        for g in &newly_dead {
            self.retired.remove(g);
        }
        // A drained generation has no readers left: its file visibility
        // records (kept alive by note_swing for its pins) can go too.
        self.file_commits
            .retain(|(g, _), _| !newly_dead.contains(g));
        self.drained.extend(newly_dead);
        let gens = if self.drained.len() > max_generations {
            std::mem::take(&mut self.drained)
        } else {
            Vec::new()
        };
        let floor = if self.retired.is_empty() && self.attached_floor.is_some() {
            self.attached_floor.take()
        } else {
            None
        };
        (gens, floor)
    }

    /// Generations that must survive stale-generation cleanup: retired
    /// (pinned) ones and dead ones whose deletion is budgeted to the
    /// sweeper (so `generations_gcd` accounting stays exact).
    pub(crate) fn protected_gens(&self) -> BTreeSet<u64> {
        let mut keep: BTreeSet<u64> = self.retired.iter().copied().collect();
        keep.extend(self.drained.iter().copied());
        keep.extend(self.pins.values().copied());
        keep.extend(self.building.iter().copied());
        keep
    }

    /// Dead generations currently leaked within the `max_generations`
    /// budget (tests).
    #[cfg(test)]
    pub(crate) fn drained_count(&self) -> usize {
        self.drained.len()
    }

    /// Retired (pinned) generation count (tests).
    pub(crate) fn retired_count(&self) -> usize {
        self.retired.len()
    }
}

/// One table's MVCC state behind its mutex.
#[derive(Debug, Default)]
pub(crate) struct TableMvcc {
    state: Mutex<MvccState>,
}

impl TableMvcc {
    /// Acquires the state mutex. Held across the whole commit step —
    /// conflict check, durable KV write, bookkeeping — so commits are
    /// atomic against each other and against pin acquisition.
    pub(crate) fn lock(&self) -> MutexGuard<'_, MvccState> {
        self.state.lock()
    }
}

/// Process-wide MVCC registry, one entry per table name. Shared through
/// [`crate::DualTableEnv`] so every [`crate::DualTableStore`] clone and
/// every session sees the same pins and conflict windows.
#[derive(Debug, Default)]
pub struct MvccRegistry {
    tables: Mutex<HashMap<String, Arc<TableMvcc>>>,
}

impl MvccRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MvccRegistry::default()
    }

    /// The state cell for `table`, created on first use.
    pub(crate) fn table(&self, table: &str) -> Arc<TableMvcc> {
        self.tables
            .lock()
            .entry(table.to_string())
            .or_default()
            .clone()
    }

    /// Forgets a dropped table's state.
    pub(crate) fn remove(&self, table: &str) {
        self.tables.lock().remove(table);
    }

    /// Discards all state — the registry's crash semantics: pins and
    /// conflict windows are session metadata and no session survives a
    /// restart. Called by [`crate::DualTableEnv::crash_and_reopen`].
    pub fn reset(&self) {
        self.tables.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_detection_is_first_committer_wins() {
        let mut s = MvccState::default();
        // Pin at ts 10; someone commits record 7 at ts 12.
        s.pin(0, 10);
        s.note_edit_commit([7u64], 12);
        assert_eq!(s.conflict_since(10, &[7]), Some(Conflict::Record(7)));
        assert_eq!(s.conflict_since(10, &[8]), None, "disjoint write set");
        assert_eq!(s.conflict_since(12, &[7]), None, "pinned at the commit");
        assert_eq!(s.conflict_since(10, &[]), None, "read-only never loses");
        assert!(s.edits_since(10));
        assert!(!s.edits_since(12));
    }

    #[test]
    fn swing_conflicts_every_later_committer() {
        let mut s = MvccState::default();
        s.note_swing(0, 1, 20, 5, None);
        assert_eq!(s.conflict_since(10, &[]), Some(Conflict::Swing));
        assert_eq!(s.conflict_since(25, &[]), None);
    }

    #[test]
    fn file_visibility_tracks_commit_ts() {
        let mut s = MvccState::default();
        assert!(s.file_visible(0, 1, 0), "unknown files always visible");
        s.stage_file(0, 2);
        assert!(!s.file_visible(0, 2, u64::MAX), "staged invisible to all");
        s.commit_files(0, [2u32], 15);
        assert!(!s.file_visible(0, 2, 10));
        assert!(s.file_visible(0, 2, 15));
        s.stage_file(0, 3);
        s.unstage_files(0, [3u32]);
        assert!(s.file_visible(0, 3, 0), "unstaged file forgotten");
    }

    #[test]
    fn swing_defers_gc_only_for_pinned_generations() {
        let mut s = MvccState::default();
        s.pin(0, 10);
        assert!(
            s.note_swing(0, 1, 20, 4, None),
            "pinned generation deferred"
        );
        assert_eq!(s.retired_count(), 1);
        let (gens, floor) = s.take_sweepable(0);
        assert!(gens.is_empty(), "still pinned");
        assert_eq!(floor, None, "attached floor waits for the pin");
        s.unpin(10);
        let (gens, floor) = s.take_sweepable(0);
        assert_eq!(gens, vec![0]);
        assert_eq!(floor, Some(4));
        assert_eq!(s.retired_count(), 0);
    }

    #[test]
    fn unpinned_swing_drains_immediately() {
        let mut s = MvccState::default();
        assert!(!s.note_swing(0, 1, 20, 4, None));
        let (gens, floor) = s.take_sweepable(0);
        assert_eq!(gens, vec![0]);
        assert_eq!(floor, Some(4));
    }

    #[test]
    fn max_generations_budgets_dead_leak() {
        let mut s = MvccState::default();
        s.note_swing(0, 1, 10, 2, None);
        let (gens, _) = s.take_sweepable(2);
        assert!(gens.is_empty(), "1 dead <= budget 2");
        assert_eq!(s.drained_count(), 1);
        s.note_swing(1, 2, 20, 4, None);
        let (gens, _) = s.take_sweepable(2);
        assert!(gens.is_empty(), "2 dead <= budget 2");
        s.note_swing(2, 3, 30, 6, None);
        let (gens, _) = s.take_sweepable(2);
        assert_eq!(gens, vec![0, 1, 2], "over budget: sweep all");
        assert_eq!(s.drained_count(), 0);
    }

    #[test]
    fn build_generations_never_collide() {
        let mut s = MvccState::default();
        assert_eq!(s.reserve_build_gen(1), 1);
        assert_eq!(s.reserve_build_gen(1), 2, "second builder bumped");
        s.note_swing(0, 5, 10, 2, None);
        assert_eq!(s.reserve_build_gen(3), 6, "past the committed swing");
    }

    #[test]
    fn intent_codec_round_trips() {
        let bytes = encode_txn_intent(7, &[3, 9, 100]);
        assert_eq!(decode_txn_intent(&bytes), Some((7, vec![3, 9, 100])));
        let bytes = encode_txn_intent(1, &[]);
        assert_eq!(decode_txn_intent(&bytes), Some((1, vec![])));
        assert_eq!(decode_txn_intent(&[1, 2, 3]), None, "truncated header");
        assert_eq!(decode_txn_intent(&bytes[..7]), None);
    }

    #[test]
    fn registry_shares_state_per_table_name() {
        let reg = MvccRegistry::new();
        let a = reg.table("t");
        let b = reg.table("t");
        a.lock().pin(0, 5);
        assert_eq!(b.lock().pin_count(), 1);
        assert_eq!(reg.table("u").lock().pin_count(), 0);
        reg.remove("t");
        assert_eq!(reg.table("t").lock().pin_count(), 0);
        let c = reg.table("v");
        c.lock().pin(0, 9);
        reg.reset();
        assert_eq!(reg.table("v").lock().pin_count(), 0);
    }
}
