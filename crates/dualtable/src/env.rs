//! The shared substrate a set of DualTables lives on: one DFS (master
//! tier), one KV cluster (attached tier + system-wide metadata table).

use dt_common::Result;
use dt_dfs::{Dfs, DfsConfig};
use dt_kvstore::{KvCluster, KvConfig};

use crate::meta::MetadataManager;

/// The deployment environment (Figure 3): HDFS for master tables, HBase
/// for attached tables and a system-wide metadata table.
#[derive(Clone)]
pub struct DualTableEnv {
    /// Master tier.
    pub dfs: Dfs,
    /// Attached tier.
    pub kv: KvCluster,
    /// The system-wide metadata manager.
    pub meta: MetadataManager,
}

impl DualTableEnv {
    /// Fully in-memory environment (tests, deterministic experiments).
    pub fn in_memory() -> Self {
        Self::new(
            Dfs::in_memory(DfsConfig::default()),
            KvCluster::in_memory(KvConfig::default()),
        )
        .expect("in-memory env cannot fail")
    }

    /// Environment over caller-provided tiers.
    pub fn new(dfs: Dfs, kv: KvCluster) -> Result<Self> {
        let meta = MetadataManager::open(&kv)?;
        Ok(DualTableEnv { dfs, kv, meta })
    }

    /// On-disk environment rooted at `root` (benchmarks with real file
    /// I/O).
    pub fn on_disk(root: impl AsRef<std::path::Path>) -> Result<Self> {
        let root = root.as_ref();
        Self::new(
            Dfs::on_disk(root.join("dfs"), DfsConfig::default())?,
            KvCluster::on_disk(root.join("kv"), KvConfig::default())?,
        )
    }
}
