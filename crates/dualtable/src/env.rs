//! The shared substrate a set of DualTables lives on: one DFS (master
//! tier), one KV cluster (attached tier + system-wide metadata table).

use std::sync::Arc;

use dt_common::fault::FaultPlan;
use dt_common::{HealthCounters, HealthSnapshot, Result, ShardHealthCounters, ShardHealthSnapshot};
use dt_dfs::{Dfs, DfsConfig};
use dt_kvstore::{KvCluster, KvConfig};

use crate::compactor::CompactionController;
use crate::meta::MetadataManager;
use crate::mvcc::MvccRegistry;

/// Per-tier self-healing counters (see DESIGN.md §8) — the table behind
/// `SHOW HEALTH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HealthReport {
    /// Master tier: replica failovers, quarantines, re-replication,
    /// block-pipeline retries.
    pub dfs: HealthSnapshot,
    /// Attached tier: WAL/SSTable retries, read-only degraded flag.
    pub kv: HealthSnapshot,
    /// Table tier: OVERWRITE→EDIT plan fallbacks, COMPACT retries,
    /// post-commit cleanup failures awaiting GC.
    pub table: HealthSnapshot,
    /// Serving tier (`dualtabled`, DESIGN.md §14): active sessions,
    /// dispatch-queue depth, admission-control shedding, statement
    /// timeouts, and connections torn down mid-transaction. All zero
    /// when the environment is used as a plain library.
    pub server: HealthSnapshot,
    /// Sharding tier (DESIGN.md §16): live shards, scatter scans, range
    /// pruning and cross-shard commit outcomes. All zero until a
    /// range-sharded table is created.
    pub shard: ShardHealthSnapshot,
}

impl HealthReport {
    /// `(tier, metric, value)` triples over all five tiers, in a stable
    /// order — the row source for `SHOW HEALTH`.
    pub fn metrics(&self) -> Vec<(&'static str, &'static str, u64)> {
        let mut out = Vec::new();
        for (tier, snap) in [
            ("dfs", &self.dfs),
            ("kv", &self.kv),
            ("table", &self.table),
            ("server", &self.server),
        ] {
            for (metric, value) in snap.metrics() {
                out.push((tier, metric, value));
            }
        }
        // The delta (HTAP) tier reports through the kv snapshot but as
        // its own tier row group: `delta_bytes_used` is a live gauge the
        // cluster fills at snapshot time (DESIGN.md §17).
        for (metric, value) in self.kv.delta_metrics() {
            out.push(("delta", metric, value));
        }
        for (metric, value) in self.shard.metrics() {
            out.push(("shard", metric, value));
        }
        out
    }
}

/// The deployment environment (Figure 3): HDFS for master tables, HBase
/// for attached tables and a system-wide metadata table.
#[derive(Clone)]
pub struct DualTableEnv {
    /// Master tier.
    pub dfs: Dfs,
    /// Attached tier.
    pub kv: KvCluster,
    /// The system-wide metadata manager.
    pub meta: MetadataManager,
    /// Table-tier self-healing counters (plan fallbacks, compact retries,
    /// deferred-cleanup debt). Shared by every table on this environment.
    pub health: Arc<HealthCounters>,
    /// The process-wide MVCC registry (DESIGN.md §13): snapshot pins,
    /// write-write conflict windows and deferred generation GC, shared by
    /// every session on this environment.
    pub mvcc: Arc<MvccRegistry>,
    /// Serving-tier counters (DESIGN.md §14), bumped by `dualtabled`'s
    /// admission control and teardown machinery and surfaced as the
    /// `server` tier of `SHOW HEALTH`. Idle (all zero) outside a server.
    pub server_health: Arc<HealthCounters>,
    /// Background-compaction mode/state cell (DESIGN.md §15), shared by
    /// every session (`SET COMPACTION`, `SHOW COMPACTION`) and the
    /// server's maintenance daemon. Inert as a plain library.
    pub compaction: Arc<CompactionController>,
    /// Sharding-tier counters (DESIGN.md §16), bumped by the
    /// [`ShardedTable`](crate::ShardedTable) routing layer and surfaced
    /// as the `shard` tier of `SHOW HEALTH`. Idle without sharded tables.
    pub shard_health: Arc<ShardHealthCounters>,
}

impl DualTableEnv {
    /// Fully in-memory environment (tests, deterministic experiments).
    pub fn in_memory() -> Self {
        Self::new(
            Dfs::in_memory(DfsConfig::default()),
            KvCluster::in_memory(KvConfig::default()),
        )
        .expect("in-memory env cannot fail")
    }

    /// Fully in-memory environment whose every storage operation — DFS
    /// block I/O and KV file I/O alike — consults the shared `plan`.
    ///
    /// Build the plan disarmed (or call [`FaultPlan::set_armed`] around
    /// setup) if table creation itself must not fault; with a disarmed
    /// plan this environment behaves identically to
    /// [`DualTableEnv::in_memory`].
    pub fn in_memory_faulty(plan: Arc<FaultPlan>) -> Result<Self> {
        Self::in_memory_faulty_with(plan, DfsConfig::default(), KvConfig::default())
    }

    /// [`DualTableEnv::in_memory_faulty`] with explicit tier configs —
    /// the entry point for availability experiments that vary the retry
    /// policies (e.g. proving a fault schedule is survivable only *with*
    /// retries).
    pub fn in_memory_faulty_with(
        plan: Arc<FaultPlan>,
        dfs_config: DfsConfig,
        kv_config: KvConfig,
    ) -> Result<Self> {
        Self::new(
            Dfs::in_memory_faulty(dfs_config, plan.clone()),
            KvCluster::in_memory_faulty(kv_config, plan),
        )
    }

    /// Environment over caller-provided tiers.
    pub fn new(dfs: Dfs, kv: KvCluster) -> Result<Self> {
        let meta = MetadataManager::open(&kv)?;
        Ok(DualTableEnv {
            dfs,
            kv,
            meta,
            health: Arc::new(HealthCounters::new()),
            mvcc: Arc::new(MvccRegistry::new()),
            server_health: Arc::new(HealthCounters::new()),
            compaction: Arc::new(CompactionController::new()),
            shard_health: Arc::new(ShardHealthCounters::new()),
        })
    }

    /// A point-in-time health report across all five tiers.
    pub fn health_report(&self) -> HealthReport {
        HealthReport {
            dfs: self.dfs.health().snapshot(),
            kv: self.kv.health_snapshot(),
            table: self.health.snapshot(),
            server: self.server_health.snapshot(),
            shard: self.shard_health.snapshot(),
        }
    }

    /// Simulates a whole-stack crash and restart: heals any sticky
    /// injected crash, reopens every KV table (WAL replay, SSTable
    /// quarantine), and restarts the DFS namenode — its in-memory
    /// namespace is discarded and rebuilt from the durable edit log and
    /// checkpoint, implicitly aborting any pending DFS writers (their
    /// blocks become orphans for the next scrub pass).
    pub fn crash_and_reopen(&self) -> Result<()> {
        self.kv.crash_and_reopen()?;
        self.dfs.crash_and_reopen()?;
        // No session survives a crash: every pin, conflict window and
        // staged file registered by the old process is gone. Durable
        // cleanup (uncommitted transactional inserts) is handled by the
        // intent cell on table open, not by this in-memory state.
        self.mvcc.reset();
        Ok(())
    }

    /// On-disk environment rooted at `root` (benchmarks with real file
    /// I/O).
    pub fn on_disk(root: impl AsRef<std::path::Path>) -> Result<Self> {
        let root = root.as_ref();
        Self::new(
            Dfs::on_disk(root.join("dfs"), DfsConfig::default())?,
            KvCluster::on_disk(root.join("kv"), KvConfig::default())?,
        )
    }
}
