//! UNION READ (paper §III-C): merge one master file's rows with the
//! Attached Table entries for its record-ID range.
//!
//! Record IDs within an ORC file ascend with the row number, and attached
//! row keys are big-endian record IDs, so both inputs arrive sorted and a
//! single forward pass suffices — "it only needs to read through and merge
//! two sorted ID lists" (§V-B).

use std::ops::ControlFlow;

use dt_common::{Error, RecordId, Result, Row};
use dt_kvstore::ScanIter;
use dt_orcfile::{ColumnPredicate, OrcReader};

use crate::attached::AttachedEntry;

/// Options for UNION READ scans.
#[derive(Debug, Clone, Default)]
pub struct UnionReadOptions {
    /// Columns to materialize, in order; `None` = all columns.
    pub projection: Option<Vec<usize>>,
    /// Stripe-skipping predicates.
    ///
    /// Applied per master file and per column: a predicate on column `c`
    /// is pushed down for file `f` unless the presence index says `f` has
    /// an update overlay on `c` (an overlay can move a row into a range
    /// its stripe statistics exclude). Delete markers never un-skip a
    /// stripe, so they don't block push-down. See DESIGN.md §10 for the
    /// soundness argument.
    pub predicates: Option<Vec<ColumnPredicate>>,
    /// Read at this attached-tier snapshot timestamp (`u64::MAX` = latest)
    /// — time-travel over the attached table's multi-version history.
    pub snapshot_ts: u64,
}

impl UnionReadOptions {
    /// Default options reading everything at the latest snapshot.
    pub fn all() -> Self {
        UnionReadOptions {
            projection: None,
            predicates: None,
            snapshot_ts: u64::MAX,
        }
    }

    /// Restricts to the given columns.
    pub fn with_projection(mut self, projection: Vec<usize>) -> Self {
        self.projection = Some(projection);
        self
    }
}

/// Merges one master file with its attached entries, invoking `f` per
/// surviving row. Returns `Break` if the callback stopped the scan.
///
/// `attached` must be a scan over exactly this file's record-ID range, or
/// `None` when the presence index proved the file clean — the merge then
/// degenerates to a pure master scan with no KV work at all.
/// `projection` is the list of materialized column ordinals (absolute),
/// matching the ORC reader's projection; update overlays are mapped through
/// it. `apply_pushdown` tells whether the ORC reader was given predicates
/// (in which case skipped rows simply never surface here).
pub(crate) fn merge_file(
    file_id: u32,
    reader: &OrcReader,
    projection: &[usize],
    predicates: Option<&[ColumnPredicate]>,
    attached: Option<ScanIter>,
    f: &mut dyn FnMut(RecordId, Row) -> Result<ControlFlow<()>>,
) -> Result<ControlFlow<()>> {
    let mut attached = attached.map(Iterator::peekable);
    let mut rows = reader.rows(Some(projection), predicates)?;
    // Position of each absolute column ordinal within the projected row.
    let mut pos_of = vec![usize::MAX; reader.schema().len()];
    for (pos, col) in projection.iter().enumerate() {
        pos_of[*col] = pos;
    }

    loop {
        let (row_number, mut row) = match rows.next() {
            None => break,
            Some(r) => r?,
        };
        let record = RecordId::new(
            file_id,
            u32::try_from(row_number)
                .map_err(|_| Error::corrupt("row number exceeds record-ID range"))?,
        );
        let key = record.to_key();

        // Advance the attached scan to this record, discarding any entries
        // for record IDs the master scan has already passed (these can only
        // be rows hidden by stripe skipping).
        let mut entry: Option<AttachedEntry> = None;
        while let Some(attached) = attached.as_mut() {
            match attached.peek() {
                None => break,
                Some(Err(_)) => {
                    // Surface the error.
                    return Err(attached
                        .next()
                        .expect("peeked Some")
                        .expect_err("peeked Err"));
                }
                Some(Ok(kv_row)) => {
                    if kv_row.row.as_slice() < key.as_slice() {
                        attached.next();
                    } else if kv_row.row.as_slice() == key.as_slice() {
                        let kv_row = attached.next().expect("peeked Some")?;
                        entry = Some(AttachedEntry::from_row(&kv_row)?);
                        break;
                    } else {
                        break;
                    }
                }
            }
        }

        if let Some(entry) = entry {
            if entry.deleted {
                continue;
            }
            for (column, value) in entry.updates {
                let pos = pos_of.get(column).copied().unwrap_or(usize::MAX);
                if pos != usize::MAX {
                    row[pos] = value;
                }
            }
        }
        if let ControlFlow::Break(()) = f(record, row)? {
            return Ok(ControlFlow::Break(()));
        }
    }
    Ok(ControlFlow::Continue(()))
}
