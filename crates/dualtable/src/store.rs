//! The DualTable store: master + attached storage, DML plans, COMPACT.

use std::borrow::Cow;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::ControlFlow;
use std::sync::Arc;

use dt_common::{Error, RecordId, Result, Row, Schema, Value};
use dt_orcfile::{
    ColumnPredicate, FooterCache, FooterCacheStats, OrcReader, OrcWriter, FILE_ID_METADATA_KEY,
};
use parking_lot::{Mutex, RwLock};

use crate::attached::{delete_cell, update_cells};
use crate::compactor::FoldOutcome;
use crate::config::{DualTableConfig, PlanMode};
use crate::cost::{CostModel, PlanChoice, RatioHint};
use crate::delta::DeltaPolicy;
use crate::env::DualTableEnv;
use crate::mvcc::{
    decode_txn_intent, encode_txn_intent, Conflict, TableMvcc, TXN_INTENT_QUALIFIER,
};
use crate::presence::{
    decode_count, encode_count, presence_key, presence_qualifier, FilePresence, PresenceDelta,
    PresenceIndex, PRESENCE_FILE_ID,
};
use crate::txn::{RewriteJob, RowPatch, Snapshot, Transaction};
use crate::union_read::{merge_file, UnionReadOptions};

/// Aggregate statistics of one DualTable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStats {
    /// Bytes across all master ORC files.
    pub master_bytes: u64,
    /// Rows across all master files (before attached deletions).
    pub master_rows: u64,
    /// Number of master files.
    pub master_files: u64,
    /// Approximate bytes in the Attached Table.
    pub attached_bytes: u64,
    /// Version entries in the Attached Table.
    pub attached_entries: u64,
}

/// What the cost model *would* do for a DML statement (see
/// [`DualTableStore::plan_preview`]) — the basis of `EXPLAIN`.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanPreview {
    /// The plan that would run.
    pub plan: PlanChoice,
    /// The (sampled) modification ratio.
    pub ratio: f64,
    /// Equation (1)/(2) difference; positive favours EDIT.
    pub cost_diff: f64,
    /// Master size D fed to the model.
    pub master_bytes: u64,
}

/// Outcome of an UPDATE or DELETE.
#[derive(Debug, Clone, PartialEq)]
pub struct DmlReport {
    /// The plan that was executed.
    pub plan: PlanChoice,
    /// Rows matching the predicate.
    pub rows_matched: u64,
    /// Rows scanned to execute the statement.
    pub rows_scanned: u64,
    /// The modification ratio fed to the cost model.
    pub ratio_used: f64,
    /// The cost-model difference (positive favours EDIT); `None` when the
    /// plan mode forced a plan.
    pub cost_diff: Option<f64>,
}

struct Inner {
    name: String,
    schema: Schema,
    env: DualTableEnv,
    config: DualTableConfig,
    /// Readers/EDIT-DML hold `read`; OVERWRITE-plan DML and COMPACT hold
    /// `write` ("all the other operations will be blocked during COMPACT",
    /// §III-C).
    ops: RwLock<()>,
    /// Parsed ORC footers of this table's master files (DESIGN.md §10).
    /// Invalidated by table prefix at every generation commit.
    footers: FooterCache,
    /// Serializes the read-modify-write of presence-index counts across
    /// concurrent EDIT statements (which only hold `ops` in read mode).
    presence_lock: Mutex<()>,
    /// This table's MVCC state (DESIGN.md §13): snapshot pins, conflict
    /// windows, deferred-GC bookkeeping. Shared through the environment's
    /// registry, so every clone and every session sees the same state.
    /// Lock order: `ops` (read or write) before this state's mutex;
    /// `presence_lock` may nest inside the state mutex.
    mvcc: Arc<TableMvcc>,
}

/// One DualTable (see the crate docs for the model).
///
/// Cheap to clone; clones share the table.
/// One `UPDATE` assignment: `(column ordinal, value function)`. `Sync`
/// because the OVERWRITE plan applies assignments from parallel rewrite
/// workers (DESIGN.md §12).
pub type Assignment<'a> = (usize, Box<dyn Fn(&Row) -> Value + Sync + 'a>);

#[derive(Clone)]
pub struct DualTableStore {
    inner: Arc<Inner>,
}

/// Decodes one presence-index qualifier: `None` = the delete-marker count,
/// `Some(col)` = column `col`'s update count.
fn presence_column(qual: &[u8]) -> Result<Option<usize>> {
    if qual == crate::attached::DELETE_MARKER_QUALIFIER {
        return Ok(None);
    }
    let bytes: [u8; 2] = qual
        .try_into()
        .map_err(|_| Error::corrupt("presence qualifier is not a column ordinal"))?;
    Ok(Some(u16::from_be_bytes(bytes) as usize))
}

/// `true` iff the index proves `file_id` has no attached cells — UNION READ
/// may skip its attached scan entirely. `None` (conservative fallback)
/// proves nothing.
fn file_is_clean(presence: Option<&PresenceIndex>, file_id: u32) -> bool {
    presence.is_some_and(|idx| !idx.is_dirty(file_id))
}

/// The predicates that may be pushed down into `file_id`'s ORC reader: all
/// of them for a clean file, those on columns without update overlays for a
/// dirty one, none under the conservative fallback. Dropping conjuncts is
/// always sound — predicates are a conjunction, so fewer of them only skip
/// fewer stripes.
fn file_predicates<'a>(
    presence: Option<&PresenceIndex>,
    predicates: Option<&'a [ColumnPredicate]>,
    file_id: u32,
) -> Option<Cow<'a, [ColumnPredicate]>> {
    let predicates = predicates?;
    let index = presence?;
    match index.file(file_id) {
        None => Some(Cow::Borrowed(predicates)),
        Some(fp) => {
            let kept: Vec<ColumnPredicate> = predicates
                .iter()
                .filter(|p| !fp.has_update_on(p.column))
                .cloned()
                .collect();
            if kept.is_empty() {
                None
            } else if kept.len() == predicates.len() {
                Some(Cow::Borrowed(predicates))
            } else {
                Some(Cow::Owned(kept))
            }
        }
    }
}

/// One worker's slice of a parallel rewrite: the master files it reads
/// and the output file-ID range its sink draws from.
struct RewritePartition {
    files: Vec<u32>,
    first_id: u32,
    id_count: u32,
}

/// Where a [`MasterWriteSink`] gets the file ID for each file it starts.
enum FileIdAlloc {
    /// One metadata-table counter bump per file (the sequential path).
    Shared,
    /// A contiguous range pre-reserved for one parallel rewrite worker
    /// via [`crate::meta::MetadataManager::reserve_file_ids`]. Drawing
    /// from a private range keeps workers off the shared counter and —
    /// because ranges are reserved in partition order — keeps the new
    /// generation's ascending-file-ID scan order equal to the
    /// concatenation of the partitions.
    Reserved { next: u32, remaining: u32 },
}

impl FileIdAlloc {
    fn next(&mut self, store: &DualTableStore) -> Result<u32> {
        match self {
            FileIdAlloc::Shared => store.inner.env.meta.next_file_id(&store.inner.name),
            FileIdAlloc::Reserved { next, remaining } => {
                if *remaining == 0 {
                    // Ranges are sized from footer row counts, which upper-
                    // bound the UNION READ output; exhaustion is a bug.
                    return Err(Error::internal(
                        "parallel rewrite exhausted its reserved file-ID range",
                    ));
                }
                let id = *next;
                *next += 1;
                *remaining -= 1;
                Ok(id)
            }
        }
    }
}

/// Incrementally writes rows into a generation's master files, rolling to
/// a fresh file (and file ID) every `rows_per_file` rows. At most one
/// file's writer is in flight, so feeding it from a streaming scan keeps
/// memory bounded by one file — COMPACT pipes the UNION READ straight in
/// instead of materializing the table.
struct MasterWriteSink<'a> {
    store: &'a DualTableStore,
    gen: u64,
    alloc: FileIdAlloc,
    writer: Option<OrcWriter>,
    in_file: usize,
    written: u64,
    /// File IDs this sink created, in creation order.
    created: Vec<u32>,
}

impl<'a> MasterWriteSink<'a> {
    fn new(store: &'a DualTableStore, gen: u64) -> Self {
        Self::with_alloc(store, gen, FileIdAlloc::Shared)
    }

    /// A sink drawing file IDs from the pre-reserved range
    /// `[first_id, first_id + count)` instead of the shared counter.
    fn reserved(store: &'a DualTableStore, gen: u64, first_id: u32, count: u32) -> Self {
        Self::with_alloc(
            store,
            gen,
            FileIdAlloc::Reserved {
                next: first_id,
                remaining: count,
            },
        )
    }

    fn with_alloc(store: &'a DualTableStore, gen: u64, alloc: FileIdAlloc) -> Self {
        MasterWriteSink {
            store,
            gen,
            alloc,
            writer: None,
            in_file: 0,
            written: 0,
            created: Vec::new(),
        }
    }

    fn push(&mut self, row: Row) -> Result<()> {
        let inner = &self.store.inner;
        if self.writer.is_none() {
            let file_id = self.alloc.next(self.store)?;
            self.created.push(file_id);
            let mut w = OrcWriter::create(
                &inner.env.dfs,
                &self.store.file_path_at(self.gen, file_id),
                inner.schema.clone(),
                inner.config.writer.clone(),
            )?;
            w.set_metadata(FILE_ID_METADATA_KEY, file_id.to_be_bytes().to_vec());
            self.writer = Some(w);
            self.in_file = 0;
        }
        self.writer
            .as_mut()
            .expect("writer just created")
            .write_row(row)?;
        self.written += 1;
        self.in_file += 1;
        if self.in_file >= inner.config.rows_per_file {
            self.writer.take().expect("writer exists").finish()?;
        }
        Ok(())
    }

    fn finish(mut self) -> Result<u64> {
        if let Some(w) = self.writer.take() {
            w.finish()?;
        }
        Ok(self.written)
    }

    /// [`MasterWriteSink::finish`] that also reports which file IDs the
    /// sink created — for callers that register file visibility with the
    /// MVCC state or write a transactional-insert undo intent.
    fn finish_with_ids(mut self) -> Result<(u64, Vec<u32>)> {
        if let Some(w) = self.writer.take() {
            w.finish()?;
        }
        Ok((self.written, std::mem::take(&mut self.created)))
    }
}

impl DualTableStore {
    fn attached_name(name: &str) -> String {
        format!("att_{name}")
    }

    fn master_dir(name: &str) -> String {
        format!("/warehouse/{name}")
    }

    /// Creates a new, empty DualTable. Fails if it already exists.
    pub fn create(
        env: &DualTableEnv,
        name: &str,
        schema: Schema,
        config: DualTableConfig,
    ) -> Result<Self> {
        if schema.is_empty() {
            return Err(Error::schema("DualTable schema must have columns"));
        }
        if schema.len() >= 0xFFFF {
            return Err(Error::schema("too many columns for qualifier encoding"));
        }
        env.kv.create_table(&Self::attached_name(name))?;
        Ok(DualTableStore {
            inner: Arc::new(Inner {
                name: name.to_string(),
                schema,
                env: env.clone(),
                footers: FooterCache::with_health(
                    config.footer_cache_entries,
                    Some(env.health.clone()),
                ),
                config,
                ops: RwLock::new(()),
                presence_lock: Mutex::new(()),
                mvcc: env.mvcc.table(name),
            }),
        })
    }

    /// Opens an existing DualTable. Retries any garbage collection a
    /// previous swap left behind (post-commit cleanup is best-effort; the
    /// debt is recorded in the health counters and settled here), and
    /// undoes any transactional insert whose intent cell survived a crash
    /// (the transaction never committed; its files must not reappear).
    pub fn open(
        env: &DualTableEnv,
        name: &str,
        schema: Schema,
        config: DualTableConfig,
    ) -> Result<Self> {
        env.kv.table(&Self::attached_name(name))?;
        let store = DualTableStore {
            inner: Arc::new(Inner {
                name: name.to_string(),
                schema,
                env: env.clone(),
                footers: FooterCache::with_health(
                    config.footer_cache_entries,
                    Some(env.health.clone()),
                ),
                config,
                ops: RwLock::new(()),
                presence_lock: Mutex::new(()),
                mvcc: env.mvcc.table(name),
            }),
        };
        store.recover_txn_intents();
        if let Ok(gen) = store.current_gen() {
            store.cleanup_stale_generations(gen);
        }
        store.sweep_fold_residue();
        Ok(store)
    }

    /// Opens the table if its attached KV table exists, otherwise creates
    /// it fresh. Used by sharded-table recovery: a crash between the
    /// durable shard-map write and the creation of the shard stores
    /// leaves some shards missing, and an empty shard is
    /// indistinguishable from a never-written one, so creating the
    /// absentee heals the topology.
    pub fn open_or_create(
        env: &DualTableEnv,
        name: &str,
        schema: Schema,
        config: DualTableConfig,
    ) -> Result<Self> {
        if env.kv.table(&Self::attached_name(name)).is_ok() {
            Self::open(env, name, schema, config)
        } else {
            Self::create(env, name, schema, config)
        }
    }

    /// Undoes a transactional insert interrupted between its durable
    /// intent write and its commit: the intent cell lists the master files
    /// the commit was about to publish; none of them committed, so delete
    /// them and the intent. Best-effort like all recovery cleanup —
    /// failures are recorded as cleanup debt and retried on the next open
    /// (an undeleted file stays invisible anyway until the intent cell is
    /// gone, and the intent is deleted last).
    fn recover_txn_intents(&self) {
        // A live pin means a session of this process is mid-transaction;
        // its intent is not crash debris. (After a real crash the registry
        // is empty, so recovery always runs.)
        if self.inner.mvcc.lock().pin_count() > 0 {
            return;
        }
        let Ok(attached) = self.attached() else {
            return;
        };
        if attached.is_empty() {
            return;
        }
        let intent_row = RecordId::new(PRESENCE_FILE_ID, 0);
        let Ok(scan) = attached.scan_at(
            Some(&intent_row.to_key()[..]),
            Some(&RecordId::new(PRESENCE_FILE_ID, 1).to_key()[..]),
            u64::MAX,
        ) else {
            self.inner.env.health.record_cleanup_failure();
            return;
        };
        for row in scan {
            let Ok(row) = row else {
                self.inner.env.health.record_cleanup_failure();
                return;
            };
            for (qual, _ts, value) in &row.cells {
                if !qual.starts_with(&TXN_INTENT_QUALIFIER) {
                    continue;
                }
                let Some((gen, file_ids)) = decode_txn_intent(value) else {
                    self.inner.env.health.record_cleanup_failure();
                    continue;
                };
                let mut undone = true;
                for id in file_ids {
                    let path = self.file_path_at(gen, id);
                    if self.inner.env.dfs.exists(&path) && self.inner.env.dfs.delete(&path).is_err()
                    {
                        self.inner.env.health.record_cleanup_failure();
                        undone = false;
                    }
                }
                // The intent is deleted last, so a partial undo keeps it
                // and the next open retries the whole thing.
                if undone && attached.delete_cell(&intent_row.to_key(), qual).is_err() {
                    self.inner.env.health.record_cleanup_failure();
                }
            }
        }
    }

    /// Sweeps attached-tier residue of an interrupted incremental fold: a
    /// crash between a fold's generation swing and its attached-row
    /// retirement leaves presence rows and data cells keyed to folded —
    /// now nonexistent — master files. They are invisible to every scan
    /// (no live file covers their record-ID ranges), but they would make
    /// the presence index lie about files that no longer exist, so openers
    /// retire them here. Skipped while any session still reads an older
    /// generation — its files are absent from the current listing but are
    /// not residue — and under the conservative pre-index fallback (no
    /// index rows to reconcile).
    fn sweep_fold_residue(&self) {
        {
            let st = self.inner.mvcc.lock();
            if st.pin_count() > 0 || st.retired_count() > 0 {
                return;
            }
        }
        let Ok(gen) = self.current_gen() else {
            return;
        };
        let Ok(attached) = self.attached() else {
            return;
        };
        let Ok(Some(index)) = self.load_presence(&attached) else {
            return;
        };
        let live: BTreeSet<u32> = self.master_file_ids_at(gen).into_iter().collect();
        let orphans: Vec<u32> = index
            .files
            .keys()
            .copied()
            .filter(|id| !live.contains(id))
            .collect();
        if orphans.is_empty() {
            return;
        }
        if self.collect_folded_attached(&orphans).is_err() {
            self.inner.env.health.record_cleanup_failure();
        }
    }

    /// Drops the table: master files and the attached table (paper §III-C,
    /// DROP).
    pub fn drop_table(self) -> Result<()> {
        let _guard = self.inner.ops.write();
        self.inner
            .footers
            .invalidate_prefix(&format!("{}/", Self::master_dir(&self.inner.name)));
        self.inner
            .env
            .dfs
            .delete_prefix(&format!("{}/", Self::master_dir(&self.inner.name)))?;
        self.inner
            .env
            .kv
            .drop_table(&Self::attached_name(&self.inner.name))?;
        self.inner.env.mvcc.remove(&self.inner.name);
        Ok(())
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.inner.schema
    }

    /// The underlying environment (exposed for experiments measuring
    /// per-tier I/O).
    pub fn env(&self) -> &DualTableEnv {
        &self.inner.env
    }

    /// The current attached-table handle. Resolved per call: TRUNCATE
    /// (after OVERWRITE/COMPACT) replaces the store inside the cluster, so
    /// caching a handle would go stale.
    fn attached(&self) -> Result<dt_kvstore::Store> {
        self.inner
            .env
            .kv
            .table(&Self::attached_name(&self.inner.name))
    }

    /// This table's delta-tier policy (DESIGN.md §17).
    fn delta_policy(&self) -> DeltaPolicy {
        DeltaPolicy::new(self.inner.config.delta_bytes)
    }

    /// The cost model for plan selection, reflecting whether EDIT cells
    /// ride the delta tier (cheaper attached writes shift the crossover).
    fn cost_model(&self) -> CostModel {
        if self.delta_policy().enabled() {
            CostModel::with_delta_tier(self.inner.config.rates, self.inner.config.write_threads)
        } else {
            CostModel::with_parallelism(self.inner.config.rates, self.inner.config.write_threads)
        }
    }

    /// Live heap bytes held by this table's delta tier (0 when disabled
    /// or fully spilled). Exposed for tests and the crash matrix.
    pub fn delta_bytes_used(&self) -> Result<usize> {
        Ok(self.attached()?.shadow_bytes())
    }

    /// Forces the delta tier to spill into the attached LSM regardless of
    /// the budget; returns the number of entries migrated. A visibility
    /// no-op (timestamps are preserved).
    pub fn spill_delta(&self) -> Result<u64> {
        self.attached()?.spill_shadow()
    }

    /// The committed master generation. Master files live under
    /// per-generation directories (`gen-<g>/part-<id>`); OVERWRITE and
    /// COMPACT build the next generation aside and flip this number with
    /// one durable metadata put, so a crash mid-rewrite leaves the old
    /// file set fully live.
    fn current_gen(&self) -> Result<u64> {
        self.inner.env.meta.generation(&self.inner.name)
    }

    fn gen_dir(&self, gen: u64) -> String {
        format!("{}/gen-{gen:010}", Self::master_dir(&self.inner.name))
    }

    fn file_path_at(&self, gen: u64, file_id: u32) -> String {
        format!("{}/part-{file_id:010}", self.gen_dir(gen))
    }

    /// Master file IDs in ascending order (== record-ID scan order).
    pub fn master_file_ids(&self) -> Result<Vec<u32>> {
        Ok(self.master_file_ids_at(self.current_gen()?))
    }

    fn master_file_ids_at(&self, gen: u64) -> Vec<u32> {
        let prefix = format!("{}/part-", self.gen_dir(gen));
        self.inner
            .env
            .dfs
            .list(&prefix)
            .iter()
            .filter_map(|path| path.strip_prefix(&prefix)?.parse::<u32>().ok())
            .collect()
    }

    /// The first generation number safe to build into: past the committed
    /// one *and* past any directory a crashed, uncommitted rewrite left
    /// behind (whose stale files must never join a new generation).
    fn next_generation(&self) -> Result<u64> {
        let committed = self.current_gen()?;
        let prefix = format!("{}/gen-", Self::master_dir(&self.inner.name));
        let max_present = self
            .inner
            .env
            .dfs
            .list(&prefix)
            .iter()
            .filter_map(|path| {
                path.strip_prefix(&prefix)?
                    .split('/')
                    .next()?
                    .parse::<u64>()
                    .ok()
            })
            .max()
            .unwrap_or(0);
        // Also stay clear of any generation number reserved for an
        // off-to-the-side build this process knows about — a zero-row
        // build leaves no directory for the listing to see.
        Ok(self
            .inner
            .mvcc
            .lock()
            .observe_build_gen(committed.max(max_present) + 1))
    }

    /// Best-effort removal of every master file outside `current` —
    /// retired generations and torn uncommitted ones. Failed deletes are
    /// recorded as cleanup debt in the health counters (never swallowed
    /// silently) and retried on the next swap or table open; stale
    /// generations are unreachable in the meantime. Returns
    /// `(generations fully swept, deletes failed)`.
    fn cleanup_stale_generations(&self, current: u64) -> (u64, u64) {
        // Generations pinned by live snapshots, parked for deferred GC or
        // being built off to the side are not stale, merely not current.
        let protected = self.inner.mvcc.lock().protected_gens();
        let prefix = format!("{}/gen-", Self::master_dir(&self.inner.name));
        let mut failed = 0u64;
        // Per-generation sweep outcome: a generation counts as swept only
        // if every one of its files was deleted.
        let mut touched: BTreeMap<u64, bool> = BTreeMap::new();
        for path in self.inner.env.dfs.list(&prefix) {
            let Some(gen) = path
                .strip_prefix(&prefix)
                .and_then(|rest| rest.split('/').next())
                .and_then(|g| g.parse::<u64>().ok())
                .filter(|&g| g != current && !protected.contains(&g))
            else {
                continue;
            };
            if self.inner.env.dfs.delete(&path).is_err() {
                self.inner.env.health.record_cleanup_failure();
                failed += 1;
                touched.insert(gen, false);
            } else {
                // The path can never be opened again; retire its footer.
                self.inner.footers.invalidate_prefix(&path);
                touched.entry(gen).or_insert(true);
            }
        }
        let swept = touched.values().filter(|&&ok| ok).count() as u64;
        (swept, failed)
    }

    // ------------------------------------------------------------------
    // Ingest (LOAD / INSERT INTO / INSERT OVERWRITE)
    // ------------------------------------------------------------------

    /// Appends rows, creating one or more new master files (the paper's
    /// LOAD / INSERT INTO: "data are loaded and inserted into the Master
    /// Table").
    pub fn insert_rows<I>(&self, rows: I) -> Result<u64>
    where
        I: IntoIterator<Item = Row>,
    {
        let _guard = self.inner.ops.read();
        let rows: Vec<Row> = rows.into_iter().collect();
        if rows.is_empty() {
            return Ok(0);
        }
        let gen = self.current_gen()?;
        // Stage the file IDs *before* any file becomes listable: files the
        // MVCC state has never heard of default to always-visible, so a
        // snapshot pinned between the file write and the commit below
        // would first see the new rows, then lose them once the commit
        // lands after its pin — a non-repeatable read. Mirrors the
        // transactional insert path ([`Self::commit_transaction`] phase
        // 1), minus the durable undo intent: autocommit inserts have no
        // in-flight state to recover.
        let rows_per_file = self.inner.config.rows_per_file.max(1);
        let files = u32::try_from(rows.len().div_ceil(rows_per_file))
            .map_err(|_| Error::internal("insert needs too many files"))?;
        let first = self
            .inner
            .env
            .meta
            .reserve_file_ids(&self.inner.name, files)?;
        let ids: Vec<u32> = (first..first + files).collect();
        {
            let mut st = self.inner.mvcc.lock();
            for &id in &ids {
                st.stage_file(gen, id);
            }
        }
        let mut sink = MasterWriteSink::reserved(self, gen, first, files);
        let written = rows
            .into_iter()
            .try_for_each(|row| sink.push(row))
            .and_then(|()| sink.finish());
        let written = match written {
            Ok(w) => w,
            Err(e) => {
                // Delete any partial files before unstaging — a forgotten
                // *existing* file would be visible.
                let mut all_deleted = true;
                for &id in &ids {
                    let path = self.file_path_at(gen, id);
                    if self.inner.env.dfs.exists(&path) && self.inner.env.dfs.delete(&path).is_err()
                    {
                        self.inner.env.health.record_cleanup_failure();
                        all_deleted = false;
                    }
                }
                if all_deleted {
                    self.inner.mvcc.lock().unstage_files(gen, ids);
                }
                return Err(e);
            }
        };
        // Autocommit commit point: the files become visible at a fresh
        // timestamp, ticked under the state mutex so no pin can land
        // between the timestamp and the visibility flip.
        let mut st = self.inner.mvcc.lock();
        let ts = self.inner.env.kv.clock().tick();
        st.commit_files(gen, ids, ts);
        // Bump the edit clock too: a two-phase rewrite pinned before this
        // insert must conflict at finish, or its swing would silently drop
        // these files (they only exist in the generation it replaces).
        st.note_edit_commit([], ts);
        Ok(written)
    }

    fn write_master_files<I>(&self, gen: u64, rows: I) -> Result<u64>
    where
        I: IntoIterator<Item = Row>,
    {
        Ok(self.write_master_files_tracked(gen, rows)?.0)
    }

    fn write_master_files_tracked<I>(&self, gen: u64, rows: I) -> Result<(u64, Vec<u32>)>
    where
        I: IntoIterator<Item = Row>,
    {
        let mut sink = MasterWriteSink::new(self, gen);
        for row in rows {
            sink.push(row)?;
        }
        sink.finish_with_ids()
    }

    /// Replaces the whole table content (Hive's `INSERT OVERWRITE TABLE`):
    /// new master files, cleared attached table. Atomic under crashes via
    /// the generation commit (see [`DualTableStore::swap_in`]).
    pub fn insert_overwrite<I>(&self, rows: I) -> Result<u64>
    where
        I: IntoIterator<Item = Row>,
    {
        let _guard = self.inner.ops.write();
        self.swap_in(rows)
    }

    fn truncate_attached(&self) -> Result<()> {
        self.inner
            .env
            .kv
            .truncate_table(&Self::attached_name(&self.inner.name))
    }

    // ------------------------------------------------------------------
    // UNION READ
    // ------------------------------------------------------------------

    /// Streams every visible row through `f` (which may stop the scan by
    /// returning `Break`). This is the UNION READ operation.
    pub fn for_each(
        &self,
        opts: &UnionReadOptions,
        mut f: impl FnMut(RecordId, Row) -> Result<ControlFlow<()>>,
    ) -> Result<()> {
        let _guard = self.inner.ops.read();
        self.for_each_locked(opts, &mut f)
    }

    /// UNION READ at a pinned epoch (`opts.snapshot_ts` must be the pin's
    /// timestamp). Takes the ops lock in read mode like any scan — pinned
    /// readers don't block EDIT writers, only rewrites' commit step.
    pub(crate) fn pinned_for_each(
        &self,
        gen: u64,
        opts: &UnionReadOptions,
        f: &mut dyn FnMut(RecordId, Row) -> Result<ControlFlow<()>>,
    ) -> Result<()> {
        let _guard = self.inner.ops.read();
        self.for_each_at(gen, opts, f)
    }

    fn for_each_locked(
        &self,
        opts: &UnionReadOptions,
        f: &mut dyn FnMut(RecordId, Row) -> Result<ControlFlow<()>>,
    ) -> Result<()> {
        let gen = self.current_gen()?;
        self.for_each_at(gen, opts, f)
    }

    /// The master file IDs of `gen` visible to a snapshot at `at_ts`:
    /// everything in the directory except files some in-flight (or
    /// later-committed) transactional insert staged after the snapshot.
    fn visible_files(&self, gen: u64, at_ts: u64) -> Vec<u32> {
        let files = self.master_file_ids_at(gen);
        let st = self.inner.mvcc.lock();
        files
            .into_iter()
            .filter(|&id| st.file_visible(gen, id, at_ts))
            .collect()
    }

    /// [`DualTableStore::for_each_locked`] at an explicit `(generation,
    /// opts.snapshot_ts)` epoch — the pinned-snapshot scan path.
    fn for_each_at(
        &self,
        gen: u64,
        opts: &UnionReadOptions,
        f: &mut dyn FnMut(RecordId, Row) -> Result<ControlFlow<()>>,
    ) -> Result<()> {
        let projection: Vec<usize> = match &opts.projection {
            Some(p) => p.clone(),
            None => (0..self.inner.schema.len()).collect(),
        };
        let attached_store = self.attached()?;
        let presence = self.load_presence(&attached_store)?;
        for file_id in self.visible_files(gen, opts.snapshot_ts) {
            let reader = self.open_master(gen, file_id)?;
            let attached = if file_is_clean(presence.as_ref(), file_id) {
                self.inner.env.health.record_attached_scan_skipped();
                None
            } else {
                Some(attached_store.scan_at(
                    Some(&RecordId::file_start(file_id).to_key()[..]),
                    Some(&RecordId::file_start(file_id.wrapping_add(1)).to_key()[..]),
                    opts.snapshot_ts,
                )?)
            };
            let predicates =
                file_predicates(presence.as_ref(), opts.predicates.as_deref(), file_id);
            if let ControlFlow::Break(()) = merge_file(
                file_id,
                &reader,
                &projection,
                predicates.as_deref(),
                attached,
                f,
            )? {
                return Ok(());
            }
        }
        Ok(())
    }

    fn open_master(&self, gen: u64, file_id: u32) -> Result<Arc<OrcReader>> {
        let reader = self
            .inner
            .footers
            .open(&self.inner.env.dfs, &self.file_path_at(gen, file_id))?;
        // The file ID in user metadata must agree with the file name.
        match reader.metadata(FILE_ID_METADATA_KEY) {
            Some(bytes) if bytes == file_id.to_be_bytes() => Ok(reader),
            _ => Err(Error::corrupt(format!(
                "master file {} has inconsistent file-ID metadata",
                self.file_path_at(gen, file_id)
            ))),
        }
    }

    /// Decodes the presence index from the attached table (see
    /// [`crate::presence`]). Returns:
    ///
    /// * `Some(index)` — authoritative: every file absent from it is clean;
    /// * `None` — the attached table holds data cells but no index rows
    ///   (data written before the index existed); fall back to the
    ///   conservative pre-index behaviour: scan every file, no push-down.
    ///
    /// Always read at `u64::MAX`: counts are monotone within a generation,
    /// so the latest index conservatively over-approximates every earlier
    /// snapshot (see the module docs for the soundness argument).
    fn load_presence(&self, attached: &dt_kvstore::Store) -> Result<Option<PresenceIndex>> {
        if attached.is_empty() {
            return Ok(Some(PresenceIndex::default()));
        }
        let mut index = PresenceIndex::default();
        let scan = attached.scan_at(
            None,
            Some(&RecordId::file_start(PRESENCE_FILE_ID.wrapping_add(1)).to_key()[..]),
            u64::MAX,
        )?;
        for row in scan {
            let row = row?;
            let record = RecordId::from_key(&row.row)
                .ok_or_else(|| Error::corrupt("presence row key is not a record ID"))?;
            if record.row == 0 {
                // `{0, 0}` is the transactional-insert intent cell, not a
                // presence row (real file IDs start at 1).
                continue;
            }
            let mut presence = FilePresence::default();
            for (qual, _ts, value) in &row.cells {
                match presence_column(qual)? {
                    None => presence.delete_markers = decode_count(value)?,
                    Some(col) => {
                        presence.update_counts.insert(col, decode_count(value)?);
                    }
                }
            }
            if !presence.is_clean() {
                index.files.insert(record.row, presence);
            }
        }
        if index.files.is_empty() {
            // Non-empty attached table without index rows: pre-index data.
            return Ok(None);
        }
        Ok(Some(index))
    }

    /// The current presence index, if one is decodable (`None` under the
    /// conservative fallback). Exposed for tests and experiments.
    pub fn presence_index(&self) -> Result<Option<PresenceIndex>> {
        let _guard = self.inner.ops.read();
        self.load_presence(&self.attached()?)
    }

    /// Counters of this table's footer cache.
    pub fn footer_cache_stats(&self) -> FooterCacheStats {
        self.inner.footers.stats()
    }

    /// Materializes the whole table: `(record id, row)` pairs in record-ID
    /// order.
    pub fn scan_all(&self) -> Result<Vec<(RecordId, Row)>> {
        self.scan(&UnionReadOptions::all())
    }

    /// Parallel UNION READ: one map task per master file, each merging its
    /// file with the matching attached range — "a simple Map Reduce
    /// algorithm using a divide-and-conquer strategy" (paper §III-C).
    /// Output order equals [`DualTableStore::scan`].
    pub fn scan_parallel(
        &self,
        opts: &UnionReadOptions,
        job: &dt_engine::JobConfig,
    ) -> Result<Vec<(RecordId, Row)>> {
        let _guard = self.inner.ops.read();
        // Shared read-only plan state: projection, predicates and the
        // presence index are computed once and shared across all map tasks
        // behind `Arc`s — no per-task deep clones.
        let projection: Arc<[usize]> = match &opts.projection {
            Some(p) => Arc::from(p.as_slice()),
            None => (0..self.inner.schema.len()).collect(),
        };
        let predicates: Option<Arc<[ColumnPredicate]>> =
            opts.predicates.as_ref().map(|p| Arc::from(p.as_slice()));
        let attached_store = self.attached()?;
        let presence = Arc::new(self.load_presence(&attached_store)?);
        let snapshot_ts = opts.snapshot_ts;
        let gen = self.current_gen()?;
        let per_file = dt_engine::parallel_map_fallible(
            job,
            self.visible_files(gen, snapshot_ts),
            |file_id| {
                let projection = Arc::clone(&projection);
                let predicates = predicates.clone();
                let presence = Arc::clone(&presence);
                let reader = self.open_master(gen, file_id)?;
                let attached = if file_is_clean(presence.as_ref().as_ref(), file_id) {
                    self.inner.env.health.record_attached_scan_skipped();
                    None
                } else {
                    Some(attached_store.scan_at(
                        Some(&RecordId::file_start(file_id).to_key()[..]),
                        Some(&RecordId::file_start(file_id.wrapping_add(1)).to_key()[..]),
                        snapshot_ts,
                    )?)
                };
                let predicates =
                    file_predicates(presence.as_ref().as_ref(), predicates.as_deref(), file_id);
                let mut out = Vec::new();
                let flow = merge_file(
                    file_id,
                    &reader,
                    &projection,
                    predicates.as_deref(),
                    attached,
                    &mut |id, row| {
                        out.push((id, row));
                        Ok(ControlFlow::Continue(()))
                    },
                )?;
                debug_assert!(flow.is_continue(), "collector never breaks");
                Ok(out)
            },
        )?;
        Ok(per_file.into_iter().flatten().collect())
    }

    /// Materializes a scan with options.
    pub fn scan(&self, opts: &UnionReadOptions) -> Result<Vec<(RecordId, Row)>> {
        let mut out = Vec::new();
        self.for_each(opts, |id, row| {
            out.push((id, row));
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(out)
    }

    /// Counts visible rows.
    pub fn count(&self) -> Result<u64> {
        let mut n = 0u64;
        // Project a single column; the merge still sees delete markers.
        let opts = UnionReadOptions::all().with_projection(vec![0]);
        self.for_each(&opts, |_, _| {
            n += 1;
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(n)
    }

    /// The attached-tier multi-version history of one cell, newest first:
    /// `(timestamp, value)` pairs (paper §V-C: "DualTable can make use of
    /// HBase's multiple-version feature to track data change history").
    pub fn cell_history(
        &self,
        record: RecordId,
        column: usize,
        max: usize,
    ) -> Result<Vec<(u64, Value)>> {
        let qual = crate::attached::update_qualifier(column);
        let versions = self
            .attached()?
            .get_versions(&record.to_key(), &qual, max)?;
        versions
            .into_iter()
            .filter_map(|(ts, bytes)| bytes.map(|b| (ts, b)))
            .map(|(ts, b)| Ok((ts, dt_common::codec::decode_value(&b)?)))
            .collect()
    }

    // ------------------------------------------------------------------
    // UPDATE / DELETE / COMPACT
    // ------------------------------------------------------------------

    /// Statistics used by the cost model and experiments. Row counts come
    /// from the footer cache — repeated calls (every DML statement takes
    /// one) parse each master footer once per process, not once per call.
    pub fn stats(&self) -> Result<TableStats> {
        let mut master_bytes = 0u64;
        let mut master_rows = 0u64;
        let mut master_files = 0u64;
        let gen = self.current_gen()?;
        for file_id in self.master_file_ids_at(gen) {
            let path = self.file_path_at(gen, file_id);
            master_bytes += self.inner.env.dfs.len(&path)?;
            master_rows += self.open_master(gen, file_id)?.num_rows();
            master_files += 1;
        }
        Ok(TableStats {
            master_bytes,
            master_rows,
            master_files,
            attached_bytes: self.attached()?.approximate_bytes(),
            attached_entries: self.attached()?.entry_count(),
        })
    }

    fn resolve_ratio(
        &self,
        hint: &RatioHint,
        statement_key: Option<&str>,
        predicate: &dyn Fn(&Row) -> bool,
    ) -> Result<f64> {
        match hint {
            RatioHint::Explicit(r) => Ok(r.clamp(0.0, 1.0)),
            RatioHint::Historical => {
                if let Some(key) = statement_key {
                    if let Some(r) = self.inner.env.meta.historical_ratio(key)? {
                        return Ok(r);
                    }
                }
                self.sample_ratio(predicate)
            }
            RatioHint::Sample => self.sample_ratio(predicate),
        }
    }

    fn sample_ratio(&self, predicate: &dyn Fn(&Row) -> bool) -> Result<f64> {
        let limit = self.inner.config.sample_rows.max(1);
        let mut seen = 0u64;
        let mut matched = 0u64;
        self.for_each(&UnionReadOptions::all(), |_, row| {
            seen += 1;
            if predicate(&row) {
                matched += 1;
            }
            Ok(if seen as usize >= limit {
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            })
        })?;
        if seen == 0 {
            return Ok(0.0);
        }
        Ok(matched as f64 / seen as f64)
    }

    /// Previews the cost-model decision for an UPDATE (`is_update`) or
    /// DELETE with the given predicate, sampling the modification ratio —
    /// without executing anything. Powers `EXPLAIN UPDATE/DELETE`.
    pub fn plan_preview(
        &self,
        predicate: &dyn Fn(&Row) -> bool,
        is_update: bool,
    ) -> Result<PlanPreview> {
        let ratio = self.sample_ratio(predicate)?;
        let stats = self.stats()?;
        let model = self.cost_model();
        let k = self.inner.config.k_successive_reads;
        let (plan, cost_diff) = if is_update {
            (
                model.choose_update(stats.master_bytes, ratio, k),
                model.update_cost_diff(stats.master_bytes, ratio, k),
            )
        } else {
            let avg_row = stats
                .master_bytes
                .checked_div(stats.master_rows)
                .map_or(1, |v| v.max(1));
            let marker_ratio = self.inner.config.delete_marker_bytes as f64 / avg_row as f64;
            (
                model.choose_delete(stats.master_bytes, ratio, k, marker_ratio),
                model.delete_cost_diff(stats.master_bytes, ratio, k, marker_ratio),
            )
        };
        let plan = match self.inner.config.plan_mode {
            PlanMode::CostBased => plan,
            PlanMode::AlwaysEdit => PlanChoice::Edit,
            PlanMode::AlwaysOverwrite => PlanChoice::Overwrite,
        };
        Ok(PlanPreview {
            plan,
            ratio,
            cost_diff,
            master_bytes: stats.master_bytes,
        })
    }

    /// Executes `UPDATE <table> SET ... WHERE <predicate>`.
    ///
    /// * `predicate` selects rows (evaluated against full rows);
    /// * `assignments` are `(column ordinal, value function)` pairs;
    /// * `ratio` is the α hint for the cost model.
    ///
    /// The plan is chosen per [`PlanMode`]; see [`DmlReport`].
    pub fn update(
        &self,
        predicate: impl Fn(&Row) -> bool + Sync,
        assignments: &[Assignment<'_>],
        ratio: RatioHint,
    ) -> Result<DmlReport> {
        self.update_keyed(predicate, assignments, ratio, None)
    }

    /// Like [`DualTableStore::update`] with a statement key for the
    /// historical-ratio log.
    pub fn update_keyed(
        &self,
        predicate: impl Fn(&Row) -> bool + Sync,
        assignments: &[Assignment<'_>],
        ratio: RatioHint,
        statement_key: Option<&str>,
    ) -> Result<DmlReport> {
        for (col, _) in assignments {
            if *col >= self.inner.schema.len() {
                return Err(Error::schema(format!("assignment to unknown column {col}")));
            }
        }
        let alpha = self.resolve_ratio(&ratio, statement_key, &predicate)?;
        let stats = self.stats()?;
        let model = self.cost_model();
        let k = self.inner.config.k_successive_reads;
        let (plan, cost_diff) = match self.inner.config.plan_mode {
            PlanMode::AlwaysEdit => (PlanChoice::Edit, None),
            PlanMode::AlwaysOverwrite => (PlanChoice::Overwrite, None),
            PlanMode::CostBased => {
                let diff = model.update_cost_diff(stats.master_bytes, alpha, k);
                (
                    model.choose_update(stats.master_bytes, alpha, k),
                    Some(diff),
                )
            }
        };

        // `executed` can differ from the chosen `plan`: a pre-commit
        // OVERWRITE failure falls back to EDIT.
        let (report, executed) = match plan {
            PlanChoice::Edit => (self.update_edit(&predicate, assignments)?, PlanChoice::Edit),
            PlanChoice::Overwrite => self.update_overwrite(&predicate, assignments)?,
        };
        if let (Some(key), true) = (statement_key, report.1 > 0) {
            self.inner
                .env
                .meta
                .record_ratio(key, report.0 as f64 / report.1 as f64)?;
        }
        Ok(DmlReport {
            plan: executed,
            rows_matched: report.0,
            rows_scanned: report.1,
            ratio_used: alpha,
            cost_diff,
        })
    }

    /// EDIT plan for UPDATE: the UPDATE UDTF of §V-A — store the updated
    /// columns' new values in the Attached Table.
    fn update_edit(
        &self,
        predicate: &dyn Fn(&Row) -> bool,
        assignments: &[Assignment<'_>],
    ) -> Result<(u64, u64)> {
        let _guard = self.inner.ops.read();
        self.update_edit_locked(predicate, assignments)
    }

    /// [`Self::update_edit`] with the ops lock already held — the form the
    /// OVERWRITE→EDIT fallback needs (it runs under the write lock, and
    /// the lock is not reentrant).
    fn update_edit_locked(
        &self,
        predicate: &dyn Fn(&Row) -> bool,
        assignments: &[Assignment<'_>],
    ) -> Result<(u64, u64)> {
        let mut matched = 0u64;
        let mut scanned = 0u64;
        let mut batch: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)> = Vec::new();
        let mut delta = PresenceDelta::new();
        let mut flush_err: Option<Error> = None;
        let mut touched: Vec<u64> = Vec::new();
        let attached = self.attached()?;
        self.for_each_locked(&UnionReadOptions::all(), &mut |record, row| {
            scanned += 1;
            if predicate(&row) {
                matched += 1;
                let values: Vec<(usize, Value)> =
                    assignments.iter().map(|(col, f)| (*col, f(&row))).collect();
                for (col, value) in &values {
                    if !value.conforms_to(self.inner.schema.field(*col).data_type) {
                        return Err(Error::schema(format!(
                            "UPDATE value {value:?} does not fit column '{}'",
                            self.inner.schema.field(*col).name
                        )));
                    }
                    delta.add_updates(record.file_id, *col, 1);
                }
                touched.push(record.as_u64());
                batch.extend(update_cells(record, &values));
                if batch.len() >= 4096 {
                    if let Err(e) =
                        self.flush_edit_batch(&attached, &mut batch, &mut delta, &mut touched)
                    {
                        flush_err = Some(e);
                        return Ok(ControlFlow::Break(()));
                    }
                }
            }
            Ok(ControlFlow::Continue(()))
        })?;
        if let Some(e) = flush_err {
            return Err(e);
        }
        self.flush_edit_batch(&attached, &mut batch, &mut delta, &mut touched)?;
        Ok((matched, scanned))
    }

    /// Commits one EDIT-plan batch: the data cells plus the presence-index
    /// increments they imply, in a single `put_batch` — one fsynced WAL
    /// record, so the index can never drift from the data (see
    /// [`crate::presence`]). The read-modify-write of the counts is
    /// serialized against concurrent EDIT statements by `presence_lock`.
    ///
    /// The records the batch writes (`touched`, drained on success) are
    /// registered in the conflict window under the [`TableMvcc`] state
    /// mutex, held across the durable write — the same "conflict check +
    /// batch + bookkeeping as one atomic step" discipline as
    /// [`Self::commit_transaction`]. Deferring the registration to the end
    /// of the statement would open a lost-update race: a transaction
    /// running its first-committer-wins check between our `put_batch` and
    /// the deferred registration would see no record of the already-
    /// durable edits, pass the check, and overwrite them. Returns the
    /// batch's commit timestamp (`0` for an empty batch).
    fn flush_edit_batch(
        &self,
        attached: &dt_kvstore::Store,
        batch: &mut Vec<(Vec<u8>, Vec<u8>, Vec<u8>)>,
        delta: &mut PresenceDelta,
        touched: &mut Vec<u64>,
    ) -> Result<u64> {
        if batch.is_empty() && delta.is_empty() {
            return Ok(0);
        }
        let mut cells = std::mem::take(batch);
        // Lock order (module doc in `mvcc`): state mutex, then
        // presence lock — matching commit_transaction.
        let mut st = self.inner.mvcc.lock();
        let _presence_guard = self.inner.presence_lock.lock();
        for ((file_id, column), n) in delta.drain() {
            let key = presence_key(file_id);
            let qual = presence_qualifier(column);
            let current = match attached.get(&key, &qual)? {
                Some(bytes) => decode_count(&bytes)?,
                None => 0,
            };
            cells.push((key.to_vec(), qual.to_vec(), encode_count(current + n)));
        }
        // With a delta budget the whole batch — data cells AND presence
        // counts — rides the WAL-only shadow tier: same fsync'd record,
        // no memtable/SSTable work on the hot path. Presence reads above
        // see shadow entries (the store merges the tier into every read),
        // so the read-modify-write stays correct across the routes.
        let policy = self.delta_policy();
        let ts = if policy.enabled() {
            attached.put_shadow_batch(cells)?
        } else {
            attached.put_batch(cells)?
        };
        // Autocommit EDITs enter the conflict window too: a transaction
        // pinned before this batch must not silently overwrite rows it
        // changed.
        st.note_edit_commit(touched.drain(..), ts);
        drop(_presence_guard);
        drop(st);
        // Budget enforcement happens after the locks drop: the batch is
        // already durable, so a failed spill costs nothing — the next
        // commit retries it.
        let _ = policy.maybe_spill(attached);
        Ok(ts)
    }

    /// OVERWRITE plan for UPDATE: Hive's INSERT OVERWRITE — rewrite the
    /// master with updated values, then clear the attached table.
    ///
    /// If the rewrite fails before its commit point the old generation is
    /// still fully live, so the statement falls back to the EDIT plan —
    /// the update must still succeed (DESIGN.md §8). Returns the executed
    /// plan alongside the counts.
    fn update_overwrite(
        &self,
        predicate: &(dyn Fn(&Row) -> bool + Sync),
        assignments: &[Assignment<'_>],
    ) -> Result<((u64, u64), PlanChoice)> {
        let _guard = self.inner.ops.write();
        let transform = |_: RecordId, mut row: Row| {
            if !predicate(&row) {
                return Ok((Some(row), false));
            }
            for (col, f) in assignments {
                let value = f(&row);
                if !value.conforms_to(self.inner.schema.field(*col).data_type) {
                    return Err(Error::schema(format!(
                        "UPDATE value {value:?} does not fit column '{}'",
                        self.inner.schema.field(*col).name
                    )));
                }
                row[*col] = value;
            }
            Ok((Some(row), true))
        };
        let next = self.next_generation()?;
        let attempt = self
            .parallel_rewrite(next, &transform)
            .and_then(|counts| self.commit_and_cleanup(next).map(|_| counts));
        match attempt {
            Ok((_, matched, scanned)) => Ok(((matched, scanned), PlanChoice::Overwrite)),
            // A bad assignment fails the statement, not the plan: EDIT
            // would reject the same value, so falling back would only bury
            // the user's type error under a second scan. Sweep whatever the
            // aborted workers wrote before surfacing it.
            Err(e @ Error::Schema(_)) => {
                if let Ok(gen) = self.current_gen() {
                    self.cleanup_stale_generations(gen);
                }
                Err(e)
            }
            Err(_) => {
                self.plan_fallback_cleanup();
                let counts = self.update_edit_locked(predicate, assignments)?;
                Ok((counts, PlanChoice::Edit))
            }
        }
    }

    /// Bookkeeping between a failed (pre-commit) OVERWRITE and its EDIT
    /// fallback: count the fallback and sweep whatever the aborted rewrite
    /// managed to write.
    fn plan_fallback_cleanup(&self) {
        self.inner.env.health.record_plan_fallback();
        if let Ok(gen) = self.current_gen() {
            self.cleanup_stale_generations(gen);
        }
    }

    /// Executes `DELETE FROM <table> WHERE <predicate>`.
    pub fn delete(
        &self,
        predicate: impl Fn(&Row) -> bool + Sync,
        ratio: RatioHint,
    ) -> Result<DmlReport> {
        self.delete_keyed(predicate, ratio, None)
    }

    /// Like [`DualTableStore::delete`] with a statement key for the
    /// historical-ratio log.
    pub fn delete_keyed(
        &self,
        predicate: impl Fn(&Row) -> bool + Sync,
        ratio: RatioHint,
        statement_key: Option<&str>,
    ) -> Result<DmlReport> {
        let beta = self.resolve_ratio(&ratio, statement_key, &predicate)?;
        let stats = self.stats()?;
        let model = self.cost_model();
        let k = self.inner.config.k_successive_reads;
        let avg_row = stats
            .master_bytes
            .checked_div(stats.master_rows)
            .map_or(1, |v| v.max(1));
        let marker_ratio = self.inner.config.delete_marker_bytes as f64 / avg_row as f64;
        let (plan, cost_diff) = match self.inner.config.plan_mode {
            PlanMode::AlwaysEdit => (PlanChoice::Edit, None),
            PlanMode::AlwaysOverwrite => (PlanChoice::Overwrite, None),
            PlanMode::CostBased => {
                let diff = model.delete_cost_diff(stats.master_bytes, beta, k, marker_ratio);
                (
                    model.choose_delete(stats.master_bytes, beta, k, marker_ratio),
                    Some(diff),
                )
            }
        };

        let (report, executed) = match plan {
            PlanChoice::Edit => (self.delete_edit(&predicate)?, PlanChoice::Edit),
            PlanChoice::Overwrite => self.delete_overwrite(&predicate)?,
        };
        if let (Some(key), true) = (statement_key, report.1 > 0) {
            self.inner
                .env
                .meta
                .record_ratio(key, report.0 as f64 / report.1 as f64)?;
        }
        Ok(DmlReport {
            plan: executed,
            rows_matched: report.0,
            rows_scanned: report.1,
            ratio_used: beta,
            cost_diff,
        })
    }

    /// EDIT plan for DELETE: the DELETE UDTF — put a delete marker per
    /// removed row.
    fn delete_edit(&self, predicate: &dyn Fn(&Row) -> bool) -> Result<(u64, u64)> {
        let _guard = self.inner.ops.read();
        self.delete_edit_locked(predicate)
    }

    /// [`Self::delete_edit`] with the ops lock already held (see
    /// [`Self::update_edit_locked`]).
    fn delete_edit_locked(&self, predicate: &dyn Fn(&Row) -> bool) -> Result<(u64, u64)> {
        let mut matched = 0u64;
        let mut scanned = 0u64;
        let mut batch: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)> = Vec::new();
        let mut delta = PresenceDelta::new();
        let mut flush_err: Option<Error> = None;
        let mut touched: Vec<u64> = Vec::new();
        let attached = self.attached()?;
        self.for_each_locked(&UnionReadOptions::all(), &mut |record, row| {
            scanned += 1;
            if predicate(&row) {
                matched += 1;
                touched.push(record.as_u64());
                batch.push(delete_cell(record));
                delta.add_delete(record.file_id);
                if batch.len() >= 4096 {
                    if let Err(e) =
                        self.flush_edit_batch(&attached, &mut batch, &mut delta, &mut touched)
                    {
                        flush_err = Some(e);
                        return Ok(ControlFlow::Break(()));
                    }
                }
            }
            Ok(ControlFlow::Continue(()))
        })?;
        if let Some(e) = flush_err {
            return Err(e);
        }
        self.flush_edit_batch(&attached, &mut batch, &mut delta, &mut touched)?;
        Ok((matched, scanned))
    }

    /// OVERWRITE plan for DELETE: rewrite the master keeping only
    /// surviving rows. Falls back to the EDIT plan when the rewrite fails
    /// pre-commit (see [`Self::update_overwrite`]).
    fn delete_overwrite(
        &self,
        predicate: &(dyn Fn(&Row) -> bool + Sync),
    ) -> Result<((u64, u64), PlanChoice)> {
        let _guard = self.inner.ops.write();
        let transform = |_: RecordId, row: Row| {
            if predicate(&row) {
                Ok((None, true))
            } else {
                Ok((Some(row), false))
            }
        };
        let next = self.next_generation()?;
        let attempt = self
            .parallel_rewrite(next, &transform)
            .and_then(|counts| self.commit_and_cleanup(next).map(|_| counts));
        match attempt {
            Ok((_, matched, scanned)) => Ok(((matched, scanned), PlanChoice::Overwrite)),
            Err(_) => {
                self.plan_fallback_cleanup();
                let counts = self.delete_edit_locked(predicate)?;
                Ok((counts, PlanChoice::Edit))
            }
        }
    }

    /// Replaces the master file set with `rows` and clears the attached
    /// table. Caller must hold the write lock.
    ///
    /// Crash-atomic: the new files are built in a fresh generation
    /// directory, invisible to readers, and become the table in one
    /// durable metadata put. A failure before the commit leaves the old
    /// generation fully live (the half-built one is skipped and later
    /// garbage-collected); a failure after the commit only delays
    /// cleanup — stale attached overlays reference retired file IDs and
    /// can never resolve against the new files.
    fn swap_in<I>(&self, rows: I) -> Result<u64>
    where
        I: IntoIterator<Item = Row>,
    {
        let next = self.next_generation()?;
        let pool = dt_engine::JobPool::new(self.inner.config.write_threads);
        let written = if pool.workers() <= 1 {
            self.write_master_files(next, rows)?
        } else {
            self.write_master_files_parallel(next, rows.into_iter().collect(), &pool)?
        };
        self.commit_and_cleanup(next)?;
        Ok(written)
    }

    /// Fans a materialized row set out across the worker pool: the rows
    /// are split at whole-file boundaries (multiples of `rows_per_file`),
    /// so the produced file layout is exactly the sequential writer's,
    /// and each worker streams its slice through its own
    /// [`MasterWriteSink`] drawing from a file-ID range reserved for its
    /// slice in slice order. No commit happens here.
    fn write_master_files_parallel(
        &self,
        gen: u64,
        mut rows: Vec<Row>,
        pool: &dt_engine::JobPool,
    ) -> Result<u64> {
        let rows_per_file = self.inner.config.rows_per_file.max(1);
        let total_files = rows.len().div_ceil(rows_per_file);
        let workers = pool.workers_for(total_files);
        if workers <= 1 {
            return self.write_master_files(gen, rows);
        }
        self.record_write_workers(workers);
        // Assign each worker a contiguous run of whole files.
        let base = total_files / workers;
        let extra = total_files % workers;
        let mut chunks: Vec<(Vec<Row>, u32, u32)> = Vec::with_capacity(workers);
        for w in 0..workers {
            let files = base + usize::from(w < extra);
            let take = (files * rows_per_file).min(rows.len());
            let chunk: Vec<Row> = rows.drain(..take).collect();
            let first_id = self
                .inner
                .env
                .meta
                .reserve_file_ids(&self.inner.name, files as u32)?;
            chunks.push((chunk, first_id, files as u32));
        }
        debug_assert!(rows.is_empty(), "all rows assigned to a chunk");
        let written = pool.run(chunks, |_, (chunk, first_id, count)| {
            let mut sink = MasterWriteSink::reserved(self, gen, first_id, count);
            for row in chunk {
                sink.push(row)?;
            }
            sink.finish()
        })?;
        Ok(written.into_iter().sum())
    }

    /// Records how many rewrite workers a statement fanned out to, in both
    /// the table health counters (SHOW HEALTH) and the DFS I/O stats.
    fn record_write_workers(&self, workers: usize) {
        self.inner.env.health.record_write_workers(workers as u64);
        self.inner
            .env
            .dfs
            .stats()
            .record_write_workers(workers as u64);
    }

    /// Rewrites the whole table into generation `next` with the worker
    /// pool (DESIGN.md §12): the master file list is partitioned into
    /// contiguous chunks, and each worker streams its chunk's UNION READ
    /// through `transform` into its own [`MasterWriteSink`].
    ///
    /// `transform` returns `(output row, matched)` — `None` drops the row
    /// (DELETE). Returns `(rows written, rows matched, rows scanned)`
    /// summed across workers.
    ///
    /// The commit deliberately does NOT happen here: every caller runs
    /// [`Self::commit_and_cleanup`] single-threaded afterwards (the
    /// single-threaded commit rule), so all parallel output lands in one
    /// still-invisible generation and every crash point sees exactly the
    /// old or the new file set.
    fn parallel_rewrite<F>(&self, next: u64, transform: &F) -> Result<(u64, u64, u64)>
    where
        F: Fn(RecordId, Row) -> Result<(Option<Row>, bool)> + Sync,
    {
        let gen = self.current_gen()?;
        self.parallel_rewrite_from(gen, u64::MAX, next, transform)
    }

    /// [`Self::parallel_rewrite`] reading from an explicit `(source_gen,
    /// at_ts)` epoch — the two-phase COMPACT/OVERWRITE build path, which
    /// materializes its pinned snapshot rather than "latest".
    fn parallel_rewrite_from<F>(
        &self,
        gen: u64,
        at_ts: u64,
        next: u64,
        transform: &F,
    ) -> Result<(u64, u64, u64)>
    where
        F: Fn(RecordId, Row) -> Result<(Option<Row>, bool)> + Sync,
    {
        let files = self.visible_files(gen, at_ts);
        if files.is_empty() {
            return Ok((0, 0, 0));
        }
        let pool = dt_engine::JobPool::new(self.inner.config.write_threads);
        let workers = pool.workers_for(files.len());
        let partitions = self.rewrite_partitions(gen, &files, workers)?;
        if workers > 1 {
            self.record_write_workers(workers);
        }
        let projection: Vec<usize> = (0..self.inner.schema.len()).collect();
        let attached_store = self.attached()?;
        let presence = self.load_presence(&attached_store)?;
        // Shared read-only plan state, same as `scan_parallel`.
        let projection = &projection;
        let attached_store = &attached_store;
        let presence = &presence;
        let totals = pool.run(partitions, |_, part| {
            let RewritePartition {
                files,
                first_id,
                id_count,
            } = part;
            let mut sink = MasterWriteSink::reserved(self, next, first_id, id_count);
            let mut matched = 0u64;
            let mut scanned = 0u64;
            for file_id in files {
                let reader = self.open_master(gen, file_id)?;
                let attached = if file_is_clean(presence.as_ref(), file_id) {
                    self.inner.env.health.record_attached_scan_skipped();
                    None
                } else {
                    Some(attached_store.scan_at(
                        Some(&RecordId::file_start(file_id).to_key()[..]),
                        Some(&RecordId::file_start(file_id.wrapping_add(1)).to_key()[..]),
                        at_ts,
                    )?)
                };
                let flow = merge_file(
                    file_id,
                    &reader,
                    projection,
                    None,
                    attached,
                    &mut |id, row| {
                        scanned += 1;
                        let (out, hit) = transform(id, row)?;
                        if hit {
                            matched += 1;
                        }
                        if let Some(row) = out {
                            sink.push(row)?;
                        }
                        Ok(ControlFlow::Continue(()))
                    },
                )?;
                debug_assert!(flow.is_continue(), "rewrite never breaks");
            }
            let written = sink.finish()?;
            Ok((written, matched, scanned))
        })?;
        Ok(totals
            .into_iter()
            .fold((0, 0, 0), |(w, m, s), (pw, pm, ps)| {
                (w + pw, m + pm, s + ps)
            }))
    }

    /// Splits `files` into `workers` contiguous partitions and reserves
    /// each partition's output file-ID range — in partition order, so IDs
    /// ascend across partitions and the rewritten generation scans in the
    /// same row order as the source. Range sizes come from footer row
    /// counts, which upper-bound each partition's UNION READ output (the
    /// attached tier only updates or deletes rows, never adds them); the
    /// unused tail of a range is a harmless ID gap.
    fn rewrite_partitions(
        &self,
        gen: u64,
        files: &[u32],
        workers: usize,
    ) -> Result<Vec<RewritePartition>> {
        let rows_per_file = self.inner.config.rows_per_file.max(1) as u64;
        let base = files.len() / workers;
        let extra = files.len() % workers;
        let mut partitions = Vec::with_capacity(workers);
        let mut start = 0usize;
        for w in 0..workers {
            let len = base + usize::from(w < extra);
            let chunk = &files[start..start + len];
            start += len;
            let mut rows_bound = 0u64;
            for &file_id in chunk {
                rows_bound += self.open_master(gen, file_id)?.num_rows();
            }
            let id_count = u32::try_from(rows_bound.div_ceil(rows_per_file).max(1))
                .map_err(|_| Error::internal("rewrite partition needs too many file IDs"))?;
            let first_id = self
                .inner
                .env
                .meta
                .reserve_file_ids(&self.inner.name, id_count)?;
            partitions.push(RewritePartition {
                files: chunk.to_vec(),
                first_id,
                id_count,
            });
        }
        Ok(partitions)
    }

    /// The commit point of a same-thread rewrite (caller holds the write
    /// lock and read "latest", so nothing can have raced it) plus its
    /// post-commit cleanup.
    fn commit_and_cleanup(&self, next: u64) -> Result<()> {
        self.commit_generation_mvcc(next, u64::MAX, None)
    }

    /// Swings the generation pointer to `next` against the MVCC state:
    ///
    /// 1. Under the state mutex, verify nothing committed after
    ///    `snapshot_ts` (the epoch the new generation was derived from —
    ///    any later EDIT would be silently lost by the swing). Losers get
    ///    a retryable [`Error::Conflict`] and the old generation stays
    ///    live.
    /// 2. Commit the pointer (one durable metadata put — THE commit
    ///    point), stamp the swing, and either hand the old generation to
    ///    the sweeper or — if another session still pins it — park it for
    ///    deferred GC. `own_pin_ts` is the swinging job's build pin, which
    ///    must not count as such a reader.
    /// 3. Outside the mutex, run best-effort cleanup: attached-tier
    ///    truncate when no old pin needs the overlays, stale-directory
    ///    sweep, and the deferred-GC sweeper. Failures are recorded as
    ///    cleanup debt, never silent.
    ///
    /// Cached footers are invalidated per retired path at deletion time —
    /// not by whole-table purge — so pinned readers keep their cache
    /// entries across other sessions' swings.
    fn commit_generation_mvcc(
        &self,
        next: u64,
        snapshot_ts: u64,
        own_pin_ts: Option<u64>,
    ) -> Result<()> {
        let truncate_ok;
        {
            let mut st = self.inner.mvcc.lock();
            if snapshot_ts != u64::MAX
                && (st.conflict_since(snapshot_ts, &[]).is_some() || st.edits_since(snapshot_ts))
            {
                self.inner.env.health.record_swing_conflict();
                return Err(Error::conflict(format!(
                    "generation swing abandoned: writes committed after snapshot {snapshot_ts}"
                )));
            }
            let old_gen = self.current_gen()?;
            // The commit point. Still under the state mutex: a concurrent
            // EDIT commit must observe either (old pointer, no swing
            // stamp) or (new pointer, swing stamp), never a torn mix.
            self.inner
                .env
                .meta
                .commit_generation(&self.inner.name, next)?;
            let swing_ts = self.inner.env.kv.clock().tick();
            // Past the commit point: nothing may fail the swing any more.
            // A floor we cannot compute degrades to 0 — attached rows of
            // retired files leak (space, not correctness) as cleanup debt.
            let floor = self.generation_floor(next).unwrap_or_else(|_| {
                self.inner.env.health.record_cleanup_failure();
                0
            });
            let deferred = st.note_swing(old_gen, next, swing_ts, floor, own_pin_ts);
            if deferred {
                self.inner.env.health.record_generation_deferred();
            }
            // Whole-table truncate (the fast path that also resets the
            // presence index) is only sound when no reader can still need
            // the old overlays.
            truncate_ok = !deferred && st.retired_count() == 0;
            if truncate_ok {
                st.clear_attached_floor();
            }
        }
        if truncate_ok {
            // Stale attached overlays reference retired file IDs and can
            // never resolve against the new files, so a failed truncate
            // degrades space, not correctness. The presence index lives
            // inside the attached table, so the truncate resets it for
            // free.
            if self.truncate_attached().is_err() {
                self.inner.env.health.record_cleanup_failure();
            }
        }
        self.cleanup_stale_generations(next);
        self.sweep_gc();
        Ok(())
    }

    /// The lowest file ID belonging to generation `next` — every ID below
    /// it is retired with the superseded generations, and its attached
    /// cells become collectible once the last old-generation pin drains.
    /// An empty new generation retires *all* existing IDs: reserve a fresh
    /// one as the floor.
    fn generation_floor(&self, next: u64) -> Result<u32> {
        match self.master_file_ids_at(next).into_iter().min() {
            Some(min) => Ok(min),
            None => self.inner.env.meta.reserve_file_ids(&self.inner.name, 1),
        }
    }

    /// Runs the deferred-GC sweeper: physically deletes dead (superseded,
    /// unpinned) generations past the `max_generations` budget and, once
    /// no old-generation pin remains, the retired attached-tier rows.
    /// Best-effort; failures become cleanup debt and the files remain
    /// protected stale directories for the next sweep.
    fn sweep_gc(&self) {
        let (gens, floor) = self
            .inner
            .mvcc
            .lock()
            .take_sweepable(self.inner.config.max_generations);
        let mut gcd = 0u64;
        for gen in gens {
            let dir = format!("{}/", self.gen_dir(gen));
            self.inner.footers.invalidate_prefix(&dir);
            let mut ok = true;
            for path in self.inner.env.dfs.list(&dir) {
                if self.inner.env.dfs.delete(&path).is_err() {
                    self.inner.env.health.record_cleanup_failure();
                    ok = false;
                }
            }
            if ok {
                gcd += 1;
            }
        }
        if gcd > 0 {
            self.inner.env.health.record_generations_gcd(gcd);
        }
        if let Some(floor) = floor {
            if self.collect_attached_below(floor).is_err() {
                self.inner.env.health.record_cleanup_failure();
            }
        }
    }

    /// Deletes the attached-tier rows of retired file IDs (everything
    /// strictly below `floor`): their presence rows and their data rows.
    /// Ranged, not a truncate — file IDs at or above the floor belong to
    /// live generations and keep their overlays.
    fn collect_attached_below(&self, floor: u32) -> Result<()> {
        if floor <= 1 {
            return Ok(());
        }
        let attached = self.attached()?;
        if attached.is_empty() {
            return Ok(());
        }
        let mut rows: Vec<Vec<u8>> = Vec::new();
        // Presence rows {0, 1} .. {0, floor} — the intent row {0, 0} and
        // live files' rows stay.
        let scan = attached.scan_at(
            Some(&presence_key(1)[..]),
            Some(&presence_key(floor)[..]),
            u64::MAX,
        )?;
        for row in scan {
            rows.push(row?.row);
        }
        // Data rows {1, 0} .. {floor, 0}.
        let scan = attached.scan_at(
            Some(&RecordId::file_start(1).to_key()[..]),
            Some(&RecordId::file_start(floor).to_key()[..]),
            u64::MAX,
        )?;
        for row in scan {
            rows.push(row?.row);
        }
        if !rows.is_empty() {
            attached.delete_rows(rows)?;
        }
        Ok(())
    }

    /// Deletes the attached-tier rows of explicitly folded (or orphaned)
    /// master files: each file's presence row and its data rows, all in
    /// ONE atomic delete batch. The atomicity is the crash-safety contract
    /// of the incremental fold — the presence entries and the data cells
    /// retire together, so no crash can leave an index claiming a file is
    /// clean while its overlay cells survive, or vice versa.
    fn collect_folded_attached(&self, folded: &[u32]) -> Result<()> {
        let attached = self.attached()?;
        if attached.is_empty() || folded.is_empty() {
            return Ok(());
        }
        let mut rows: Vec<Vec<u8>> = Vec::new();
        for &file_id in folded {
            // The file's presence row {0, file_id} …
            let scan = attached.scan_at(
                Some(&presence_key(file_id)[..]),
                Some(&presence_key(file_id.wrapping_add(1))[..]),
                u64::MAX,
            )?;
            for row in scan {
                rows.push(row?.row);
            }
            // … and its data rows {file_id, 0} .. {file_id + 1, 0}.
            let scan = attached.scan_at(
                Some(&RecordId::file_start(file_id).to_key()[..]),
                Some(&RecordId::file_start(file_id.wrapping_add(1)).to_key()[..]),
                u64::MAX,
            )?;
            for row in scan {
                rows.push(row?.row);
            }
        }
        if !rows.is_empty() {
            attached.delete_rows(rows)?;
        }
        Ok(())
    }

    /// COMPACT (paper §III-C): UNION READ everything into a fresh Master
    /// Table and clear the Attached Table. Blocks all other operations.
    ///
    /// The rows stream straight from the UNION READ into the new
    /// generation's files — memory stays bounded by one master file, not
    /// the table. A transient storage fault aborts the half-built
    /// generation and the whole pass retries with backoff (each attempt
    /// builds into a fresh generation, so a torn attempt is inert).
    pub fn compact(&self) -> Result<()> {
        let _guard = self.inner.ops.write();
        let policy = self.inner.config.retry;
        policy.run(&self.inner.env.health, || self.compact_once())
    }

    fn compact_once(&self) -> Result<()> {
        let next = self.next_generation()?;
        // Identity transform: COMPACT materializes the UNION READ as-is.
        self.parallel_rewrite(next, &|_, row| Ok((Some(row), false)))?;
        self.commit_and_cleanup(next)
    }

    // ------------------------------------------------------------------
    // Incremental background compaction (DESIGN.md §15)
    // ------------------------------------------------------------------

    /// Scores every dirty master file with the §IV-derived fold score
    /// ([`CostModel::fold_score`]) and returns the `max_files_per_cycle`
    /// dirtiest, ascending by file ID (scan order). Files the presence
    /// index proves clean never appear; under the conservative pre-index
    /// fallback nothing is a candidate (there is no per-file accounting to
    /// score with — a full `COMPACT` resolves that state).
    pub fn fold_candidates(&self) -> Result<Vec<u32>> {
        let _guard = self.inner.ops.read();
        self.fold_candidates_at(self.current_gen()?, u64::MAX)
    }

    fn fold_candidates_at(&self, gen: u64, at_ts: u64) -> Result<Vec<u32>> {
        let knobs = self.inner.config.compaction;
        if knobs.max_files_per_cycle == 0 {
            return Ok(Vec::new());
        }
        let attached = self.attached()?;
        let Some(index) = self.load_presence(&attached)? else {
            return Ok(Vec::new());
        };
        if index.files.is_empty() {
            return Ok(Vec::new());
        }
        let live: BTreeSet<u32> = self.visible_files(gen, at_ts).into_iter().collect();
        let model = self.cost_model();
        let mut scored: Vec<(f64, u32)> = Vec::new();
        for (&file_id, presence) in &index.files {
            if !live.contains(&file_id) {
                // Fold residue or a file staged after our snapshot — not
                // ours to fold.
                continue;
            }
            let cells = presence.delete_markers + presence.update_counts.values().sum::<u64>();
            if cells < knobs.min_attached_cells.max(1) {
                continue;
            }
            let rows = self.open_master(gen, file_id)?.num_rows();
            let bytes = self.inner.env.dfs.len(&self.file_path_at(gen, file_id))?;
            scored.push((
                model.fold_score(cells, rows, bytes, self.inner.config.k_successive_reads),
                file_id,
            ));
        }
        // Dirtiest first; ties resolve to the lower file ID so cycles are
        // deterministic.
        scored.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let mut picked: Vec<u32> = scored
            .into_iter()
            .take(knobs.max_files_per_cycle)
            .map(|(_, id)| id)
            .collect();
        picked.sort_unstable();
        Ok(picked)
    }

    /// Starts an incremental COMPACT: pins a snapshot, picks the k
    /// dirtiest master files and folds ONLY those into a fresh generation
    /// off to the side — every other file is byte-copied under its
    /// original file ID, so its record IDs, attached overlays and presence
    /// entries stay valid untouched. Returns `None` when nothing is dirty
    /// enough to fold. Like [`DualTableStore::begin_compact`], concurrent
    /// DML never blocks, and [`RewriteJob::finish`] loses with a retryable
    /// [`Error::Conflict`] to anything that committed since the pin.
    pub fn begin_incremental_compact(&self) -> Result<Option<RewriteJob>> {
        self.begin_incremental_inner(|| {})
    }

    /// [`Self::begin_incremental_compact`] with a hook that fires exactly
    /// when a build actually starts — after candidate selection found
    /// work, before any byte is written. [`Self::compact_incremental`]
    /// uses it to open its health ledger at the precise moment the cycle
    /// stops being a no-op.
    fn begin_incremental_inner(&self, on_build_start: impl FnOnce()) -> Result<Option<RewriteJob>> {
        let snapshot = self.begin_snapshot()?;
        let _guard = self.inner.ops.read();
        let fold = self.fold_candidates_at(snapshot.generation(), snapshot.ts())?;
        if fold.is_empty() {
            return Ok(None);
        }
        on_build_start();
        let next = self.next_generation()?;
        self.inner.mvcc.lock().register_build(next);
        match self.fold_build(&snapshot, next, &fold) {
            Ok(written) => Ok(Some(RewriteJob::new_fold(snapshot, next, written, fold))),
            Err(e) => {
                self.abandon_rewrite(next);
                Err(e)
            }
        }
    }

    /// Builds the incremental fold's generation: carried (not-folded)
    /// files are byte-copied under their original file IDs; folded files
    /// are UNION READ merged at the snapshot into fresh file IDs appended
    /// past them. Returns total rows written (carried + folded).
    fn fold_build(&self, snapshot: &Snapshot, next: u64, fold: &[u32]) -> Result<u64> {
        let gen = snapshot.generation();
        let at_ts = snapshot.ts();
        let fold_set: BTreeSet<u32> = fold.iter().copied().collect();
        // Reserve the folded rows' output file-ID range up front; footer
        // row counts upper-bound the UNION READ output (the attached tier
        // only updates or deletes rows, never adds them).
        let rows_per_file = self.inner.config.rows_per_file.max(1) as u64;
        let mut rows_bound = 0u64;
        for &file_id in fold {
            rows_bound += self.open_master(gen, file_id)?.num_rows();
        }
        let id_count = u32::try_from(rows_bound.div_ceil(rows_per_file).max(1))
            .map_err(|_| Error::internal("incremental fold needs too many file IDs"))?;
        let first_id = self
            .inner
            .env
            .meta
            .reserve_file_ids(&self.inner.name, id_count)?;
        let mut written = 0u64;
        for file_id in self.visible_files(gen, at_ts) {
            if fold_set.contains(&file_id) {
                continue;
            }
            // Carried file: byte-identical copy, same file ID. Its record
            // IDs — and therefore its overlays and presence entry — stay
            // valid in the new generation.
            let bytes = self
                .inner
                .env
                .dfs
                .read_to_vec(&self.file_path_at(gen, file_id))?;
            self.inner
                .env
                .dfs
                .write_file(&self.file_path_at(next, file_id), &bytes)?;
            written += self.open_master(gen, file_id)?.num_rows();
        }
        let projection: Vec<usize> = (0..self.inner.schema.len()).collect();
        let attached_store = self.attached()?;
        let mut sink = MasterWriteSink::reserved(self, next, first_id, id_count);
        for &file_id in fold {
            let reader = self.open_master(gen, file_id)?;
            let attached = Some(attached_store.scan_at(
                Some(&RecordId::file_start(file_id).to_key()[..]),
                Some(&RecordId::file_start(file_id.wrapping_add(1)).to_key()[..]),
                at_ts,
            )?);
            let flow = merge_file(
                file_id,
                &reader,
                &projection,
                None,
                attached,
                &mut |_, row| {
                    sink.push(row)?;
                    Ok(ControlFlow::Continue(()))
                },
            )?;
            debug_assert!(flow.is_continue(), "fold never breaks");
        }
        written += sink.finish()?;
        Ok(written)
    }

    /// One cycle of the background maintenance loop: pick the dirtiest
    /// files, fold them off to the side, swing. Health-ledger exact —
    /// every call that starts building ends as exactly one of completed,
    /// lost-race or aborted, even across panics (a drop guard converts an
    /// unwind into the aborted entry). The chaos soak asserts the ledger:
    /// `compactions_completed + compactions_lost_race + compactions_aborted
    /// == compactions_started`.
    ///
    /// A lost swing race is a clean retry, not an error: the abandoned
    /// generation is already deleted, and the stale-directory sweep is
    /// retried eagerly (counted by `stale_gens_swept`) rather than waiting
    /// for the next reopen.
    pub fn compact_incremental(&self) -> Result<FoldOutcome> {
        struct AbortGuard {
            health: Arc<dt_common::HealthCounters>,
            armed: std::cell::Cell<bool>,
        }
        impl Drop for AbortGuard {
            fn drop(&mut self) {
                if self.armed.get() {
                    self.health.record_compaction_aborted();
                }
            }
        }
        let guard = AbortGuard {
            health: self.inner.env.health.clone(),
            armed: std::cell::Cell::new(false),
        };
        let job = self.begin_incremental_inner(|| {
            self.inner.env.health.record_compaction_started();
            guard.armed.set(true);
        })?;
        let Some(job) = job else {
            return Ok(FoldOutcome::Clean);
        };
        let files = job.folded_files().map_or(0, <[u32]>::len);
        let rows = job.rows_written();
        match job.finish() {
            Ok(_) => {
                guard.armed.set(false);
                self.inner.env.health.record_compaction_completed();
                Ok(FoldOutcome::Folded { files, rows })
            }
            Err(e) if e.is_conflict() => {
                guard.armed.set(false);
                self.inner.env.health.record_compaction_lost_race();
                // Eagerly retry the sweep of any stale directory an
                // earlier failure left behind, so leaks are observable
                // and bounded instead of waiting for the next reopen.
                if let Ok(gen) = self.current_gen() {
                    let (swept, _) = self.cleanup_stale_generations(gen);
                    if swept > 0 {
                        self.inner.env.health.record_stale_gens_swept(swept);
                    }
                }
                Ok(FoldOutcome::LostRace)
            }
            Err(e) => Err(e),
        }
    }

    /// [`DualTableStore::finish_rewrite`] for an incremental fold: same
    /// conflict rules and swing, but the attached tier is retired only for
    /// the folded files — never truncated — because carried files' record
    /// IDs stay live and keep their overlays.
    pub(crate) fn finish_fold(&self, next: u64, pin_ts: u64, folded: &[u32]) -> Result<()> {
        let _guard = self.inner.ops.write();
        let result = self.commit_generation_incremental(next, pin_ts, Some(pin_ts), folded);
        if result.is_err() {
            self.abandon_rewrite(next);
        }
        result
    }

    /// [`DualTableStore::commit_generation_mvcc`] for the incremental
    /// fold. Identical swing protocol — conflict check, commit point,
    /// swing stamp, floor, deferred GC — with one difference in step 3:
    /// instead of the whole-table attached truncate, only the folded
    /// files' presence and data rows are retired, in one atomic batch, and
    /// only when no pinned reader of an older generation could still need
    /// them. When retirement is gated off (or crashes), the residue is
    /// unreachable either way — no live file covers those record-ID
    /// ranges, and file IDs are never reused — and the open-time
    /// [`Self::sweep_fold_residue`] settles it.
    fn commit_generation_incremental(
        &self,
        next: u64,
        snapshot_ts: u64,
        own_pin_ts: Option<u64>,
        folded: &[u32],
    ) -> Result<()> {
        let collect_ok;
        {
            let mut st = self.inner.mvcc.lock();
            if st.conflict_since(snapshot_ts, &[]).is_some() || st.edits_since(snapshot_ts) {
                self.inner.env.health.record_swing_conflict();
                return Err(Error::conflict(format!(
                    "incremental fold abandoned: writes committed after snapshot {snapshot_ts}"
                )));
            }
            let old_gen = self.current_gen()?;
            // The commit point (see `commit_generation_mvcc`).
            self.inner
                .env
                .meta
                .commit_generation(&self.inner.name, next)?;
            let swing_ts = self.inner.env.kv.clock().tick();
            let floor = self.generation_floor(next).unwrap_or_else(|_| {
                self.inner.env.health.record_cleanup_failure();
                0
            });
            let deferred = st.note_swing(old_gen, next, swing_ts, floor, own_pin_ts);
            if deferred {
                self.inner.env.health.record_generation_deferred();
            }
            collect_ok = !deferred && st.retired_count() == 0;
        }
        if collect_ok && self.collect_folded_attached(folded).is_err() {
            self.inner.env.health.record_cleanup_failure();
        }
        self.cleanup_stale_generations(next);
        self.sweep_gc();
        Ok(())
    }

    // ------------------------------------------------------------------
    // MVCC sessions (DESIGN.md §13)
    // ------------------------------------------------------------------

    /// Pins a read snapshot at the current `(generation, timestamp)`.
    /// The snapshot sees exactly this state until dropped, never blocks
    /// writers, and holds its generation's files against GC.
    pub fn begin_snapshot(&self) -> Result<Snapshot> {
        let mut st = self.inner.mvcc.lock();
        let gen = self.current_gen()?;
        // Ticked under the state mutex: every commit batch — a
        // transaction's single commit batch and each flushed autocommit
        // EDIT batch — holds this mutex across its KV write, so a pin
        // timestamp never lands inside a batch's cell-timestamp range.
        // Transactions are therefore entirely visible or entirely
        // invisible to every snapshot. Autocommit UPDATE/DELETE
        // statements are atomic per *batch*, not per statement: one
        // flushes durably every 4096 cells, and a snapshot pinned
        // mid-statement sees the already-flushed prefix (DESIGN.md §13).
        // Statement-level atomicity requires BEGIN/COMMIT.
        let ts = self.inner.env.kv.clock().tick();
        st.pin(gen, ts);
        drop(st);
        self.inner.env.health.record_snapshot_pinned();
        Ok(Snapshot::new(self.clone(), gen, ts))
    }

    /// Begins a snapshot-isolation transaction (see [`Transaction`]).
    pub fn begin_transaction(&self) -> Result<Transaction> {
        Ok(Transaction::new(self.begin_snapshot()?))
    }

    /// Releases the pin taken at `ts` and sweeps any generation whose
    /// last pin just drained.
    pub(crate) fn release_pin(&self, ts: u64) {
        self.inner.mvcc.lock().unpin(ts);
        self.sweep_gc();
    }

    /// Live snapshot pins on this table (diagnostics and tests).
    pub fn pinned_snapshots(&self) -> usize {
        self.inner.mvcc.lock().pin_count()
    }

    /// Retired generations currently kept alive for pinned readers
    /// (diagnostics and tests).
    pub fn retired_generations(&self) -> usize {
        self.inner.mvcc.lock().retired_count()
    }

    /// Starts a two-phase COMPACT: pins a snapshot and rewrites it into a
    /// fresh generation off to the side *without* blocking concurrent DML
    /// (only the ops read lock is held, like any scan). The returned
    /// [`RewriteJob`] must be `finish()`ed to swing the pointer — which
    /// fails with a retryable [`Error::Conflict`] if anything committed
    /// since the pin.
    pub fn begin_compact(&self) -> Result<RewriteJob> {
        self.begin_rewrite_job(|store, snapshot, next| {
            store
                .parallel_rewrite_from(snapshot.generation(), snapshot.ts(), next, &|_, row| {
                    Ok((Some(row), false))
                })
                .map(|(written, _, _)| written)
        })
    }

    /// Starts a two-phase INSERT OVERWRITE: writes `rows` as a fresh
    /// generation off to the side. Like [`DualTableStore::begin_compact`],
    /// the swing happens at [`RewriteJob::finish`] and loses to any
    /// concurrent commit.
    pub fn begin_insert_overwrite(&self, rows: Vec<Row>) -> Result<RewriteJob> {
        self.begin_rewrite_job(move |store, _snapshot, next| {
            store.write_master_files(next, rows.clone())
        })
    }

    /// Common scaffolding of the two-phase rewrites: pin, reserve a build
    /// generation (protected from cleanup while in progress), build, and
    /// on build failure delete the half-built generation.
    fn begin_rewrite_job(
        &self,
        build: impl Fn(&DualTableStore, &Snapshot, u64) -> Result<u64>,
    ) -> Result<RewriteJob> {
        let snapshot = self.begin_snapshot()?;
        let _guard = self.inner.ops.read();
        let next = self.next_generation()?;
        self.inner.mvcc.lock().register_build(next);
        match build(self, &snapshot, next) {
            Ok(written) => Ok(RewriteJob::new(snapshot, next, written)),
            Err(e) => {
                self.abandon_rewrite(next);
                Err(e)
            }
        }
    }

    /// Swings the pointer to a finished two-phase build. On conflict (any
    /// commit since the build's pin) the built generation is deleted and
    /// the error is retryable.
    pub(crate) fn finish_rewrite(&self, next: u64, pin_ts: u64) -> Result<()> {
        let _guard = self.inner.ops.write();
        let result = self.commit_generation_mvcc(next, pin_ts, Some(pin_ts));
        if result.is_err() {
            self.abandon_rewrite(next);
        }
        result
    }

    /// Deletes an abandoned (never-committed) build generation. Unlike the
    /// sweeper this never counts toward `generations_gcd` — the generation
    /// was never live.
    pub(crate) fn abandon_rewrite(&self, next: u64) {
        self.inner.mvcc.lock().finish_build(next);
        let dir = format!("{}/", self.gen_dir(next));
        self.inner.footers.invalidate_prefix(&dir);
        for path in self.inner.env.dfs.list(&dir) {
            if self.inner.env.dfs.delete(&path).is_err() {
                self.inner.env.health.record_cleanup_failure();
            }
        }
    }

    fn conflict_error(&self, conflict: Conflict, pin_ts: u64) -> Error {
        match conflict {
            Conflict::Swing => {
                self.inner.env.health.record_swing_conflict();
                Error::conflict(format!(
                    "transaction pinned at {pin_ts} lost to a generation swing"
                ))
            }
            Conflict::Record(id) => {
                self.inner.env.health.record_ww_conflict();
                let record = RecordId::from_u64(id);
                Error::conflict(format!(
                    "write-write conflict: record {{file {}, row {}}} committed after snapshot {pin_ts}",
                    record.file_id, record.row
                ))
            }
        }
    }

    /// Best-effort undo of a transactional insert that failed before its
    /// commit batch: delete the written files, forget their staging, and
    /// remove the durable intent. Any residue is re-collected by
    /// [`Self::recover_txn_intents`] on the next open (the files stay
    /// invisible either way — they are only reachable via staging that is
    /// being forgotten, and a forgotten *existing* file would be visible,
    /// which is why files are deleted before unstaging).
    fn undo_staged_insert(
        &self,
        attached: &dt_kvstore::Store,
        gen: u64,
        staged: &[u32],
        intent_qual: &[u8],
    ) {
        if staged.is_empty() {
            return;
        }
        let mut all_deleted = true;
        for &id in staged {
            let path = self.file_path_at(gen, id);
            if self.inner.env.dfs.exists(&path) && self.inner.env.dfs.delete(&path).is_err() {
                self.inner.env.health.record_cleanup_failure();
                all_deleted = false;
            }
        }
        if all_deleted {
            self.inner
                .mvcc
                .lock()
                .unstage_files(gen, staged.iter().copied());
            let intent_row = RecordId::new(PRESENCE_FILE_ID, 0).to_key();
            if attached.delete_cell(&intent_row, intent_qual).is_err() {
                self.inner.env.health.record_cleanup_failure();
            }
        }
    }

    /// Commits a transaction's buffered effects atomically:
    ///
    /// 1. Transactional inserts are written as staged (invisible) master
    ///    files under a durable undo intent.
    /// 2. Under the state mutex, the first-committer-wins check runs and —
    ///    if it passes — every buffered cell, the presence increments they
    ///    imply and the intent removal land in ONE WAL-atomic attached
    ///    batch. The batch's timestamp is the commit timestamp: snapshots
    ///    pinned before it see none of the transaction, later ones all of
    ///    it.
    ///
    /// Returns the commit timestamp.
    pub(crate) fn commit_transaction(
        &self,
        pin_gen: u64,
        pin_ts: u64,
        overlay: &BTreeMap<RecordId, RowPatch>,
        inserts: &[Row],
    ) -> Result<u64> {
        if overlay.is_empty() && inserts.is_empty() {
            return Ok(pin_ts);
        }
        let _guard = self.inner.ops.read();
        let attached = self.attached()?;
        let write_set: Vec<u64> = overlay.keys().map(|r| r.as_u64()).collect();
        let intent_row = RecordId::new(PRESENCE_FILE_ID, 0).to_key();

        // Phase 1 — transactional inserts: reserve IDs, write the durable
        // undo intent, stage the IDs (invisible to every snapshot), then
        // write the files. Scans are only blocked for the brief staging
        // step, not the file writes.
        let mut staged: Vec<u32> = Vec::new();
        let mut intent_qual: Vec<u8> = Vec::new();
        if !inserts.is_empty() {
            let rows_per_file = self.inner.config.rows_per_file.max(1);
            let files = u32::try_from(inserts.len().div_ceil(rows_per_file))
                .map_err(|_| Error::internal("transactional insert needs too many files"))?;
            let first = self
                .inner
                .env
                .meta
                .reserve_file_ids(&self.inner.name, files)?;
            staged = (first..first + files).collect();
            intent_qual = crate::mvcc::txn_intent_qualifier(first);
            attached.put(
                &intent_row,
                &intent_qual,
                &encode_txn_intent(pin_gen, &staged),
            )?;
            {
                let mut st = self.inner.mvcc.lock();
                for &id in &staged {
                    st.stage_file(pin_gen, id);
                }
            }
            let mut sink = MasterWriteSink::reserved(self, pin_gen, first, files);
            let written = inserts
                .iter()
                .try_for_each(|row| sink.push(row.clone()))
                .and_then(|()| sink.finish().map(|_| ()));
            if let Err(e) = written {
                self.undo_staged_insert(&attached, pin_gen, &staged, &intent_qual);
                return Err(e);
            }
        }

        // Phase 2 — under the state mutex, so the conflict check and the
        // commit batch are one atomic step against other committers (and
        // against pin acquisition).
        let mut st = self.inner.mvcc.lock();
        if let Some(conflict) = st.conflict_since(pin_ts, &write_set) {
            drop(st);
            self.undo_staged_insert(&attached, pin_gen, &staged, &intent_qual);
            return Err(self.conflict_error(conflict, pin_ts));
        }
        let mut puts: Vec<(Vec<u8>, Vec<u8>, Vec<u8>)> = Vec::new();
        let mut delta = PresenceDelta::new();
        for (&record, patch) in overlay {
            if patch.deleted {
                puts.push(delete_cell(record));
                delta.add_delete(record.file_id);
            } else {
                let values: Vec<(usize, Value)> = patch
                    .updates
                    .iter()
                    .map(|(&col, v)| (col, v.clone()))
                    .collect();
                for (col, _) in &values {
                    delta.add_updates(record.file_id, *col, 1);
                }
                puts.extend(update_cells(record, &values));
            }
        }
        let deletes: Vec<(Vec<u8>, Vec<u8>)> = if staged.is_empty() {
            Vec::new()
        } else {
            vec![(intent_row.to_vec(), intent_qual.clone())]
        };
        let policy = self.delta_policy();
        let applied = (|| -> Result<u64> {
            let _presence_guard = self.inner.presence_lock.lock();
            for ((file_id, column), n) in delta.drain() {
                let key = presence_key(file_id);
                let qual = presence_qualifier(column);
                let current = match attached.get(&key, &qual)? {
                    Some(bytes) => decode_count(&bytes)?,
                    None => 0,
                };
                puts.push((key.to_vec(), qual.to_vec(), encode_count(current + n)));
            }
            if policy.enabled() {
                // Same WAL-atomic record: cells into the shadow tier, the
                // intent clear as a regular tombstone.
                attached.mutate_batch_shadow(puts, deletes)
            } else {
                attached.mutate_batch(puts, deletes)
            }
        })();
        match applied {
            Ok(commit_ts) => {
                st.note_edit_commit(write_set, commit_ts);
                st.commit_files(pin_gen, staged, commit_ts);
                drop(st);
                let _ = policy.maybe_spill(&attached);
                Ok(commit_ts)
            }
            Err(e) => {
                drop(st);
                self.undo_staged_insert(&attached, pin_gen, &staged, &intent_qual);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("id", DataType::Int64),
            ("name", DataType::Utf8),
            ("v", DataType::Float64),
        ])
    }

    fn row(i: i64) -> Row {
        vec![
            Value::Int64(i),
            Value::Utf8(format!("n{}", i % 7)),
            Value::Float64(i as f64),
        ]
    }

    fn table_with(n: i64, config: DualTableConfig) -> DualTableStore {
        let env = DualTableEnv::in_memory();
        let t = DualTableStore::create(&env, "t", schema(), config).unwrap();
        t.insert_rows((0..n).map(row)).unwrap();
        t
    }

    fn small_files() -> DualTableConfig {
        DualTableConfig {
            rows_per_file: 32,
            ..DualTableConfig::default()
        }
    }

    #[test]
    fn insert_and_scan_roundtrip() {
        let t = table_with(100, small_files());
        assert_eq!(t.master_file_ids().unwrap().len(), 4);
        let rows = t.scan_all().unwrap();
        assert_eq!(rows.len(), 100);
        for (i, (id, r)) in rows.iter().enumerate() {
            assert_eq!(r, &row(i as i64));
            assert_eq!(id.row as usize, i % 32);
        }
        // Record IDs ascend.
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(t.count().unwrap(), 100);
    }

    #[test]
    fn update_edit_plan_overlays_values() {
        let mut config = small_files();
        config.plan_mode = PlanMode::AlwaysEdit;
        let t = table_with(100, config);
        let report = t
            .update(
                |r| r[0].as_i64().unwrap() % 10 == 0,
                &[(
                    2,
                    Box::new(|r: &Row| Value::Float64(r[0].as_f64().unwrap() * 100.0)),
                )],
                RatioHint::Explicit(0.1),
            )
            .unwrap();
        assert_eq!(report.plan, PlanChoice::Edit);
        assert_eq!(report.rows_matched, 10);
        // Master untouched, attached populated.
        let stats = t.stats().unwrap();
        assert_eq!(stats.master_rows, 100);
        assert!(stats.attached_entries >= 10);
        let rows = t.scan_all().unwrap();
        assert_eq!(rows[30].1[2], Value::Float64(3000.0));
        assert_eq!(rows[31].1[2], Value::Float64(31.0));
    }

    #[test]
    fn update_overwrite_plan_rewrites_master() {
        let mut config = small_files();
        config.plan_mode = PlanMode::AlwaysOverwrite;
        let t = table_with(100, config);
        let report = t
            .update(
                |r| r[0].as_i64().unwrap() < 50,
                &[(1, Box::new(|_| Value::from("updated")))],
                RatioHint::Explicit(0.5),
            )
            .unwrap();
        assert_eq!(report.plan, PlanChoice::Overwrite);
        assert_eq!(report.rows_matched, 50);
        let stats = t.stats().unwrap();
        assert_eq!(stats.attached_entries, 0, "overwrite clears attached");
        let rows = t.scan_all().unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[0].1[1], Value::from("updated"));
        assert_eq!(rows[99].1[1], Value::Utf8("n1".into()));
    }

    #[test]
    fn delete_edit_hides_rows_and_compact_materializes() {
        let mut config = small_files();
        config.plan_mode = PlanMode::AlwaysEdit;
        let t = table_with(100, config);
        let report = t
            .delete(|r| r[0].as_i64().unwrap() >= 90, RatioHint::Explicit(0.1))
            .unwrap();
        assert_eq!(report.rows_matched, 10);
        assert_eq!(t.count().unwrap(), 90);
        let stats = t.stats().unwrap();
        assert_eq!(stats.master_rows, 100, "masters keep deleted rows");

        t.compact().unwrap();
        let stats = t.stats().unwrap();
        assert_eq!(stats.master_rows, 90);
        assert_eq!(stats.attached_entries, 0);
        assert_eq!(t.count().unwrap(), 90);
        // Values preserved.
        let rows = t.scan_all().unwrap();
        assert_eq!(rows[89].1[0], Value::Int64(89));
    }

    #[test]
    fn cost_based_mode_picks_edit_for_small_ratio_and_overwrite_for_large() {
        let t = table_with(200, small_files());
        let r1 = t
            .update(
                |r| r[0].as_i64().unwrap() == 0,
                &[(2, Box::new(|_| Value::Float64(1.0)))],
                RatioHint::Explicit(0.005),
            )
            .unwrap();
        assert_eq!(r1.plan, PlanChoice::Edit);
        assert!(r1.cost_diff.unwrap() > 0.0);
        let r2 = t
            .update(
                |r| r[0].as_i64().unwrap() >= 0,
                &[(2, Box::new(|_| Value::Float64(2.0)))],
                RatioHint::Explicit(1.0),
            )
            .unwrap();
        assert_eq!(r2.plan, PlanChoice::Overwrite);
        assert!(r2.cost_diff.unwrap() <= 0.0);
        assert_eq!(t.scan_all().unwrap()[0].1[2], Value::Float64(2.0));
    }

    #[test]
    fn sampling_estimates_ratio() {
        let mut config = small_files();
        config.sample_rows = 50;
        let t = table_with(100, config);
        // Predicate matches ~half; sampled alpha should land near 0.5 and
        // the report must carry it.
        let report = t
            .update(
                |r| r[0].as_i64().unwrap() % 2 == 0,
                &[(2, Box::new(|_| Value::Float64(0.0)))],
                RatioHint::Sample,
            )
            .unwrap();
        assert!(
            (report.ratio_used - 0.5).abs() < 0.1,
            "alpha={}",
            report.ratio_used
        );
    }

    #[test]
    fn historical_ratio_feeds_cost_model() {
        let t = table_with(100, small_files());
        let key = "stmt-u1";
        // First run records the true ratio (falls back to sampling).
        t.update_keyed(
            |r| r[0].as_i64().unwrap() < 5,
            &[(2, Box::new(|_| Value::Float64(9.0)))],
            RatioHint::Historical,
            Some(key),
        )
        .unwrap();
        let hist = t.env().meta.historical_ratio(key).unwrap().unwrap();
        assert!((hist - 0.05).abs() < 1e-9);
        // Second run uses the recorded history.
        let r = t
            .update_keyed(
                |r| r[0].as_i64().unwrap() < 5,
                &[(2, Box::new(|_| Value::Float64(10.0)))],
                RatioHint::Historical,
                Some(key),
            )
            .unwrap();
        assert!((r.ratio_used - 0.05).abs() < 1e-9);
    }

    #[test]
    fn update_then_delete_interleaving() {
        let mut config = small_files();
        config.plan_mode = PlanMode::AlwaysEdit;
        let t = table_with(50, config);
        t.update(
            |r| r[0].as_i64().unwrap() == 7,
            &[(2, Box::new(|_| Value::Float64(700.0)))],
            RatioHint::Explicit(0.02),
        )
        .unwrap();
        t.delete(|r| r[0].as_i64().unwrap() == 7, RatioHint::Explicit(0.02))
            .unwrap();
        let rows = t.scan_all().unwrap();
        assert_eq!(rows.len(), 49);
        assert!(rows.iter().all(|(_, r)| r[0] != Value::Int64(7)));
    }

    #[test]
    fn updates_accumulate_latest_wins() {
        let mut config = small_files();
        config.plan_mode = PlanMode::AlwaysEdit;
        let t = table_with(10, config);
        for round in 0..3 {
            t.update(
                |r| r[0].as_i64().unwrap() == 3,
                &[(2, Box::new(move |_| Value::Float64(round as f64)))],
                RatioHint::Explicit(0.1),
            )
            .unwrap();
        }
        let rows = t.scan_all().unwrap();
        assert_eq!(rows[3].1[2], Value::Float64(2.0));
        // History preserved in the attached tier.
        let record = rows[3].0;
        let history = t.cell_history(record, 2, 10).unwrap();
        assert_eq!(history.len(), 3);
        assert_eq!(history[0].1, Value::Float64(2.0));
        assert_eq!(history[2].1, Value::Float64(0.0));
    }

    #[test]
    fn projection_scan_applies_overlays() {
        let mut config = small_files();
        config.plan_mode = PlanMode::AlwaysEdit;
        let t = table_with(20, config);
        t.update(
            |r| r[0].as_i64().unwrap() == 5,
            &[(2, Box::new(|_| Value::Float64(-1.0)))],
            RatioHint::Explicit(0.05),
        )
        .unwrap();
        let rows = t
            .scan(&UnionReadOptions::all().with_projection(vec![2, 0]))
            .unwrap();
        assert_eq!(rows[5].1, vec![Value::Float64(-1.0), Value::Int64(5)]);
        assert_eq!(rows[6].1, vec![Value::Float64(6.0), Value::Int64(6)]);
    }

    #[test]
    fn insert_overwrite_replaces_everything() {
        let mut config = small_files();
        config.plan_mode = PlanMode::AlwaysEdit;
        let t = table_with(40, config);
        t.delete(|r| r[0].as_i64().unwrap() == 0, RatioHint::Explicit(0.02))
            .unwrap();
        t.insert_overwrite((100..110).map(row)).unwrap();
        let rows = t.scan_all().unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(rows[0].1[0], Value::Int64(100));
        assert_eq!(t.stats().unwrap().attached_entries, 0);
    }

    #[test]
    fn drop_table_removes_storage() {
        let env = DualTableEnv::in_memory();
        let t = DualTableStore::create(&env, "gone", schema(), small_files()).unwrap();
        t.insert_rows((0..10).map(row)).unwrap();
        t.clone().drop_table().unwrap();
        assert!(env.dfs.list("/warehouse/gone/").is_empty());
        assert!(env.kv.table("att_gone").is_err());
        // Name reusable.
        DualTableStore::create(&env, "gone", schema(), small_files()).unwrap();
    }

    #[test]
    fn create_duplicate_fails_and_open_finds_existing() {
        let env = DualTableEnv::in_memory();
        let t = DualTableStore::create(&env, "x", schema(), small_files()).unwrap();
        t.insert_rows((0..5).map(row)).unwrap();
        assert!(DualTableStore::create(&env, "x", schema(), small_files()).is_err());
        let t2 = DualTableStore::open(&env, "x", schema(), small_files()).unwrap();
        assert_eq!(t2.count().unwrap(), 5);
        assert!(DualTableStore::open(&env, "missing", schema(), small_files()).is_err());
    }

    #[test]
    fn empty_table_operations() {
        let env = DualTableEnv::in_memory();
        let t = DualTableStore::create(&env, "e", schema(), small_files()).unwrap();
        assert_eq!(t.count().unwrap(), 0);
        assert_eq!(t.scan_all().unwrap().len(), 0);
        let r = t
            .update(
                |_| true,
                &[(2, Box::new(|_| Value::Float64(0.0)))],
                RatioHint::Sample,
            )
            .unwrap();
        assert_eq!(r.rows_matched, 0);
        t.compact().unwrap();
        assert_eq!(t.count().unwrap(), 0);
    }

    #[test]
    fn update_type_mismatch_rejected() {
        let t = table_with(10, small_files());
        let err = t.update(
            |_| true,
            &[(2, Box::new(|_| Value::from("wrong type")))],
            RatioHint::Explicit(1.0),
        );
        assert!(err.is_err());
        let err = t.update(
            |_| true,
            &[(9, Box::new(|_| Value::Null))],
            RatioHint::Explicit(1.0),
        );
        assert!(err.is_err());
    }

    #[test]
    fn snapshot_scan_sees_pre_update_state() {
        let mut config = small_files();
        config.plan_mode = PlanMode::AlwaysEdit;
        let t = table_with(10, config);
        let snapshot_ts = t.env().kv.clock().tick();
        t.update(
            |r| r[0].as_i64().unwrap() == 1,
            &[(2, Box::new(|_| Value::Float64(99.0)))],
            RatioHint::Explicit(0.1),
        )
        .unwrap();
        let mut opts = UnionReadOptions::all();
        opts.snapshot_ts = snapshot_ts;
        let old = t.scan(&opts).unwrap();
        assert_eq!(
            old[1].1[2],
            Value::Float64(1.0),
            "snapshot must predate update"
        );
        let new = t.scan_all().unwrap();
        assert_eq!(new[1].1[2], Value::Float64(99.0));
    }

    /// Regression (REVIEW: lost-update race): an autocommit EDIT batch
    /// must be in the conflict window the moment its durable write lands
    /// — not at end of statement. A transaction running its
    /// first-committer-wins check in between would otherwise miss the
    /// already-durable edits and overwrite them.
    #[test]
    fn autocommit_flush_enters_conflict_window_immediately() {
        let t = table_with(10, small_files());
        let txn = t.begin_transaction().unwrap();
        let pin_ts = txn.snapshot_ts();
        let (rec, _) = t.scan_all().unwrap()[0];
        // One mid-statement flush, exactly as update_edit_locked drives it.
        let attached = t.attached().unwrap();
        let values = vec![(2usize, Value::Float64(-5.0))];
        let mut batch = update_cells(rec, &values);
        let mut delta = PresenceDelta::new();
        delta.add_updates(rec.file_id, 2, 1);
        let mut touched = vec![rec.as_u64()];
        t.flush_edit_batch(&attached, &mut batch, &mut delta, &mut touched)
            .unwrap();
        assert!(touched.is_empty(), "flush drains the touched set");
        assert!(
            t.inner
                .mvcc
                .lock()
                .conflict_since(pin_ts, &[rec.as_u64()])
                .is_some(),
            "flushed batch must conflict with the pinned transaction at once"
        );
        drop(txn);
    }

    /// Regression (REVIEW: non-repeatable read): autocommit INSERT must
    /// stage its files before they become listable. A snapshot pinned
    /// after the file write but before the commit must never see the new
    /// rows — with unstaged files (absent-means-visible) it would first
    /// see them, then lose them when the commit lands past its pin.
    #[test]
    fn snapshot_pinned_mid_insert_never_sees_staged_files() {
        let t = table_with(10, small_files());
        let gen = t.current_gen().unwrap();
        // Replicate insert_rows' window: reserve + stage + write, no
        // commit yet.
        let first = t.inner.env.meta.reserve_file_ids(&t.inner.name, 1).unwrap();
        t.inner.mvcc.lock().stage_file(gen, first);
        let mut sink = MasterWriteSink::reserved(&t, gen, first, 1);
        for i in 100..110 {
            sink.push(row(i)).unwrap();
        }
        sink.finish().unwrap();
        // Pinned inside the window: the durable-but-uncommitted file is
        // invisible.
        let snap = t.begin_snapshot().unwrap();
        assert_eq!(snap.count().unwrap(), 10, "staged file must be invisible");
        // Commit point (as insert_rows runs it).
        {
            let mut st = t.inner.mvcc.lock();
            let ts = t.inner.env.kv.clock().tick();
            st.commit_files(gen, [first], ts);
            st.note_edit_commit([], ts);
        }
        assert_eq!(
            snap.count().unwrap(),
            10,
            "repeatable read across the commit point"
        );
        drop(snap);
        assert_eq!(t.count().unwrap(), 20, "new snapshots see the insert");
    }

    /// Regression (REVIEW: partial statement in the buffer): a failed
    /// transactional UPDATE must leave the transaction buffer untouched —
    /// committed-row patches *and* buffered-insert mutations alike —
    /// or a later COMMIT persists half a statement.
    #[test]
    fn failed_transaction_update_leaves_buffer_untouched() {
        let t = table_with(10, small_files());
        let mut txn = t.begin_transaction().unwrap();
        txn.insert(vec![row(100), row(101)]).unwrap();
        // Valid value for every committed row and the first pending row;
        // wrong type for the second pending row → the statement fails.
        let err = txn
            .update(
                |r| r[0].as_i64().unwrap() >= 5,
                &[(
                    2,
                    Box::new(|r: &Row| {
                        if r[0].as_i64().unwrap() == 101 {
                            Value::Utf8("bad".into())
                        } else {
                            Value::Float64(-1.0)
                        }
                    }),
                )],
            )
            .unwrap_err();
        assert!(matches!(err, Error::Schema(_)), "got {err:?}");
        txn.commit().unwrap();
        let rows = t.scan_all().unwrap();
        assert_eq!(rows.len(), 12);
        for (_, r) in &rows {
            let id = r[0].as_i64().unwrap();
            assert_eq!(
                r[2],
                Value::Float64(id as f64),
                "no value from the failed statement may survive (id {id})"
            );
        }
    }
}

#[cfg(test)]
mod self_healing_tests {
    use super::*;
    use std::sync::Arc;

    use dt_common::fault::{FaultKind, FaultPlan};
    use dt_common::DataType;

    fn schema() -> Schema {
        Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)])
    }

    fn row(i: i64) -> Row {
        vec![Value::Int64(i), Value::Int64(0)]
    }

    fn overwrite_config() -> DualTableConfig {
        DualTableConfig {
            rows_per_file: 32,
            plan_mode: PlanMode::AlwaysOverwrite,
            ..DualTableConfig::default()
        }
    }

    fn faulty_table(config: DualTableConfig) -> (DualTableEnv, DualTableStore, Arc<FaultPlan>) {
        let plan = Arc::new(FaultPlan::none());
        plan.set_armed(false);
        let env = DualTableEnv::in_memory_faulty(plan.clone()).unwrap();
        let t = DualTableStore::create(&env, "t", schema(), config).unwrap();
        t.insert_rows((0..64).map(row)).unwrap();
        plan.set_armed(true);
        (env, t, plan)
    }

    #[test]
    fn update_overwrite_falls_back_to_edit_on_rewrite_failure() {
        let (env, t, plan) = faulty_table(overwrite_config());
        // The rewrite's first write (allocating a master file ID) fails
        // permanently; the statement must still succeed via EDIT.
        plan.fail_next(FaultKind::WriteError);
        let report = t
            .update(
                |r| r[0].as_i64().unwrap() < 8,
                &[(1, Box::new(|_| Value::Int64(7)))],
                RatioHint::Explicit(0.9),
            )
            .unwrap();
        plan.set_armed(false);
        assert_eq!(
            report.plan,
            PlanChoice::Edit,
            "executed plan is the fallback"
        );
        assert_eq!(report.rows_matched, 8);
        assert_eq!(env.health_report().table.plan_fallbacks, 1);
        // EDIT semantics: master untouched, overlay in the attached tier.
        let stats = t.stats().unwrap();
        assert_eq!(stats.master_rows, 64);
        assert!(stats.attached_entries > 0);
        let rows = t.scan_all().unwrap();
        assert_eq!(rows.len(), 64);
        assert_eq!(rows[3].1[1], Value::Int64(7));
        assert_eq!(rows[9].1[1], Value::Int64(0));
    }

    #[test]
    fn delete_overwrite_falls_back_to_edit_on_rewrite_failure() {
        let (env, t, plan) = faulty_table(overwrite_config());
        plan.fail_next(FaultKind::WriteError);
        let report = t
            .delete(
                |r| r[0].as_i64().unwrap() % 2 == 0,
                RatioHint::Explicit(0.5),
            )
            .unwrap();
        plan.set_armed(false);
        assert_eq!(report.plan, PlanChoice::Edit);
        assert_eq!(report.rows_matched, 32);
        assert_eq!(env.health_report().table.plan_fallbacks, 1);
        assert_eq!(t.count().unwrap(), 32);
        assert_eq!(t.stats().unwrap().master_rows, 64, "masters keep the rows");
    }

    #[test]
    fn compact_retries_through_transient_outage() {
        let (env, t, plan) = faulty_table(DualTableConfig {
            rows_per_file: 32,
            plan_mode: PlanMode::AlwaysEdit,
            ..DualTableConfig::default()
        });
        t.update(
            |r| r[0].as_i64().unwrap() < 4,
            &[(1, Box::new(|_| Value::Int64(1)))],
            RatioHint::Explicit(0.1),
        )
        .unwrap();
        // An outage longer than the KV tier's retry budget (4 attempts):
        // the tier-level retry exhausts, the statement-level retry in
        // `compact` takes over and the second pass drains the outage.
        plan.fail_transient_next(FaultKind::TransientWriteError, 5);
        t.compact().unwrap();
        plan.set_armed(false);
        let report = env.health_report();
        assert!(report.table.retries >= 1, "compact itself retried");
        assert_eq!(report.table.retry_successes, 1);
        assert!(report.kv.retry_exhausted >= 1, "tier retry gave up first");
        assert_eq!(t.count().unwrap(), 64);
        assert_eq!(t.stats().unwrap().attached_entries, 0);
        let rows = t.scan_all().unwrap();
        assert_eq!(rows[0].1[1], Value::Int64(1), "overlay survived compaction");
    }

    #[test]
    fn open_records_failed_gc_and_retries_it() {
        let (env, t, plan) = faulty_table(overwrite_config());
        plan.set_armed(false);
        // A torn, uncommitted rewrite left files in a future generation.
        let stale = format!("{}/part-0000000042", t.gen_dir(99));
        env.dfs.write_file(&stale, b"junk").unwrap();
        // GC on open hits a failing delete: the debt is recorded, not
        // swallowed.
        plan.set_armed(true);
        plan.fail_next(FaultKind::WriteError);
        let t2 = DualTableStore::open(&env, "t", schema(), overwrite_config()).unwrap();
        plan.set_armed(false);
        assert_eq!(env.health_report().table.cleanup_failures, 1);
        assert_eq!(t2.count().unwrap(), 64, "stale generation stays invisible");
        // Debt from a rewrite whose cleanup never ran at all (process
        // death before GC) is settled by the next open.
        let stale2 = format!("{}/part-0000000043", t.gen_dir(98));
        env.dfs.write_file(&stale2, b"junk").unwrap();
        DualTableStore::open(&env, "t", schema(), overwrite_config()).unwrap();
        assert!(!env.dfs.exists(&stale2), "GC retried on open");
        assert!(!env.dfs.exists(&stale));
        assert_eq!(t2.count().unwrap(), 64);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use dt_common::DataType;

    #[test]
    fn parallel_scan_equals_sequential() {
        let env = DualTableEnv::in_memory();
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Float64)]);
        let config = DualTableConfig {
            rows_per_file: 50,
            plan_mode: PlanMode::AlwaysEdit,
            ..DualTableConfig::default()
        };
        let t = DualTableStore::create(&env, "p", schema, config).unwrap();
        t.insert_rows((0..500).map(|i| vec![Value::Int64(i), Value::Float64(0.0)]))
            .unwrap();
        t.update(
            |r| r[0].as_i64().unwrap() % 9 == 0,
            &[(1, Box::new(|_| Value::Float64(9.0)))],
            RatioHint::Explicit(0.11),
        )
        .unwrap();
        t.delete(
            |r| r[0].as_i64().unwrap() % 13 == 0,
            RatioHint::Explicit(0.08),
        )
        .unwrap();

        let sequential = t.scan_all().unwrap();
        let job = dt_engine::JobConfig {
            max_mappers: 4,
            num_reducers: 2,
        };
        let parallel = t.scan_parallel(&UnionReadOptions::all(), &job).unwrap();
        assert_eq!(sequential, parallel);

        // Projection path too.
        let opts = UnionReadOptions::all().with_projection(vec![1]);
        let seq = t.scan(&opts).unwrap();
        let par = t.scan_parallel(&opts, &job).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn plan_preview_matches_execution() {
        let env = DualTableEnv::in_memory();
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Float64)]);
        let t = DualTableStore::create(
            &env,
            "pv",
            schema,
            DualTableConfig {
                rows_per_file: 64,
                ..DualTableConfig::default()
            },
        )
        .unwrap();
        t.insert_rows((0..300).map(|i| vec![Value::Int64(i), Value::Float64(0.0)]))
            .unwrap();

        let small = |r: &Row| r[0].as_i64().unwrap() < 3;
        let preview = t.plan_preview(&small, true).unwrap();
        assert_eq!(preview.plan, PlanChoice::Edit);
        assert!(preview.cost_diff > 0.0);
        assert!(preview.ratio < 0.05);
        let report = t
            .update(
                small,
                &[(1, Box::new(|_| Value::Float64(1.0)))],
                RatioHint::Sample,
            )
            .unwrap();
        assert_eq!(report.plan, preview.plan);

        let huge = |_: &Row| true;
        let preview = t.plan_preview(&huge, false).unwrap();
        assert_eq!(preview.plan, PlanChoice::Overwrite);
        assert!(preview.cost_diff < 0.0);
    }
}
