//! **DualTable** — the hybrid storage model of *"DualTable: A Hybrid Storage
//! Model for Update Optimization in Hive"* (ICDE 2015), built on the
//! workspace's HDFS-like DFS ([`dt_dfs`]), ORC-like columnar format
//! ([`dt_orcfile`]) and HBase-like LSM store ([`dt_kvstore`]).
//!
//! A [`DualTableStore`] is one table made of (paper §III):
//!
//! * a **Master Table** — a set of immutable ORC files in a DFS directory,
//!   batch-read optimized, initially holding all records;
//! * an **Attached Table** — a KV table holding *update cells* (new values
//!   for individual columns) and *delete markers*, keyed by record ID;
//! * a **record ID** per row: the master file's table-unique *file ID*
//!   (allocated from a system-wide metadata table, stored in ORC user
//!   metadata) concatenated with the row number computed during reads
//!   (§V-B) — see [`dt_common::RecordId`];
//! * **UNION READ** — a linear merge of the master scan with the attached
//!   scan (both ordered by record ID), overlaying updated cells and
//!   dropping deleted rows;
//! * **UPDATE / DELETE** executed by one of two plans, chosen by the §IV
//!   **cost model** ([`CostModel`]): the *EDIT plan* writes deltas to the
//!   Attached Table, the *OVERWRITE plan* rewrites the Master Table;
//! * **COMPACT** — folds the Attached Table into a fresh Master Table and
//!   clears it, blocking other operations while it runs.
//!
//! ```
//! use dt_common::{DataType, Schema, Value};
//! use dualtable::{DualTableConfig, DualTableEnv, DualTableStore, RatioHint};
//!
//! let env = DualTableEnv::in_memory();
//! let schema = Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Float64)]);
//! let t = DualTableStore::create(&env, "meter", schema, DualTableConfig::default()).unwrap();
//! t.insert_rows((0..100).map(|i| vec![Value::Int64(i), Value::Float64(0.0)])).unwrap();
//!
//! // UPDATE meter SET v = 1.0 WHERE id < 3  — the cost model picks EDIT.
//! let report = t.update(
//!     |row| row[0].as_i64().unwrap() < 3,
//!     &[(1, Box::new(|_| Value::Float64(1.0)))],
//!     RatioHint::Explicit(0.03),
//! ).unwrap();
//! assert_eq!(report.rows_matched, 3);
//!
//! let rows = t.scan_all().unwrap();
//! assert_eq!(rows.len(), 100);
//! assert_eq!(rows[2].1[1], Value::Float64(1.0));
//! ```

mod attached;
mod compactor;
mod config;
mod cost;
mod delta;
mod env;
mod meta;
mod mvcc;
mod presence;
mod shard;
mod store;
mod txn;
mod union_read;

pub use attached::{AttachedEntry, DELETE_MARKER_QUALIFIER};
pub use compactor::{CompactionController, CompactionMode, CompactorState, FoldOutcome};
pub use config::{CompactionConfig, DualTableConfig, PlanMode};
pub use cost::{CostModel, PlanChoice, Rates, RatioHint};
pub use env::{DualTableEnv, HealthReport};
pub use meta::MetadataManager;
pub use mvcc::MvccRegistry;
pub use presence::{FilePresence, PresenceIndex, PRESENCE_FILE_ID};
pub use shard::{
    ShardCommitFailure, ShardFoldStats, ShardMap, ShardSpec, ShardedDmlReport, ShardedTable,
    ShardedTransaction,
};
pub use store::{Assignment, DmlReport, DualTableStore, PlanPreview, TableStats};
pub use txn::{RewriteJob, Snapshot, Transaction};
pub use union_read::UnionReadOptions;
