//! The §IV cost model.
//!
//! Both models compare the total cost (modification + `k` subsequent reads)
//! of the OVERWRITE and EDIT plans and pick EDIT when the difference
//!
//! ```text
//! Cost_U = C^M_write(D) − α (C^A_write(D) + k C^A_read(D))                (1)
//! Cost_D = C^M_write(D) − β (C^M_write(D) + k C^M_read(D)
//!          + (m/d) C^A_write(D) + k (m/d) C^A_read(D))                    (2)
//! ```
//!
//! is positive (Assumption 1 makes every `C` linear in the data volume, so
//! the `k·C^M_read(D)` terms shared by both plans cancel).

/// Throughput rates per tier, in bytes/second.
///
/// The paper's worked example uses HDFS multi-mapper writes at 1 GB/s and
/// HBase at 0.5 GB/s reads / 0.8 GB/s writes; those are the defaults.
/// A calibration probe (see `dt-bench`'s `systems::calibrate_rates`) can
/// replace them with values observed on the actual substrate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rates {
    /// Master (DFS) sequential write throughput.
    pub master_write_bps: f64,
    /// Master (DFS) sequential read throughput.
    pub master_read_bps: f64,
    /// Attached (KV) write throughput.
    pub attached_write_bps: f64,
    /// Attached (KV) read throughput.
    pub attached_read_bps: f64,
}

impl Default for Rates {
    fn default() -> Self {
        const GB: f64 = 1024.0 * 1024.0 * 1024.0;
        Rates {
            master_write_bps: 1.0 * GB,
            // Master reads go through a MapReduce scan; ~0.5 GB/s makes the
            // DELETE model's crossover land where the paper measures it
            // (Figure 14, ~25-30%). The UPDATE model (eq. 1) does not use
            // this rate at all.
            master_read_bps: 0.5 * GB,
            attached_write_bps: 0.8 * GB,
            attached_read_bps: 0.5 * GB,
        }
    }
}

/// How the modification ratio (α for UPDATE, β for DELETE) is obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RatioHint {
    /// Given directly by the designer (§IV: "or can directly be given").
    Explicit(f64),
    /// Estimate by evaluating the predicate on a row sample.
    Sample,
    /// Use the historical average recorded for this statement key, falling
    /// back to sampling when no history exists (§IV: "estimated using
    /// historical analysis of the execution log").
    Historical,
}

/// The implementation plan selected for an UPDATE/DELETE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanChoice {
    /// Write modification info to the Attached Table.
    Edit,
    /// Rewrite the Master Table via INSERT OVERWRITE.
    Overwrite,
}

/// Per-extra-thread efficiency of the parallel rewrite fan-out. Workers
/// contend on the DFS namenode and on file-ID reservation, so each added
/// thread contributes less than a full thread of write bandwidth; 0.7 is
/// the conservative end of what `bench5_write_path` measures in-process.
const PARALLEL_WRITE_EFFICIENCY: f64 = 0.7;

/// Threads past this point no longer shrink the modeled OVERWRITE cost:
/// the rewrite is bandwidth-bound well before core counts on big hosts,
/// and capping keeps plan choices identical across machines.
const MODELED_WRITE_THREADS_CAP: usize = 8;

/// Fraction of the attached-tier write cost an EDIT pays when the delta
/// (shadow) tier absorbs it: the write is a WAL append plus a sorted-run
/// insert — no memtable rebalancing, no SSTable build amortized onto the
/// hot path. `bench9_htap` measures the actual gap; 0.4 is the
/// conservative (high) end so plan choices never over-promise.
const DELTA_EDIT_WRITE_FACTOR: f64 = 0.4;

/// Evaluates equations (1) and (2).
#[derive(Debug, Clone)]
pub struct CostModel {
    rates: Rates,
    /// Effective speedup of master rewrites from the parallel write path
    /// (DESIGN.md §12); `1.0` for a single-threaded writer.
    write_speedup: f64,
    /// Multiplier on `C^A_write` (DESIGN.md §17): `1.0` without a delta
    /// tier, [`DELTA_EDIT_WRITE_FACTOR`] when EDIT cells land in the
    /// WAL-only shadow tier instead of the full LSM write path.
    delta_write_factor: f64,
}

impl CostModel {
    /// Creates a model over the given rates, assuming a single-threaded
    /// master writer (the paper's worked example).
    pub fn new(rates: Rates) -> Self {
        Self::with_parallelism(rates, 1)
    }

    /// Creates a model whose OVERWRITE estimate accounts for the parallel
    /// rewrite fan-out: `C^M_write` shrinks by
    /// `1 + (threads − 1) · efficiency`, with threads capped so the factor
    /// stays machine-independent. Only master *writes* scale — master
    /// reads already model a parallel MapReduce scan, and the EDIT plan's
    /// attached-tier terms are untouched.
    pub fn with_parallelism(rates: Rates, write_threads: usize) -> Self {
        let threads = write_threads.clamp(1, MODELED_WRITE_THREADS_CAP);
        CostModel {
            rates,
            write_speedup: 1.0 + (threads - 1) as f64 * PARALLEL_WRITE_EFFICIENCY,
            delta_write_factor: 1.0,
        }
    }

    /// [`CostModel::with_parallelism`] plus the delta tier's EDIT cost
    /// curve: attached writes cost [`DELTA_EDIT_WRITE_FACTOR`] of their
    /// full-LSM price, so `Cost_U`/`Cost_D` grow and both crossover
    /// ratios move up — EDIT stays the winner at modification ratios
    /// where it previously lost.
    pub fn with_delta_tier(rates: Rates, write_threads: usize) -> Self {
        CostModel {
            delta_write_factor: DELTA_EDIT_WRITE_FACTOR,
            ..Self::with_parallelism(rates, write_threads)
        }
    }

    fn master_write(&self, bytes: f64) -> f64 {
        bytes / (self.rates.master_write_bps * self.write_speedup)
    }

    fn master_read(&self, bytes: f64) -> f64 {
        bytes / self.rates.master_read_bps
    }

    fn attached_write(&self, bytes: f64) -> f64 {
        self.delta_write_factor * bytes / self.rates.attached_write_bps
    }

    fn attached_read(&self, bytes: f64) -> f64 {
        bytes / self.rates.attached_read_bps
    }

    /// Equation (1): `Cost_U` in seconds. Positive ⇒ EDIT is cheaper.
    pub fn update_cost_diff(&self, data_bytes: u64, alpha: f64, k: u32) -> f64 {
        let d = data_bytes as f64;
        self.master_write(d)
            - alpha * (self.attached_write(d) + f64::from(k) * self.attached_read(d))
    }

    /// Equation (2): `Cost_D` in seconds. Positive ⇒ EDIT is cheaper.
    ///
    /// `marker_ratio` is `m/d`: delete-marker size over average row size.
    pub fn delete_cost_diff(&self, data_bytes: u64, beta: f64, k: u32, marker_ratio: f64) -> f64 {
        let d = data_bytes as f64;
        self.master_write(d)
            - beta
                * (self.master_write(d)
                    + f64::from(k) * self.master_read(d)
                    + marker_ratio * self.attached_write(d)
                    + f64::from(k) * marker_ratio * self.attached_read(d))
    }

    /// Plan choice for an UPDATE with ratio `alpha`.
    pub fn choose_update(&self, data_bytes: u64, alpha: f64, k: u32) -> PlanChoice {
        if self.update_cost_diff(data_bytes, alpha, k) > 0.0 {
            PlanChoice::Edit
        } else {
            PlanChoice::Overwrite
        }
    }

    /// Plan choice for a DELETE with ratio `beta`.
    pub fn choose_delete(
        &self,
        data_bytes: u64,
        beta: f64,
        k: u32,
        marker_ratio: f64,
    ) -> PlanChoice {
        if self.delete_cost_diff(data_bytes, beta, k, marker_ratio) > 0.0 {
            PlanChoice::Edit
        } else {
            PlanChoice::Overwrite
        }
    }

    /// The update ratio at which the plans break even (`Cost_U = 0`):
    /// `α* = C^M_write(D) / (C^A_write(D) + k C^A_read(D))`, independent of
    /// `D` under Assumption 1.
    pub fn update_crossover_ratio(&self, k: u32) -> f64 {
        let d = 1.0;
        self.master_write(d) / (self.attached_write(d) + f64::from(k) * self.attached_read(d))
    }

    /// The delete ratio at which the plans break even (`Cost_D = 0`).
    pub fn delete_crossover_ratio(&self, k: u32, marker_ratio: f64) -> f64 {
        let d = 1.0;
        self.master_write(d)
            / (self.master_write(d)
                + f64::from(k) * self.master_read(d)
                + marker_ratio * self.attached_write(d)
                + f64::from(k) * marker_ratio * self.attached_read(d))
    }

    /// Test hook: an arbitrary delta write factor, for pinning the cost
    /// curve's monotonicity in the factor itself.
    #[cfg(test)]
    fn with_delta_factor(rates: Rates, write_threads: usize, factor: f64) -> Self {
        CostModel {
            delta_write_factor: factor,
            ..Self::with_parallelism(rates, write_threads)
        }
    }

    /// Fold priority of one master file for background incremental
    /// compaction (DESIGN.md §15):
    ///
    /// ```text
    /// score = (attached_cells / file_rows) · read_frequency / C^M_write(file_bytes)
    /// ```
    ///
    /// Benefit in the numerator — every future read of this file pays an
    /// attached-tier merge proportional to its cell density, `k` times
    /// per modification window — and eq. (1)'s rewrite cost in the
    /// denominator. The "pick k dirtiest" ordering needs exactly two
    /// guarantees, which the property tests pin: the score is monotone in
    /// attached-cell count (dirtier never sorts below cleaner) and
    /// anti-monotone in file size (of two equally dirty files, folding
    /// the cheaper rewrite first). A clean file always scores zero.
    pub fn fold_score(
        &self,
        attached_cells: u64,
        file_rows: u64,
        file_bytes: u64,
        read_frequency: u32,
    ) -> f64 {
        let density = attached_cells as f64 / file_rows.max(1) as f64;
        let rewrite_cost = self.master_write(file_bytes.max(1) as f64);
        density * f64::from(read_frequency.max(1)) / rewrite_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: f64 = 1024.0 * 1024.0 * 1024.0;

    fn paper_rates() -> Rates {
        Rates {
            master_write_bps: 1.0 * GB,
            master_read_bps: 2.0 * GB, // cancels out of both equations
            attached_write_bps: 0.8 * GB,
            attached_read_bps: 0.5 * GB,
        }
    }

    #[test]
    fn paper_worked_example() {
        // §IV: D = 100 GB, α = 0.01, k = 30 ⇒ Cost_U = 38.75 s.
        let model = CostModel::new(paper_rates());
        let d = (100.0 * GB) as u64;
        let cost = model.update_cost_diff(d, 0.01, 30);
        assert!((cost - 38.75).abs() < 1e-9, "got {cost}");
        assert_eq!(model.choose_update(d, 0.01, 30), PlanChoice::Edit);
    }

    #[test]
    fn high_update_ratio_flips_to_overwrite() {
        let model = CostModel::new(paper_rates());
        let d = (100.0 * GB) as u64;
        // α* = 1 / (1/0.8 + 30/0.5) = 1/61.25 ≈ 0.0163
        let crossover = model.update_crossover_ratio(30);
        assert!((crossover - 1.0 / 61.25).abs() < 1e-12);
        assert_eq!(
            model.choose_update(d, crossover * 0.9, 30),
            PlanChoice::Edit
        );
        assert_eq!(
            model.choose_update(d, crossover * 1.1, 30),
            PlanChoice::Overwrite
        );
    }

    #[test]
    fn more_successive_reads_favour_overwrite() {
        let model = CostModel::new(paper_rates());
        let d = (10.0 * GB) as u64;
        let alpha = 0.05;
        assert_eq!(model.choose_update(d, alpha, 0), PlanChoice::Edit);
        assert_eq!(model.choose_update(d, alpha, 1000), PlanChoice::Overwrite);
    }

    #[test]
    fn delete_crossover_is_below_update_crossover() {
        // Deleting β of the data also SAVES master-write work under
        // OVERWRITE ((1-β)·D is written), so EDIT loses its edge sooner:
        // the paper observes the delete crossover at a lower ratio.
        let model = CostModel::new(paper_rates());
        let k = 1;
        let marker_ratio = 26.0 / 200.0;
        let up = model.update_crossover_ratio(k);
        let del = model.delete_crossover_ratio(k, marker_ratio);
        assert!(del < 1.0);
        assert!(up < 1.0);
        // With these rates the delete model's extra β-terms make its
        // crossover lower for any k where master reads dominate.
        assert!(
            del < up * 10.0,
            "sanity: both crossovers are small fractions"
        );
    }

    #[test]
    fn delete_cost_diff_signs() {
        let model = CostModel::new(paper_rates());
        let d = (64.0 * GB) as u64;
        let marker_ratio = 0.01;
        assert!(model.delete_cost_diff(d, 0.001, 1, marker_ratio) > 0.0);
        assert!(model.delete_cost_diff(d, 0.9, 1, marker_ratio) < 0.0);
        assert_eq!(
            model.choose_delete(d, 0.001, 1, marker_ratio),
            PlanChoice::Edit
        );
        assert_eq!(
            model.choose_delete(d, 0.9, 1, marker_ratio),
            PlanChoice::Overwrite
        );
    }

    #[test]
    fn parallelism_shrinks_overwrite_cost_and_crossover() {
        let serial = CostModel::new(paper_rates());
        let par4 = CostModel::with_parallelism(paper_rates(), 4);
        let d = (100.0 * GB) as u64;
        // A cheaper rewrite pulls Cost_U down (OVERWRITE gets more
        // attractive) and the crossover ratio with it.
        assert!(par4.update_cost_diff(d, 0.01, 30) < serial.update_cost_diff(d, 0.01, 30));
        assert!(par4.update_crossover_ratio(30) < serial.update_crossover_ratio(30));
        assert!(par4.delete_crossover_ratio(1, 0.1) < serial.delete_crossover_ratio(1, 0.1));
        // One thread is exactly the serial model; the EDIT-only terms of
        // eq. (1) never move, so at α = 0 the models agree.
        let par1 = CostModel::with_parallelism(paper_rates(), 1);
        assert_eq!(
            par1.update_cost_diff(d, 0.01, 30),
            serial.update_cost_diff(d, 0.01, 30)
        );
        assert_eq!(par4.update_cost_diff(0, 0.0, 30), 0.0);
    }

    #[test]
    fn modeled_parallelism_is_capped() {
        let d = (100.0 * GB) as u64;
        let capped = CostModel::with_parallelism(paper_rates(), MODELED_WRITE_THREADS_CAP);
        let excess = CostModel::with_parallelism(paper_rates(), 1024);
        assert_eq!(
            capped.update_cost_diff(d, 0.01, 30),
            excess.update_cost_diff(d, 0.01, 30),
            "threads past the cap must not change the estimate"
        );
        // The default config's ratio hints in the test suite sit below the
        // capped crossover, so plan choices stay machine-independent.
        assert!(excess.update_crossover_ratio(1) > 0.05);
    }

    #[test]
    fn crossover_is_scale_invariant() {
        // Assumption 1 (linearity) makes the choice independent of D.
        let model = CostModel::new(paper_rates());
        for d in [1u64 << 20, 1 << 30, 1 << 40] {
            assert_eq!(model.choose_update(d, 0.01, 30), PlanChoice::Edit);
            assert_eq!(model.choose_update(d, 0.5, 30), PlanChoice::Overwrite);
        }
    }

    #[test]
    fn fold_score_basics() {
        let model = CostModel::new(paper_rates());
        // A clean file never competes for a fold slot.
        assert_eq!(model.fold_score(0, 100, 1 << 20, 5), 0.0);
        // A dirty file always does.
        assert!(model.fold_score(1, 100, 1 << 20, 5) > 0.0);
        // Degenerate inputs (empty footer, zero-length file) stay finite.
        let s = model.fold_score(3, 0, 0, 0);
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn delta_tier_moves_the_crossover_up() {
        let plain = CostModel::with_parallelism(paper_rates(), 4);
        let delta = CostModel::with_delta_tier(paper_rates(), 4);
        let d = (100.0 * GB) as u64;
        // Cheaper attached writes make EDIT strictly more attractive…
        assert!(delta.update_cost_diff(d, 0.01, 30) > plain.update_cost_diff(d, 0.01, 30));
        // …so both crossover ratios move up.
        assert!(delta.update_crossover_ratio(30) > plain.update_crossover_ratio(30));
        assert!(delta.delete_crossover_ratio(1, 0.1) > plain.delete_crossover_ratio(1, 0.1));
        // A ratio just above the plain crossover flips plans with delta
        // on. Use k = 0 (write-dominated regime) where the tier's full
        // 1/0.4 = 2.5× crossover shift shows; at large k attached *reads*
        // dominate eq. (1) and the shift shrinks toward 1×.
        let alpha = plain.update_crossover_ratio(0) * 1.05;
        assert_eq!(plain.choose_update(d, alpha, 0), PlanChoice::Overwrite);
        assert_eq!(delta.choose_update(d, alpha, 0), PlanChoice::Edit);
    }

    #[test]
    fn delta_factor_one_is_exactly_the_plain_model() {
        let plain = CostModel::with_parallelism(paper_rates(), 3);
        let unity = CostModel::with_delta_factor(paper_rates(), 3, 1.0);
        let d = (10.0 * GB) as u64;
        assert_eq!(
            plain.update_cost_diff(d, 0.02, 5),
            unity.update_cost_diff(d, 0.02, 5)
        );
        assert_eq!(
            plain.delete_cost_diff(d, 0.02, 5, 0.1),
            unity.delete_cost_diff(d, 0.02, 5, 0.1)
        );
    }

    mod delta_cost_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Tentpole invariant (DESIGN.md §17): a smaller delta write
            /// factor can only make EDIT more attractive — Cost_U is
            /// monotone decreasing in the factor, so turning the delta
            /// tier on never silently flips a statement toward OVERWRITE.
            #[test]
            fn update_diff_monotone_decreasing_in_factor(
                // The shim proptest only implements `Strategy` for integer
                // ranges; draw basis points and scale to f64 in the body.
                factor_bp in 100u32..10_000,
                shrink_bp in 100u32..9_900,
                alpha_bp in 1u32..10_000,
                k in 0u32..100,
                threads in 1usize..16,
                d in 1u64..1 << 40,
            ) {
                let factor = f64::from(factor_bp) / 10_000.0;
                let shrink = f64::from(shrink_bp) / 10_000.0;
                let alpha = f64::from(alpha_bp) / 10_000.0;
                let hi = CostModel::with_delta_factor(paper_rates(), threads, factor);
                let lo = CostModel::with_delta_factor(paper_rates(), threads, factor * shrink);
                prop_assert!(
                    lo.update_cost_diff(d, alpha, k) >= hi.update_cost_diff(d, alpha, k),
                    "cheaper attached writes must never penalize EDIT"
                );
            }

            /// The crossover with the delta tier is never below the plain
            /// crossover: enabling the tier only widens EDIT's regime.
            #[test]
            fn crossover_with_delta_at_least_plain(
                k in 0u32..100,
                marker_ratio_pm in 1u32..10_000,
                threads in 1usize..16,
            ) {
                let marker_ratio = f64::from(marker_ratio_pm) / 10_000.0;
                let plain = CostModel::with_parallelism(paper_rates(), threads);
                let delta = CostModel::with_delta_tier(paper_rates(), threads);
                prop_assert!(
                    delta.update_crossover_ratio(k) >= plain.update_crossover_ratio(k)
                );
                prop_assert!(
                    delta.delete_crossover_ratio(k, marker_ratio)
                        >= plain.delete_crossover_ratio(k, marker_ratio)
                );
            }

            /// Delete diffs stay finite over the whole domain with the
            /// delta factor applied (no NaN poisoning of plan choice).
            #[test]
            fn delta_costs_stay_finite(
                beta_bp in 0u32..10_000,
                k in 0u32..1_000,
                marker_ratio_bp in 0u32..100_000,
                d in 0u64..1 << 45,
            ) {
                let beta = f64::from(beta_bp) / 10_000.0;
                let marker_ratio = f64::from(marker_ratio_bp) / 10_000.0;
                let model = CostModel::with_delta_tier(paper_rates(), 4);
                prop_assert!(model.delete_cost_diff(d, beta, k, marker_ratio).is_finite());
                prop_assert!(model.update_cost_diff(d, beta, k).is_finite());
            }
        }
    }

    mod fold_score_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Satellite invariant: the fold ordering can never invert
            /// under parameter drift. More attached cells ⇒ never a lower
            /// score (holding everything else fixed), so a dirtier file
            /// can never sort below a cleaner one.
            #[test]
            fn monotone_in_attached_cell_density(
                cells in 0u64..1_000_000,
                extra in 1u64..1_000_000,
                rows in 1u64..1 << 24,
                bytes in 1u64..1 << 40,
                freq in 0u32..1_000,
                threads in 1usize..16,
            ) {
                let model = CostModel::with_parallelism(paper_rates(), threads);
                let lo = model.fold_score(cells, rows, bytes, freq);
                let hi = model.fold_score(cells + extra, rows, bytes, freq);
                prop_assert!(hi > lo, "denser must outrank: {hi} vs {lo}");
            }

            /// Bigger file ⇒ pricier rewrite ⇒ never a higher score
            /// (holding dirtiness fixed), so of two equally dirty files
            /// the cheaper fold always wins.
            #[test]
            fn anti_monotone_in_file_size(
                cells in 1u64..1_000_000,
                rows in 1u64..1 << 24,
                bytes in 1u64..1 << 40,
                extra in 1u64..1 << 40,
                freq in 0u32..1_000,
                threads in 1usize..16,
            ) {
                let model = CostModel::with_parallelism(paper_rates(), threads);
                let small = model.fold_score(cells, rows, bytes, freq);
                let big = model.fold_score(cells, rows, bytes + extra, freq);
                prop_assert!(big < small, "bigger must rank below: {big} vs {small}");
            }

            /// Scores stay finite and non-negative over the whole input
            /// domain, including the zero corners, so a sort over them is
            /// always a total order (no NaN poisoning).
            #[test]
            fn total_order_safe(
                cells in 0u64..u64::MAX / 2,
                rows in 0u64..u64::MAX / 2,
                bytes in 0u64..u64::MAX / 2,
                freq in 0u32..u32::MAX,
            ) {
                let model = CostModel::new(paper_rates());
                let s = model.fold_score(cells, rows, bytes, freq);
                prop_assert!(s.is_finite());
                prop_assert!(s >= 0.0);
            }
        }
    }
}
