//! Property tests for edit-log recovery: arbitrary torn tails and
//! mangled CRC frames must salvage a clean *prefix* of the journaled
//! mutations (never an error, never a mixed state), appends after a
//! salvage must survive the next crash, and recovery through checkpoints
//! must be indistinguishable from pure log replay.

use std::sync::Arc;

use dt_dfs::{BlockStore, Dfs, DfsConfig, MemBlockStore, EDITS_FILE};
use proptest::prelude::*;

fn cfg(checkpoint_interval: u64) -> DfsConfig {
    DfsConfig {
        chunk_size: 32,
        replication: 2,
        checkpoint_interval,
        ..DfsConfig::default()
    }
}

/// Path and payload of write statement `i` (unique, deterministic).
fn file(i: usize) -> (String, Vec<u8>) {
    let len = (i * 29) % 90;
    (
        format!("/f{i}"),
        (0..len)
            .map(|j| (j as u8).wrapping_mul(i as u8 | 1))
            .collect(),
    )
}

/// The namespace recovered by a cold open, as sorted `(path, bytes)`.
fn namespace(dfs: &Dfs) -> Vec<(String, Vec<u8>)> {
    let mut v: Vec<(String, Vec<u8>)> = dfs
        .list("/")
        .into_iter()
        .map(|p| {
            let data = dfs.read_to_vec(&p).unwrap();
            (p, data)
        })
        .collect();
    v.sort();
    v
}

#[derive(Debug, Clone, Copy)]
enum Damage {
    /// Truncate the edit log to `frac`/1000 of its length (torn tail).
    Truncate(u32),
    /// XOR one byte at `frac`/1000 of the length (bit rot / torn frame).
    Mangle(u32, u8),
}

fn arb_damage() -> impl Strategy<Value = Damage> {
    prop_oneof![
        (0u32..1000).prop_map(Damage::Truncate),
        (0u32..1000, 1u8..=255u8).prop_map(|(f, x)| Damage::Mangle(f, x)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Damage anywhere in the edit log salvages a clean prefix: the
    /// recovered namespace is exactly the first `m` writes for some `m`,
    /// byte-identical, with no error and no partially-applied file — and
    /// files written *after* the salvage survive the next restart.
    #[test]
    fn damaged_edit_log_recovers_a_clean_prefix(
        n_files in 1usize..8,
        damage in arb_damage(),
    ) {
        let store = Arc::new(MemBlockStore::new());
        {
            // High interval: everything stays in the edit log, so the
            // damage lands on live records.
            let dfs = Dfs::with_block_store(store.clone(), cfg(1024)).unwrap();
            for i in 0..n_files {
                let (path, data) = file(i);
                dfs.write_file(&path, &data).unwrap();
            }
        }
        let log = store.meta_read(EDITS_FILE).unwrap();
        prop_assert!(!log.is_empty(), "n_files >= 1 must leave edits");
        let mut damaged = log.clone();
        match damage {
            Damage::Truncate(frac) => {
                let cut = log.len() * frac as usize / 1000;
                damaged.truncate(cut);
            }
            Damage::Mangle(frac, xor) => {
                let at = (log.len() - 1) * frac as usize / 1000;
                damaged[at] ^= xor;
            }
        }
        store.meta_write(EDITS_FILE, &damaged).unwrap();

        let dfs = Dfs::with_block_store(store.clone(), cfg(1024)).unwrap();
        let recovered = namespace(&dfs);
        // Prefix property: exactly the first m files, byte-identical.
        let m = recovered.len();
        prop_assert!(m <= n_files);
        let expected: Vec<(String, Vec<u8>)> = (0..m).map(file).collect();
        prop_assert_eq!(&recovered, &expected, "not a clean prefix");
        prop_assert!(dfs.fsck().unwrap().healthy());

        // The salvage reset the log: a file acknowledged now must not
        // land behind garbage and vanish at the next restart.
        dfs.write_file("/after-salvage", &[0xA5; 50]).unwrap();
        let again = Dfs::with_block_store(store, cfg(1024)).unwrap();
        let mut expected_after = expected;
        expected_after.push(("/after-salvage".to_string(), vec![0xA5; 50]));
        expected_after.sort();
        prop_assert_eq!(namespace(&again), expected_after);
    }

    /// Recovery through checkpoints equals pure log replay: the same
    /// mutation stream run under any checkpoint interval cold-opens to
    /// the identical namespace (checkpoint + tail-replay ≡ full replay).
    #[test]
    fn checkpoint_and_tail_replay_equals_pure_log_replay(
        n_files in 1usize..10,
        interval in 1u64..8,
        rename_last in any::<bool>(),
        delete_first in any::<bool>(),
    ) {
        let run = |interval: u64| -> Vec<(String, Vec<u8>)> {
            let store = Arc::new(MemBlockStore::new());
            {
                let dfs = Dfs::with_block_store(store.clone(), cfg(interval)).unwrap();
                for i in 0..n_files {
                    let (path, data) = file(i);
                    dfs.write_file(&path, &data).unwrap();
                }
                if rename_last {
                    dfs.rename(&file(n_files - 1).0, "/renamed").unwrap();
                }
                if delete_first {
                    let victim = if rename_last && n_files == 1 {
                        "/renamed".to_string()
                    } else {
                        file(0).0
                    };
                    dfs.delete(&victim).unwrap();
                }
            }
            let cold = Dfs::with_block_store(store, cfg(1024)).unwrap();
            namespace(&cold)
        };
        // interval=1024: nothing checkpoints, recovery is pure log
        // replay. Small intervals mix checkpoints and log tails.
        prop_assert_eq!(run(interval), run(1024));
    }
}
