//! Integrity audit: fsck must pass on healthy data and flag corrupted or
//! missing blocks.

use dt_dfs::{Dfs, DfsConfig};

#[test]
fn fsck_passes_on_healthy_filesystem() {
    let dfs = Dfs::in_memory(DfsConfig::small_chunks(16));
    for i in 0..5 {
        dfs.write_file(&format!("/f{i}"), &vec![i as u8; 100]).unwrap();
    }
    let report = dfs.fsck().unwrap();
    assert!(report.healthy());
    assert_eq!(report.files, 5);
    assert_eq!(report.blocks, 5 * 7); // ceil(100/16) = 7 blocks each
}

#[test]
fn fsck_detects_on_disk_corruption() {
    let dir = std::env::temp_dir().join(format!("dt-fsck-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dfs = Dfs::on_disk(&dir, DfsConfig::small_chunks(32)).unwrap();
    dfs.write_file("/healthy", &[7u8; 64]).unwrap();
    dfs.write_file("/victim", &[9u8; 64]).unwrap();
    assert!(dfs.fsck().unwrap().healthy());

    // Flip a byte in one block file behind the DFS's back (bit rot).
    let mut blocks: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    blocks.sort();
    let victim_block = blocks.last().unwrap();
    let mut bytes = std::fs::read(victim_block).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(victim_block, bytes).unwrap();

    let report = dfs.fsck().unwrap();
    assert_eq!(report.corrupt.len(), 1);
    assert!(!report.healthy());

    // Deleting a block entirely is also caught.
    std::fs::remove_file(victim_block).unwrap();
    let report = dfs.fsck().unwrap();
    assert!(!report.healthy());
    std::fs::remove_dir_all(&dir).ok();
}
