//! Integrity audit: fsck must pass on healthy data, flag corrupted,
//! missing and under-replicated blocks, and repair must restore the
//! full-replication invariant whenever one healthy replica survives.

use std::sync::Arc;

use dt_common::fault::{FaultKind, FaultPlan};
use dt_dfs::{BlockId, BlockStore, Dfs, DfsConfig, MemBlockStore};

#[test]
fn fsck_passes_on_healthy_filesystem() {
    let dfs = Dfs::in_memory(DfsConfig::small_chunks(16));
    for i in 0..5 {
        dfs.write_file(&format!("/f{i}"), &[i as u8; 100]).unwrap();
    }
    let report = dfs.fsck().unwrap();
    assert!(report.healthy());
    assert_eq!(report.files, 5);
    assert_eq!(report.blocks, 5 * 7); // ceil(100/16) = 7 blocks each
}

#[test]
fn fsck_detects_on_disk_corruption() {
    let dir = std::env::temp_dir().join(format!("dt-fsck-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let dfs = Dfs::on_disk(&dir, DfsConfig::small_chunks(32)).unwrap();
    dfs.write_file("/healthy", &[7u8; 64]).unwrap();
    dfs.write_file("/victim", &[9u8; 64]).unwrap();
    assert!(dfs.fsck().unwrap().healthy());

    // Flip a byte in one block file behind the DFS's back (bit rot).
    // The root also holds the namenode journal (nn_* files) — only blk_*
    // entries are replicas.
    let mut blocks: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("blk_"))
        })
        .collect();
    blocks.sort();
    let victim_block = blocks.last().unwrap();
    let mut bytes = std::fs::read(victim_block).unwrap();
    bytes[0] ^= 0xFF;
    std::fs::write(victim_block, bytes).unwrap();

    let report = dfs.fsck().unwrap();
    assert_eq!(report.corrupt.len(), 1);
    assert!(!report.healthy());

    // Deleting a block entirely is also caught.
    std::fs::remove_file(victim_block).unwrap();
    let report = dfs.fsck().unwrap();
    assert!(!report.healthy());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fsck_flags_under_replication_and_repair_restores_it() {
    // Corrupt one replica at write time: the write still succeeds (the
    // fault reports success), leaving the block group with 2/3 healthy
    // copies.
    let plan = Arc::new(FaultPlan::new(21).fail_at(2, FaultKind::CorruptWrite));
    plan.set_armed(false);
    let cfg = DfsConfig {
        chunk_size: 16,
        replication: 3,
        ..DfsConfig::default()
    };
    let dfs = Dfs::in_memory_faulty(cfg, plan.clone());
    dfs.write_file("/healthy", &[1u8; 40]).unwrap();
    let payload: Vec<u8> = (0..48u8).collect();
    plan.set_armed(true);
    dfs.write_file("/victim", &payload).unwrap();
    plan.set_armed(false);
    assert_eq!(plan.injected_count(), 1, "exactly one replica rotted");

    let report = dfs.fsck().unwrap();
    assert_eq!(report.under_replicated, vec!["/victim".to_string()]);
    assert!(report.corrupt.is_empty());
    assert!(!report.healthy());
    // Degraded durability, but reads fall back to a healthy replica.
    assert_eq!(dfs.read_to_vec("/victim").unwrap(), payload);

    let repair = dfs.repair().unwrap();
    assert_eq!(repair.files_repaired, 1);
    assert_eq!(repair.replicas_recreated, 1);
    assert!(repair.unrecoverable.is_empty());
    assert!(dfs.fsck().unwrap().healthy());
    assert_eq!(dfs.read_to_vec("/victim").unwrap(), payload);
    // Repair is idempotent.
    assert_eq!(dfs.repair().unwrap().replicas_recreated, 0);
}

#[test]
fn fsck_flags_missing_replicas_and_repair_reclones_them() {
    // Delete replicas behind the namenode's back (a lost datanode).
    let store = Arc::new(MemBlockStore::new());
    let cfg = DfsConfig {
        chunk_size: 16,
        replication: 2,
        ..DfsConfig::default()
    };
    let dfs = Dfs::with_block_store(store.clone(), cfg).unwrap();
    let payload = [5u8; 50]; // 4 blocks × 2 replicas = ids 0..8
    dfs.write_file("/f", &payload).unwrap();
    assert_eq!(store.block_count(), 8);
    // Drop one replica of two different block groups (ids are allocated
    // in put order: group i holds ids 2i and 2i+1).
    store.delete(BlockId(0)).unwrap();
    store.delete(BlockId(5)).unwrap();

    let report = dfs.fsck().unwrap();
    assert_eq!(report.under_replicated, vec!["/f".to_string()]);
    assert!(report.corrupt.is_empty());
    assert_eq!(dfs.read_to_vec("/f").unwrap(), payload);

    let repair = dfs.repair().unwrap();
    assert_eq!(repair.files_repaired, 1);
    assert_eq!(repair.replicas_recreated, 2);
    assert!(repair.unrecoverable.is_empty());
    assert!(dfs.fsck().unwrap().healthy());
    assert_eq!(store.block_count(), 8);
    assert_eq!(dfs.read_to_vec("/f").unwrap(), payload);
}

#[test]
fn repair_reports_unrecoverable_when_no_replica_survives() {
    let store = Arc::new(MemBlockStore::new());
    let cfg = DfsConfig {
        chunk_size: 16,
        replication: 1,
        ..DfsConfig::default()
    };
    let dfs = Dfs::with_block_store(store.clone(), cfg).unwrap();
    dfs.write_file("/gone", &[3u8; 20]).unwrap(); // blocks 0, 1
    dfs.write_file("/fine", &[4u8; 10]).unwrap();
    store.delete(BlockId(1)).unwrap();

    let report = dfs.fsck().unwrap();
    assert_eq!(report.corrupt, vec!["/gone".to_string()]);

    let repair = dfs.repair().unwrap();
    assert_eq!(repair.unrecoverable, vec!["/gone".to_string()]);
    assert_eq!(repair.replicas_recreated, 0);
    // The file stays listed — higher layers decide what to drop — and
    // the rest of the namespace is untouched.
    assert!(dfs.exists("/gone"));
    assert_eq!(dfs.read_to_vec("/fine").unwrap(), vec![4u8; 10]);
    assert!(!dfs.fsck().unwrap().healthy());
}
