//! Self-healing read path: checksum-verified replica failover, quarantine
//! of bad replicas, scrub-driven re-replication, and transient-fault retry
//! in both the read and write pipelines.

use std::sync::Arc;

use dt_common::fault::{FaultKind, FaultPlan};
use dt_dfs::{Dfs, DfsConfig, RetryPolicy};

fn three_way(chunk_size: usize) -> DfsConfig {
    DfsConfig {
        chunk_size,
        replication: 3,
        ..DfsConfig::default()
    }
}

/// The headline scenario: one of three replicas rots at write time; a
/// read must still succeed, the rotted replica must land in quarantine,
/// and a scrub pass must restore full replication and reclaim it.
#[test]
fn read_survives_one_corrupt_replica_then_scrub_rereplicates() {
    // CorruptWrite on the 2nd block put mangles exactly one replica of
    // the first (only) block group and reports success. (Write op 1 is
    // the BeginCreate edit-log append, op 2 the first replica put.)
    let plan = Arc::new(FaultPlan::new(17).fail_at(3, FaultKind::CorruptWrite));
    let dfs = Dfs::in_memory_faulty(three_way(64), plan.clone());
    let payload: Vec<u8> = (0..48u8).collect();
    dfs.write_file("/t/part-0", &payload).unwrap();
    plan.set_armed(false);
    assert_eq!(plan.injected_count(), 1, "exactly one replica rotted");

    // Force the reader onto the bad replica first by making it the only
    // survivor ordering question: replica order is placement order, so
    // replica #2 is the corrupt one — delete replica #1 behind the DFS's
    // back is not needed; just read and let verification do its job. The
    // read must return correct bytes regardless of which replica rots.
    assert_eq!(dfs.read_to_vec("/t/part-0").unwrap(), payload);

    // Reading again with a fresh reader keeps succeeding and never
    // quarantines a healthy replica twice.
    assert_eq!(dfs.read_to_vec("/t/part-0").unwrap(), payload);

    let health = dfs.health().snapshot();
    assert_eq!(
        dfs.quarantined_replicas() as u64 + health.rereplicated,
        health.quarantined,
        "every quarantined replica is either pending scrub or replaced"
    );

    let scrub = dfs.scrub().unwrap();
    assert!(dfs.fsck().unwrap().healthy(), "scrub restored 3/3 replicas");
    assert_eq!(dfs.quarantined_replicas(), 0, "quarantine drained");
    assert_eq!(
        scrub.quarantined_purged + scrub.replicas_recreated,
        dfs.health().snapshot().quarantined + dfs.health().snapshot().rereplicated
            - health.rereplicated,
        "scrub accounted for the quarantined replica"
    );
    assert_eq!(dfs.read_to_vec("/t/part-0").unwrap(), payload);
}

/// A replica whose *first* placement position is corrupt: the reader must
/// fail over (the corrupt copy is tried first), quarantine it, and record
/// both events in the health counters.
#[test]
fn failover_from_first_replica_quarantines_it() {
    // Op 1 is the BeginCreate edit-log append; op 2 is the first replica
    // placement — the copy the reader tries first.
    let plan = Arc::new(FaultPlan::new(23).fail_at(2, FaultKind::CorruptWrite));
    let dfs = Dfs::in_memory_faulty(three_way(64), plan.clone());
    let payload = vec![0xABu8; 32];
    dfs.write_file("/f", &payload).unwrap();
    plan.set_armed(false);

    assert_eq!(dfs.read_to_vec("/f").unwrap(), payload);
    let health = dfs.health().snapshot();
    assert_eq!(health.quarantined, 1, "bad first replica quarantined");
    assert!(health.failovers >= 1, "read failed over past it");
    assert_eq!(dfs.quarantined_replicas(), 1);

    let scrub = dfs.scrub().unwrap();
    assert_eq!(scrub.replicas_recreated, 1);
    assert_eq!(scrub.quarantined_purged, 1);
    assert!(dfs.fsck().unwrap().healthy());
}

/// A transient read fault must be retried on the *same* replica — a brief
/// datanode hiccup is not grounds for quarantine.
#[test]
fn transient_read_fault_is_retried_without_quarantine() {
    let plan = Arc::new(FaultPlan::new(31));
    let dfs = Dfs::in_memory_faulty(three_way(64), plan.clone());
    let payload = vec![7u8; 16];
    dfs.write_file("/blip", &payload).unwrap();
    plan.fail_transient_next(FaultKind::TransientReadError, 2);

    assert_eq!(dfs.read_to_vec("/blip").unwrap(), payload);
    let health = dfs.health().snapshot();
    assert_eq!(health.retries, 2);
    assert_eq!(health.retry_successes, 1);
    assert_eq!(health.quarantined, 0, "healthy replica not condemned");
    assert_eq!(health.failovers, 0);
}

/// With retry disabled, the same transient read fault forces a failover
/// instead: the replica is (spuriously) quarantined but the read still
/// succeeds from the next copy — availability either way, but the policy
/// decides how much collateral quarantine there is.
#[test]
fn retry_disabled_turns_transient_read_into_failover() {
    let plan = Arc::new(FaultPlan::new(31));
    let cfg = DfsConfig {
        retry: RetryPolicy::disabled(),
        ..three_way(64)
    };
    let dfs = Dfs::in_memory_faulty(cfg, plan.clone());
    let payload = vec![8u8; 16];
    dfs.write_file("/blip2", &payload).unwrap();
    plan.fail_transient_next(FaultKind::TransientReadError, 1);

    assert_eq!(dfs.read_to_vec("/blip2").unwrap(), payload);
    let health = dfs.health().snapshot();
    assert_eq!(health.retries, 0);
    assert_eq!(health.failovers, 1);
    assert_eq!(health.quarantined, 1);
}

/// The write pipeline retries transient placement failures; the file
/// commits with full replication and no error surfaces to the caller.
#[test]
fn write_pipeline_retries_transient_placement_failures() {
    let plan = Arc::new(FaultPlan::new(37));
    let dfs = Dfs::in_memory_faulty(three_way(64), plan.clone());
    plan.fail_transient_next(FaultKind::TransientWriteError, 3);

    let payload = vec![1u8; 24];
    dfs.write_file("/w", &payload).unwrap();
    plan.set_armed(false);
    assert!(dfs.fsck().unwrap().healthy(), "3/3 replicas placed");
    assert_eq!(dfs.read_to_vec("/w").unwrap(), payload);
    let health = dfs.health().snapshot();
    assert_eq!(health.retries, 3);
    assert_eq!(health.retry_successes, 1);

    // The same outage with retry disabled fails the write outright.
    let plan = Arc::new(FaultPlan::new(37));
    let cfg = DfsConfig {
        retry: RetryPolicy::disabled(),
        ..three_way(64)
    };
    let dfs = Dfs::in_memory_faulty(cfg, plan.clone());
    plan.fail_transient_next(FaultKind::TransientWriteError, 3);
    assert!(dfs.write_file("/w", &payload).is_err());
}

/// Reads fail only when every replica of a group is bad.
#[test]
fn read_fails_only_when_all_replicas_are_bad() {
    // Rot all three replicas of the single block group (write ops 2–4;
    // op 1 is the BeginCreate edit-log append).
    let plan = Arc::new(
        FaultPlan::new(41)
            .fail_at(2, FaultKind::CorruptWrite)
            .fail_at(3, FaultKind::CorruptWrite)
            .fail_at(4, FaultKind::CorruptWrite),
    );
    let dfs = Dfs::in_memory_faulty(three_way(64), plan.clone());
    dfs.write_file("/doomed", &[9u8; 20]).unwrap();
    plan.set_armed(false);
    assert_eq!(plan.injected_count(), 3);

    let err = dfs.read_to_vec("/doomed").unwrap_err();
    assert!(matches!(err, dt_common::Error::Corrupt(_)), "got {err:?}");
    // The last replica is never removed from the serving set: a suspect
    // copy beats no copy.
    assert_eq!(dfs.health().snapshot().quarantined, 2);
}
