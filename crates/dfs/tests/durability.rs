//! Namenode durability: every metadata mutation survives a namenode
//! crash + restart via the edit log and checkpoint, pending writers are
//! dropped (their blocks collected as orphans), the quarantine registry
//! persists so scrub resumes where it left off — and a mini crash-point
//! matrix drives the whole tier through a crash at *every* I/O operation
//! of a mutation workload.

use std::sync::Arc;

use dt_common::fault::{FaultKind, FaultPlan, IoOp};
use dt_common::{run_crash_matrix, select_crash_points};
use dt_dfs::{Dfs, DfsConfig, FaultyBlockStore, MemBlockStore};

fn cfg() -> DfsConfig {
    DfsConfig {
        chunk_size: 32,
        replication: 2,
        ..DfsConfig::default()
    }
}

/// The acceptance scenario: create files, crash the namenode (in-memory
/// namespace discarded), recover from the edit log, read every file back
/// byte-identical — through both the same handle and a cold open over the
/// same block store.
#[test]
fn files_survive_namenode_crash_byte_identical() {
    let store = Arc::new(MemBlockStore::new());
    let dfs = Dfs::with_block_store(store.clone(), cfg()).unwrap();
    let payloads: Vec<(String, Vec<u8>)> = (0..8u8)
        .map(|i| {
            // Sizes straddle block boundaries: empty, sub-block, exact
            // multiples, and multi-block with remainder.
            let len = [0usize, 1, 31, 32, 33, 64, 100, 200][i as usize];
            (
                format!("/t/part-{i}"),
                (0..len).map(|j| (j as u8) ^ i.wrapping_mul(37)).collect(),
            )
        })
        .collect();
    for (path, data) in &payloads {
        dfs.write_file(path, data).unwrap();
    }

    let report = dfs.crash_and_reopen().unwrap();
    assert!(report.dropped_pending.is_empty());
    assert_eq!(report.dropped_bytes, 0);
    for (path, data) in &payloads {
        assert_eq!(&dfs.read_to_vec(path).unwrap(), data, "{path} after reload");
    }
    assert!(dfs.fsck().unwrap().healthy());

    // A completely fresh namenode over the same blocks sees the same
    // namespace — the edit log, not any in-memory residue, is the truth.
    let cold = Dfs::with_block_store(store, cfg()).unwrap();
    for (path, data) in &payloads {
        assert_eq!(&cold.read_to_vec(path).unwrap(), data, "{path} cold open");
    }
}

/// Deletes, renames and replaces are journaled too — the namespace after
/// recovery reflects every acknowledged mutation, not just creates.
#[test]
fn namespace_mutations_survive_crash() {
    let store = Arc::new(MemBlockStore::new());
    let dfs = Dfs::with_block_store(store.clone(), cfg()).unwrap();
    dfs.write_file("/a", &[1u8; 50]).unwrap();
    dfs.write_file("/b", &[2u8; 50]).unwrap();
    dfs.write_file("/c", &[3u8; 50]).unwrap();
    dfs.rename("/a", "/a2").unwrap();
    dfs.delete("/b").unwrap();

    dfs.crash_and_reopen().unwrap();
    assert!(!dfs.exists("/a"));
    assert!(!dfs.exists("/b"));
    assert_eq!(dfs.read_to_vec("/a2").unwrap(), vec![1u8; 50]);
    assert_eq!(dfs.read_to_vec("/c").unwrap(), vec![3u8; 50]);
    assert_eq!(dfs.list("/"), vec!["/a2".to_string(), "/c".to_string()]);
    // The delete's blocks are really gone, not orphaned.
    assert_eq!(dfs.fsck().unwrap().orphan_blocks, 0);
}

/// The same guarantee with real file I/O: a process restart (new `Dfs`
/// over the same on-disk root) recovers the namespace from disk.
#[test]
fn on_disk_namespace_survives_process_restart() {
    let dir = std::env::temp_dir().join(format!("dt-durability-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let payload: Vec<u8> = (0..150u8).collect();
    {
        let dfs = Dfs::on_disk(&dir, cfg()).unwrap();
        dfs.write_file("/persisted", &payload).unwrap();
        dfs.write_file("/doomed", &[9u8; 40]).unwrap();
        dfs.delete("/doomed").unwrap();
    }
    let dfs = Dfs::on_disk(&dir, cfg()).unwrap();
    assert_eq!(dfs.read_to_vec("/persisted").unwrap(), payload);
    assert!(!dfs.exists("/doomed"));
    assert!(dfs.fsck().unwrap().healthy());
    std::fs::remove_dir_all(&dir).ok();
}

/// A writer that dies mid-file never becomes visible: recovery drops its
/// pending reservation and reports it, and its already-placed blocks are
/// collected as orphans by the next scrub.
#[test]
fn crashed_writer_is_dropped_and_its_blocks_collected() {
    let store = Arc::new(MemBlockStore::new());
    let dfs = Dfs::with_block_store(store.clone(), cfg()).unwrap();
    dfs.write_file("/committed", &[7u8; 64]).unwrap();

    let mut w = dfs.create("/half-written").unwrap();
    w.write_all(&[8u8; 80]).unwrap(); // 2 full blocks placed, tail buffered
    std::mem::forget(w); // the writer's process dies: no close, no abort

    let report = dfs.crash_and_reopen().unwrap();
    assert_eq!(report.dropped_pending, vec!["/half-written".to_string()]);
    assert!(!dfs.exists("/half-written"));
    assert_eq!(dfs.read_to_vec("/committed").unwrap(), vec![7u8; 64]);

    let fsck = dfs.fsck().unwrap();
    assert!(fsck.healthy());
    assert_eq!(fsck.orphan_blocks, 4, "2 blocks × 2 replicas left behind");
    let scrub = dfs.scrub().unwrap();
    assert_eq!(scrub.orphans_collected, 4);
    assert_eq!(dfs.fsck().unwrap().orphan_blocks, 0);
}

/// The quarantine registry is part of the durable metadata: replicas
/// quarantined before a crash are still queued for reclamation after it,
/// so a scrub pass resumes exactly where the dead namenode left off.
#[test]
fn quarantine_survives_crash_and_scrub_resumes() {
    let plan = Arc::new(FaultPlan::new(29).fail_at(2, FaultKind::CorruptWrite));
    let cfg = DfsConfig {
        chunk_size: 64,
        replication: 3,
        ..DfsConfig::default()
    };
    let dfs = Dfs::in_memory_faulty(cfg, plan.clone());
    let payload: Vec<u8> = (0..48u8).collect();
    dfs.write_file("/f", &payload).unwrap();
    plan.set_armed(false);
    // The read fails over past the rotted first replica and quarantines it.
    assert_eq!(dfs.read_to_vec("/f").unwrap(), payload);
    assert_eq!(dfs.quarantined_replicas(), 1);

    dfs.crash_and_reopen().unwrap();
    assert_eq!(
        dfs.quarantined_replicas(),
        1,
        "quarantine registry recovered from the edit log"
    );
    let scrub = dfs.scrub().unwrap();
    assert_eq!(scrub.quarantined_purged, 1);
    assert_eq!(scrub.replicas_recreated, 1);
    assert!(dfs.fsck().unwrap().healthy());
    assert_eq!(dfs.read_to_vec("/f").unwrap(), payload);
}

/// With an aggressive checkpoint interval, recovery reads state from the
/// checkpoint (the edit log is truncated at every checkpoint) — and the
/// result is indistinguishable from pure log replay.
#[test]
fn checkpointed_namespace_recovers_identically() {
    let store = Arc::new(MemBlockStore::new());
    let tight = DfsConfig {
        checkpoint_interval: 1,
        ..cfg()
    };
    let dfs = Dfs::with_block_store(store.clone(), tight).unwrap();
    for i in 0..6u8 {
        dfs.write_file(&format!("/f{i}"), &[i; 40]).unwrap();
    }
    dfs.rename("/f0", "/renamed").unwrap();
    dfs.delete("/f1").unwrap();

    let cold = Dfs::with_block_store(store, cfg()).unwrap();
    assert_eq!(
        cold.list("/"),
        vec!["/f2", "/f3", "/f4", "/f5", "/renamed"]
            .into_iter()
            .map(String::from)
            .collect::<Vec<_>>()
    );
    assert_eq!(cold.read_to_vec("/renamed").unwrap(), vec![0u8; 40]);
    assert!(cold.fsck().unwrap().healthy());
}

/// Crash-point matrix over the dfs tier alone: run a mutation workload
/// once to record its I/O trace, then re-run it crashing at **every**
/// operation index. After each crash the namenode recovers from the edit
/// log and three invariants must hold: acknowledged statements are fully
/// visible, the statement in flight is invisible or fully applied, and
/// fsck + scrub leave zero corruption and zero orphans.
#[test]
fn dfs_crash_matrix_exhaustive() {
    // The workload: statement i writes /w{i} (sizes vary), with a rename
    // and a delete mixed in. `oracle(n)` is the expected namespace after
    // the first n statements.
    type Stmt = (&'static str, u8);
    const STMTS: &[Stmt] = &[
        ("write:/w0", 100),
        ("write:/w1", 33),
        ("rename:/w0:/r0", 0),
        ("write:/w2", 64),
        ("delete:/w1", 0),
        ("write:/w3", 10),
    ];
    fn payload(tag: u8, len: u8) -> Vec<u8> {
        (0..len).map(|j| j ^ tag.wrapping_mul(41)).collect()
    }
    fn run_stmt(dfs: &Dfs, stmt: &Stmt) -> dt_common::Result<()> {
        let parts: Vec<&str> = stmt.0.split(':').collect();
        match parts[0] {
            "write" => dfs.write_file(parts[1], &payload(parts[1].as_bytes()[2], stmt.1)),
            "rename" => dfs.rename(parts[1], parts[2]),
            "delete" => dfs.delete(parts[1]),
            _ => unreachable!(),
        }
    }
    /// Expected namespace (path → bytes) after the first `n` statements.
    fn oracle(n: usize) -> Vec<(String, Vec<u8>)> {
        let mut files: Vec<(String, Vec<u8>)> = Vec::new();
        for stmt in &STMTS[..n] {
            let parts: Vec<&str> = stmt.0.split(':').collect();
            match parts[0] {
                "write" => files.push((
                    parts[1].to_string(),
                    payload(parts[1].as_bytes()[2], stmt.1),
                )),
                "rename" => {
                    let i = files.iter().position(|(p, _)| p == parts[1]).unwrap();
                    files[i].0 = parts[2].to_string();
                }
                "delete" => files.retain(|(p, _)| p != parts[1]),
                _ => unreachable!(),
            }
        }
        files.sort();
        files
    }

    // Record run: count the workload's I/O ops and their classes.
    let plan = Arc::new(FaultPlan::new(1));
    plan.record_trace();
    let dfs = Dfs::in_memory_faulty(cfg(), plan.clone());
    for stmt in STMTS {
        run_stmt(&dfs, stmt).unwrap();
    }
    let trace = plan.take_trace();
    let total_ops = trace.len() as u64;
    assert!(total_ops >= 20, "workload too small to be interesting");

    // Exhaustive: every op index is a crash point.
    let points = select_crash_points(0xD0A1, total_ops, total_ops as usize, &[]);
    assert_eq!(points.len() as usize, total_ops as usize);
    let report = run_crash_matrix(&points, |k| {
        // Torn writes exercise the salvage path, but only fire on writes;
        // a plain crash fires on any class, keeping the index exact.
        let kind = if trace[(k - 1) as usize] == IoOp::Write && k % 2 == 0 {
            FaultKind::TornWrite
        } else {
            FaultKind::Crash
        };
        let store = Arc::new(MemBlockStore::new());
        let plan = Arc::new(FaultPlan::new(0xC0FFEE ^ k).fail_at(k, kind));
        let faulty = Arc::new(FaultyBlockStore::new(store.clone(), plan.clone()));
        let dfs = Dfs::with_block_store(faulty, cfg())
            .map_err(|e| format!("fresh open must not fault: {e}"))?;
        let mut acked = 0usize;
        let mut crashed = false;
        for stmt in STMTS {
            match run_stmt(&dfs, stmt) {
                Ok(()) => acked += 1,
                Err(_) => {
                    crashed = true;
                    break;
                }
            }
        }
        if !crashed && !plan.is_crashed() {
            return Ok(false); // workload outlived this crash point
        }
        plan.heal_and_disarm();
        dfs.crash_and_reopen()
            .map_err(|e| format!("recovery failed: {e}"))?;

        // Invariant 1+2: recovered namespace is the oracle at `acked`, or
        // at `acked + 1` if the in-flight statement's commit hit the log
        // before the crash surfaced — never anything in between.
        let recovered: Vec<(String, Vec<u8>)> = {
            let mut v: Vec<(String, Vec<u8>)> = dfs
                .list("/")
                .into_iter()
                .map(|p| {
                    let data = dfs.read_to_vec(&p).map_err(|e| format!("read {p}: {e}"))?;
                    Ok((p, data))
                })
                .collect::<Result<_, String>>()?;
            v.sort();
            v
        };
        if recovered != oracle(acked) && recovered != oracle(acked + 1) {
            return Err(format!(
                "recovered namespace matches neither oracle({acked}) nor oracle({})",
                acked + 1
            ));
        }
        // Invariant 3: no corruption, no under-replication; orphans are
        // collected, not leaked.
        let fsck = dfs.fsck().map_err(|e| format!("fsck: {e}"))?;
        if !fsck.healthy() {
            return Err(format!("fsck unhealthy after recovery: {fsck:?}"));
        }
        dfs.scrub().map_err(|e| format!("scrub: {e}"))?;
        let after = dfs.fsck().map_err(|e| format!("post-scrub fsck: {e}"))?;
        if after.orphan_blocks != 0 {
            return Err(format!("{} orphans survived scrub", after.orphan_blocks));
        }
        Ok(true)
    });
    assert!(
        report.ok(),
        "dfs crash matrix violations: {:#?}",
        report.violations
    );
    assert!(
        report.crashes_injected as u64 >= total_ops - 1,
        "almost every point must actually crash ({} of {total_ops})",
        report.crashes_injected
    );
}
