//! Property tests: DFS behaves like a map from path → bytes, for any
//! chunking, with positioned reads agreeing with slicing.

use dt_dfs::{Dfs, DfsConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_read_identity(
        data in proptest::collection::vec(any::<u8>(), 0..2048),
        chunk in 1usize..257,
    ) {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(chunk));
        dfs.write_file("/p", &data).unwrap();
        prop_assert_eq!(dfs.read_to_vec("/p").unwrap(), data);
    }

    #[test]
    fn read_at_equals_slice(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        chunk in 1usize..129,
        a in any::<prop::sample::Index>(),
        b in any::<prop::sample::Index>(),
    ) {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(chunk));
        dfs.write_file("/p", &data).unwrap();
        let (mut lo, mut hi) = (a.index(data.len()), b.index(data.len()));
        if lo > hi { std::mem::swap(&mut lo, &mut hi); }
        let mut buf = vec![0u8; hi - lo];
        let mut r = dfs.open("/p").unwrap();
        r.read_at(lo as u64, &mut buf).unwrap();
        prop_assert_eq!(&buf[..], &data[lo..hi]);
    }

    #[test]
    fn multi_write_stream_is_concatenation(
        parts in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 0..8),
        chunk in 1usize..65,
    ) {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(chunk));
        let mut w = dfs.create("/p").unwrap();
        let mut expect = Vec::new();
        for part in &parts {
            w.write_all(part).unwrap();
            expect.extend_from_slice(part);
        }
        prop_assert_eq!(w.position(), expect.len() as u64);
        w.close().unwrap();
        prop_assert_eq!(dfs.read_to_vec("/p").unwrap(), expect);
    }
}
