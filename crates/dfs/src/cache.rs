//! Shared block cache for the DFS read path (DESIGN.md §10).
//!
//! Readers serve positioned reads out of checksum-verified whole-block
//! copies; this cache shares those verified copies across every reader of a
//! [`crate::Dfs`] handle, the way LLAP's daemon cache shares ORC data across
//! query fragments. Entries are keyed by `(path, block group index)` — the
//! namespace path is this simulator's inode — and only CRC-verified bytes
//! are ever admitted, so a hit is exactly as trustworthy as a fresh
//! replica read.
//!
//! Coherence relies on two properties of the namespace:
//!
//! * files are write-once, so a path's bytes can only change by the path
//!   being removed first (delete, rename, or a repair rewriting the block
//!   list) — each of those call sites invalidates the path; and
//! * a namenode restart can roll the namespace back past a commit (torn
//!   edit-log tail), after which a path may be *recreated* with different
//!   bytes — so [`crate::Dfs::crash_and_reopen`] purges the cache outright
//!   before recovery.

use std::sync::{Arc, Mutex};

use dt_common::LruCache;

/// `(path, block-group index)` cache key.
type BlockKey = (String, usize);

/// Process-wide cache of CRC-verified blocks for one DFS instance.
#[derive(Debug)]
pub(crate) struct BlockCache {
    lru: Mutex<LruCache<BlockKey, Arc<Vec<u8>>>>,
}

impl BlockCache {
    /// A cache bounded to `capacity` bytes of block data (0 disables it).
    pub(crate) fn new(capacity: u64) -> Self {
        BlockCache {
            lru: Mutex::new(LruCache::new(capacity)),
        }
    }

    /// The verified block at `(path, group_index)`, if resident.
    pub(crate) fn get(&self, path: &str, group_index: usize) -> Option<Arc<Vec<u8>>> {
        let mut lru = self.lru.lock().unwrap();
        lru.get(&(path.to_string(), group_index)).cloned()
    }

    /// Admits a verified block, returning how many entries were evicted.
    pub(crate) fn insert(&self, path: &str, group_index: usize, block: Arc<Vec<u8>>) -> u64 {
        let weight = block.len() as u64;
        let mut lru = self.lru.lock().unwrap();
        lru.insert((path.to_string(), group_index), block, weight)
    }

    /// Drops every cached block of `path` (delete / rename / repair).
    pub(crate) fn invalidate_path(&self, path: &str) {
        self.lru.lock().unwrap().retain(|k| k.0 != path);
    }

    /// Drops everything (namenode restart — the namespace may have rolled
    /// back, so no path→bytes association can be trusted).
    pub(crate) fn clear(&self) {
        self.lru.lock().unwrap().clear();
    }

    /// Resident bytes.
    pub(crate) fn resident_bytes(&self) -> u64 {
        self.lru.lock().unwrap().used()
    }

    /// Resident entries.
    pub(crate) fn entries(&self) -> usize {
        self.lru.lock().unwrap().len()
    }
}
