//! Positioned and streaming reads over a closed DFS file.

use std::io::{self, Read, Seek, SeekFrom};
use std::sync::Arc;

use dt_common::{Error, Result};

use crate::namenode::FileMeta;
use crate::DfsInner;

/// Reader over one closed (immutable) file.
///
/// Supports random positioned reads ([`DfsReader::read_at`]) and implements
/// [`std::io::Read`] + [`std::io::Seek`] for streaming consumers.
pub struct DfsReader {
    inner: Arc<DfsInner>,
    meta: FileMeta,
    pos: u64,
}

impl DfsReader {
    pub(crate) fn new(inner: Arc<DfsInner>, meta: FileMeta) -> Self {
        DfsReader {
            inner,
            meta,
            pos: 0,
        }
    }

    /// File length in bytes.
    pub fn len(&self) -> u64 {
        self.meta.len
    }

    /// `true` iff the file is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.len == 0
    }

    /// Fills `buf` from the absolute file offset `offset`. Fails if the
    /// range extends past end-of-file.
    pub fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let end = offset
            .checked_add(buf.len() as u64)
            .ok_or_else(|| Error::invalid("read range overflow"))?;
        if end > self.meta.len {
            return Err(Error::invalid(format!(
                "read [{offset}, {end}) beyond file of {} bytes",
                self.meta.len
            )));
        }
        if buf.is_empty() {
            return Ok(());
        }
        self.inner.stats().record_read(buf.len() as u64);

        // Walk the block list to the first block containing `offset`.
        let mut block_start = 0u64;
        let mut filled = 0usize;
        for group in &self.meta.blocks {
            let block_end = block_start + group.len;
            if end <= block_start {
                break;
            }
            if offset < block_end {
                let from = offset.max(block_start);
                let to = end.min(block_end);
                let within = from - block_start;
                let n = (to - from) as usize;
                self.read_group(group, within, &mut buf[filled..filled + n])?;
                filled += n;
            }
            block_start = block_end;
        }
        debug_assert_eq!(filled, buf.len());
        Ok(())
    }

    /// Reads from the first replica that answers, falling back across the
    /// group like an HDFS client switching datanodes. Only when every
    /// replica fails does the read fail.
    fn read_group(&self, group: &crate::namenode::BlockGroup, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut last_err = None;
        for replica in &group.replicas {
            match self.inner.blocks().read_at(*replica, offset, buf) {
                Ok(()) => return Ok(()),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err
            .unwrap_or_else(|| Error::internal("block group with zero replicas")))
    }

    /// Reads the final `n` bytes of the file (ORC footers live at the tail).
    pub fn read_tail(&mut self, n: usize) -> Result<Vec<u8>> {
        let n = n.min(self.meta.len as usize);
        let mut buf = vec![0u8; n];
        let start = self.meta.len - n as u64;
        self.read_at(start, &mut buf)?;
        Ok(buf)
    }
}

impl Read for DfsReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.meta.len.saturating_sub(self.pos);
        let n = (buf.len() as u64).min(remaining) as usize;
        if n == 0 {
            return Ok(0);
        }
        self.read_at(self.pos, &mut buf[..n])
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.pos += n as u64;
        Ok(n)
    }
}

impl Seek for DfsReader {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let new = match pos {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::End(o) => self.meta.len as i128 + o as i128,
            SeekFrom::Current(o) => self.pos as i128 + o as i128,
        };
        if new < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seek before start",
            ));
        }
        self.pos = new as u64;
        Ok(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Dfs, DfsConfig};
    use std::io::{Read, Seek, SeekFrom};

    fn setup() -> Dfs {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(7));
        let data: Vec<u8> = (0..=255u8).collect();
        dfs.write_file("/f", &data).unwrap();
        dfs
    }

    #[test]
    fn read_at_spans_block_boundaries() {
        let dfs = setup();
        let mut r = dfs.open("/f").unwrap();
        let mut buf = vec![0u8; 20];
        r.read_at(5, &mut buf).unwrap();
        let expect: Vec<u8> = (5..25u8).collect();
        assert_eq!(buf, expect);
    }

    #[test]
    fn streaming_read_matches_content() {
        let dfs = setup();
        let mut r = dfs.open("/f").unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        let expect: Vec<u8> = (0..=255u8).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn seek_and_partial_read() {
        let dfs = setup();
        let mut r = dfs.open("/f").unwrap();
        r.seek(SeekFrom::End(-4)).unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, vec![252, 253, 254, 255]);
    }

    #[test]
    fn read_tail_clamps() {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(4));
        dfs.write_file("/short", b"abc").unwrap();
        let mut r = dfs.open("/short").unwrap();
        assert_eq!(r.read_tail(10).unwrap(), b"abc");
        assert_eq!(r.read_tail(2).unwrap(), b"bc");
    }

    #[test]
    fn out_of_range_read_errors() {
        let dfs = setup();
        let mut r = dfs.open("/f").unwrap();
        let mut buf = vec![0u8; 2];
        assert!(r.read_at(255, &mut buf).is_err());
    }

    #[test]
    fn read_stats_account_bytes() {
        let dfs = setup();
        let before = dfs.stats().snapshot();
        let mut r = dfs.open("/f").unwrap();
        let mut buf = vec![0u8; 64];
        r.read_at(0, &mut buf).unwrap();
        let delta = dfs.stats().snapshot().since(&before);
        assert_eq!(delta.bytes_read, 64);
    }
}
