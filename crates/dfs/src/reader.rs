//! Positioned and streaming reads over a closed DFS file.

use std::io::{self, Read, Seek, SeekFrom};
use std::sync::Arc;

use dt_common::{Error, Result};

use crate::namenode::FileMeta;
use crate::DfsInner;

/// Reader over one closed (immutable) file.
///
/// Supports random positioned reads ([`DfsReader::read_at`]) and implements
/// [`std::io::Read`] + [`std::io::Seek`] for streaming consumers.
///
/// Every read is served from a checksum-verified copy of the whole block:
/// the reader fetches a replica in full, verifies it against the block
/// group's CRC-32, and fails over to the next replica on mismatch or I/O
/// error (quarantining the bad copy in the namenode). Verified blocks are
/// published to the DFS-wide shared block cache (DESIGN.md §10), and the
/// last one is also pinned locally so sequential consumers skip even the
/// cache lookup, like an HDFS client checksumming a packet stream.
pub struct DfsReader {
    inner: Arc<DfsInner>,
    path: String,
    meta: FileMeta,
    pos: u64,
    /// `(block group index, verified bytes)` of the last block served.
    verified: Option<(usize, Arc<Vec<u8>>)>,
}

impl DfsReader {
    pub(crate) fn new(inner: Arc<DfsInner>, path: String, meta: FileMeta) -> Self {
        DfsReader {
            inner,
            path,
            meta,
            pos: 0,
            verified: None,
        }
    }

    /// File length in bytes.
    pub fn len(&self) -> u64 {
        self.meta.len
    }

    /// `true` iff the file is empty.
    pub fn is_empty(&self) -> bool {
        self.meta.len == 0
    }

    /// Fills `buf` from the absolute file offset `offset`. Fails if the
    /// range extends past end-of-file.
    pub fn read_at(&mut self, offset: u64, buf: &mut [u8]) -> Result<()> {
        let end = offset
            .checked_add(buf.len() as u64)
            .ok_or_else(|| Error::invalid("read range overflow"))?;
        if end > self.meta.len {
            return Err(Error::invalid(format!(
                "read [{offset}, {end}) beyond file of {} bytes",
                self.meta.len
            )));
        }
        if buf.is_empty() {
            return Ok(());
        }
        self.inner.stats().record_read(buf.len() as u64);

        // Walk the block list to the first block containing `offset`.
        let mut block_start = 0u64;
        let mut filled = 0usize;
        for gi in 0..self.meta.blocks.len() {
            let block_end = block_start + self.meta.blocks[gi].len;
            if end <= block_start {
                break;
            }
            if offset < block_end {
                let from = offset.max(block_start);
                let to = end.min(block_end);
                let within = (from - block_start) as usize;
                let n = (to - from) as usize;
                self.read_group(gi, within, &mut buf[filled..filled + n])?;
                filled += n;
            }
            block_start = block_end;
        }
        debug_assert_eq!(filled, buf.len());
        Ok(())
    }

    /// Serves `buf` from offset `within` of block group `gi`, out of a
    /// checksum-verified block copy.
    ///
    /// Replicas are tried in placement order, like an HDFS client walking
    /// the datanode list. Per replica: transient failures are retried
    /// under the configured [`RetryPolicy`](dt_common::RetryPolicy)
    /// (a healthy copy behind a brief outage should not be condemned);
    /// a permanent failure or CRC mismatch quarantines the replica in the
    /// namenode and fails the read over to the next one. Only when every
    /// replica is exhausted does the read fail.
    fn read_group(&mut self, gi: usize, within: usize, buf: &mut [u8]) -> Result<()> {
        if let Some((cached_gi, block)) = &self.verified {
            if *cached_gi == gi {
                buf.copy_from_slice(&block[within..within + buf.len()]);
                return Ok(());
            }
        }
        if let Some(block) = self.inner.cache().get(&self.path, gi) {
            self.inner.stats().record_cache_hit();
            self.inner.health().record_cache_hit();
            buf.copy_from_slice(&block[within..within + buf.len()]);
            self.verified = Some((gi, block));
            return Ok(());
        }
        let group = self.meta.blocks[gi].clone();
        let inner = self.inner.clone();
        let policy = inner.config().retry;
        let mut last_err = None;
        for (attempt, replica) in group.replicas.iter().enumerate() {
            if attempt > 0 {
                inner.health().record_failover();
            }
            let fetched = policy.run(inner.health(), || {
                let mut block = vec![0u8; group.len as usize];
                inner.blocks().read_at(*replica, 0, &mut block)?;
                Ok(block)
            });
            match fetched {
                Ok(block) if dt_common::crc32::crc32(&block) == group.crc => {
                    buf.copy_from_slice(&block[within..within + buf.len()]);
                    let block = Arc::new(block);
                    inner.stats().record_cache_miss();
                    inner.health().record_cache_miss();
                    let evicted = inner.cache().insert(&self.path, gi, block.clone());
                    if evicted > 0 {
                        inner.stats().record_cache_evictions(evicted);
                        inner.health().record_cache_evictions(evicted);
                    }
                    self.verified = Some((gi, block));
                    return Ok(());
                }
                Ok(_) => {
                    self.quarantine(gi, *replica);
                    last_err = Some(Error::corrupt(format!(
                        "replica {replica:?} of block {gi} of '{}' failed checksum",
                        self.path
                    )));
                }
                Err(e) => {
                    self.quarantine(gi, *replica);
                    last_err = Some(e);
                }
            }
        }
        Err(last_err.unwrap_or_else(|| Error::internal("block group with zero replicas")))
    }

    /// Reports a bad replica to the namenode and drops it from this
    /// reader's own snapshot so later reads skip it immediately.
    fn quarantine(&mut self, gi: usize, replica: crate::block_store::BlockId) {
        if self.inner.quarantine_replica(&self.path, gi, replica) {
            self.inner.health().record_quarantine();
        }
        let replicas = &mut self.meta.blocks[gi].replicas;
        if replicas.len() > 1 {
            replicas.retain(|r| *r != replica);
        }
    }

    /// Reads the final `n` bytes of the file (ORC footers live at the tail).
    pub fn read_tail(&mut self, n: usize) -> Result<Vec<u8>> {
        let n = n.min(self.meta.len as usize);
        let mut buf = vec![0u8; n];
        let start = self.meta.len - n as u64;
        self.read_at(start, &mut buf)?;
        Ok(buf)
    }
}

impl Read for DfsReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.meta.len.saturating_sub(self.pos);
        let n = (buf.len() as u64).min(remaining) as usize;
        if n == 0 {
            return Ok(0);
        }
        self.read_at(self.pos, &mut buf[..n])
            .map_err(|e| io::Error::other(e.to_string()))?;
        self.pos += n as u64;
        Ok(n)
    }
}

impl Seek for DfsReader {
    fn seek(&mut self, pos: SeekFrom) -> io::Result<u64> {
        let new = match pos {
            SeekFrom::Start(o) => o as i128,
            SeekFrom::End(o) => self.meta.len as i128 + o as i128,
            SeekFrom::Current(o) => self.pos as i128 + o as i128,
        };
        if new < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "seek before start",
            ));
        }
        self.pos = new as u64;
        Ok(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use crate::{Dfs, DfsConfig};
    use std::io::{Read, Seek, SeekFrom};

    fn setup() -> Dfs {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(7));
        let data: Vec<u8> = (0..=255u8).collect();
        dfs.write_file("/f", &data).unwrap();
        dfs
    }

    #[test]
    fn read_at_spans_block_boundaries() {
        let dfs = setup();
        let mut r = dfs.open("/f").unwrap();
        let mut buf = vec![0u8; 20];
        r.read_at(5, &mut buf).unwrap();
        let expect: Vec<u8> = (5..25u8).collect();
        assert_eq!(buf, expect);
    }

    #[test]
    fn streaming_read_matches_content() {
        let dfs = setup();
        let mut r = dfs.open("/f").unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        let expect: Vec<u8> = (0..=255u8).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn seek_and_partial_read() {
        let dfs = setup();
        let mut r = dfs.open("/f").unwrap();
        r.seek(SeekFrom::End(-4)).unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, vec![252, 253, 254, 255]);
    }

    #[test]
    fn read_tail_clamps() {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(4));
        dfs.write_file("/short", b"abc").unwrap();
        let mut r = dfs.open("/short").unwrap();
        assert_eq!(r.read_tail(10).unwrap(), b"abc");
        assert_eq!(r.read_tail(2).unwrap(), b"bc");
    }

    #[test]
    fn out_of_range_read_errors() {
        let dfs = setup();
        let mut r = dfs.open("/f").unwrap();
        let mut buf = vec![0u8; 2];
        assert!(r.read_at(255, &mut buf).is_err());
    }

    #[test]
    fn shared_cache_serves_second_reader_without_refetch() {
        let dfs = setup();
        let mut buf = vec![0u8; 256];
        dfs.open("/f").unwrap().read_at(0, &mut buf).unwrap();
        let warm = dfs.stats().snapshot();
        assert!(warm.cache_misses > 0);
        assert!(dfs.block_cache_entries() > 0);
        // A brand-new reader over the same file hits only the cache.
        let mut again = vec![0u8; 256];
        dfs.open("/f").unwrap().read_at(0, &mut again).unwrap();
        let delta = dfs.stats().snapshot().since(&warm);
        assert_eq!(delta.cache_misses, 0, "warm read paid a physical fetch");
        assert!(delta.cache_hits > 0);
        assert_eq!(again, buf);
    }

    #[test]
    fn delete_invalidates_cached_blocks() {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(8));
        dfs.write_file("/p", b"old-bytes").unwrap();
        assert_eq!(dfs.read_to_vec("/p").unwrap(), b"old-bytes");
        assert!(dfs.block_cache_entries() > 0);
        dfs.delete("/p").unwrap();
        assert_eq!(dfs.block_cache_entries(), 0);
        dfs.write_file("/p", b"new-bytes").unwrap();
        assert_eq!(dfs.read_to_vec("/p").unwrap(), b"new-bytes");
    }

    #[test]
    fn rename_invalidates_source_path() {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(8));
        dfs.write_file("/from", b"payload-a").unwrap();
        dfs.read_to_vec("/from").unwrap();
        dfs.rename("/from", "/to").unwrap();
        assert_eq!(dfs.block_cache_entries(), 0);
        // The freed path can carry fresh bytes without serving stale ones.
        dfs.write_file("/from", b"payload-b").unwrap();
        assert_eq!(dfs.read_to_vec("/from").unwrap(), b"payload-b");
        assert_eq!(dfs.read_to_vec("/to").unwrap(), b"payload-a");
    }

    #[test]
    fn crash_and_reopen_purges_cache() {
        let dfs = setup();
        dfs.read_to_vec("/f").unwrap();
        assert!(dfs.block_cache_resident_bytes() > 0);
        dfs.crash_and_reopen().unwrap();
        assert_eq!(dfs.block_cache_resident_bytes(), 0);
        assert_eq!(dfs.block_cache_entries(), 0);
        let expect: Vec<u8> = (0..=255u8).collect();
        assert_eq!(dfs.read_to_vec("/f").unwrap(), expect);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(7).without_block_cache());
        dfs.write_file("/g", &[7u8; 64]).unwrap();
        dfs.read_to_vec("/g").unwrap();
        dfs.read_to_vec("/g").unwrap();
        let snap = dfs.stats().snapshot();
        assert_eq!(snap.cache_hits, 0);
        assert!(snap.cache_misses > 0);
        assert_eq!(dfs.block_cache_entries(), 0);
    }

    #[test]
    fn cache_evictions_are_counted_and_bounded() {
        let mut cfg = DfsConfig::small_chunks(8);
        cfg.block_cache_bytes = 16; // room for two 8-byte blocks
        let dfs = Dfs::in_memory(cfg);
        dfs.write_file("/big", &[1u8; 64]).unwrap(); // 8 blocks
        dfs.read_to_vec("/big").unwrap();
        let snap = dfs.stats().snapshot();
        assert!(snap.cache_evictions > 0);
        assert!(dfs.block_cache_resident_bytes() <= 16);
    }

    #[test]
    fn read_stats_account_bytes() {
        let dfs = setup();
        let before = dfs.stats().snapshot();
        let mut r = dfs.open("/f").unwrap();
        let mut buf = vec![0u8; 64];
        r.read_at(0, &mut buf).unwrap();
        let delta = dfs.stats().snapshot().since(&before);
        assert_eq!(delta.bytes_read, 64);
    }
}
