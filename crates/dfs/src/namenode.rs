//! Namespace metadata: path → file → block list.
//!
//! Mirrors the HDFS namenode's role: a single metadata authority tracking
//! which blocks make up each file and whether the file has been sealed.
//! Every mutation is journaled write-ahead to the [`Journal`] (edit log +
//! checkpoint, DESIGN.md §9) *before* it is applied in memory, under the
//! same state lock, so the durable log order equals the apply order and a
//! crash at any instant loses at most the un-acked mutation.

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

use dt_common::{Error, HealthCounters, Result, RetryPolicy};
use parking_lot::RwLock;

use crate::block_store::{BlockId, BlockStore};
use crate::journal::{EditRecord, Journal};

/// One logical block of a file: every replica holds the same `len` bytes
/// with checksum `crc`. The checksum enables `fsck`-style integrity
/// audits and lets repair tell healthy replicas from rotted ones.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct BlockGroup {
    /// Physical replicas, in placement order. Readers try them in order.
    pub replicas: Vec<BlockId>,
    pub len: u64,
    pub crc: u32,
}

/// Metadata of one file: ordered block groups plus total length.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct FileMeta {
    pub blocks: Vec<BlockGroup>,
    pub len: u64,
}

pub(crate) enum Entry {
    /// `create()` has been called; the writer has not committed yet.
    Pending,
    /// Sealed, immutable file.
    Closed(FileMeta),
}

/// The namenode's in-memory namespace — exactly what a checkpoint
/// snapshots and edit-log replay reconstructs.
#[derive(Default)]
pub(crate) struct NnState {
    pub files: BTreeMap<String, Entry>,
    /// Replicas readers have reported bad (CRC mismatch or I/O failure).
    /// Already removed from their block groups, they wait here for a
    /// scrub pass to reclaim the storage — the quarantine lifecycle of
    /// DESIGN.md §8. Persisted through the journal so a crashed namenode
    /// does not forget pending repairs.
    pub quarantined: Vec<BlockId>,
}

impl NnState {
    /// Applies one edit record. Replay tolerance: records were validated
    /// against the state they were journaled under, so blind application
    /// is correct; stale shapes (e.g. a quarantine for a since-removed
    /// path) degrade to no-ops rather than errors.
    pub fn apply(&mut self, record: &EditRecord) {
        match record {
            EditRecord::BeginCreate { path } => {
                self.files.insert(path.clone(), Entry::Pending);
            }
            EditRecord::Commit { path, meta } => {
                self.files.insert(path.clone(), Entry::Closed(meta.clone()));
            }
            EditRecord::Abort { path } => {
                if let Some(Entry::Pending) = self.files.get(path) {
                    self.files.remove(path);
                }
            }
            EditRecord::Remove { path } => {
                self.files.remove(path);
            }
            EditRecord::Rename { from, to } => {
                if let Some(entry) = self.files.remove(from) {
                    self.files.insert(to.clone(), entry);
                }
            }
            EditRecord::Replace { path, meta } => {
                self.files.insert(path.clone(), Entry::Closed(meta.clone()));
            }
            EditRecord::Quarantine {
                path,
                group,
                replica,
            } => {
                if let Some(Entry::Closed(meta)) = self.files.get_mut(path) {
                    if let Some(g) = meta.blocks.get_mut(*group) {
                        if g.replicas.len() > 1 && g.replicas.contains(replica) {
                            g.replicas.retain(|r| r != replica);
                            self.quarantined.push(*replica);
                        }
                    }
                }
            }
            EditRecord::DrainQuarantine => self.quarantined.clear(),
        }
    }
}

/// The namespace table, durably journaled.
pub(crate) struct NameNode {
    state: RwLock<NnState>,
    journal: Journal,
}

impl NameNode {
    /// Opens the namespace over `blocks`, replaying any persisted
    /// checkpoint and edit log. A store with no journal streams yields an
    /// empty namespace (and performs no fault-surface I/O getting there).
    pub fn recover(
        blocks: Arc<dyn BlockStore>,
        retry: RetryPolicy,
        health: Arc<HealthCounters>,
        checkpoint_interval: u64,
    ) -> Result<Self> {
        let (journal, recovered) = Journal::recover(blocks, retry, health, checkpoint_interval)?;
        Ok(NameNode {
            state: RwLock::new(recovered.state),
            journal,
        })
    }

    /// Discards the in-memory namespace and rebuilds it from the durable
    /// journal — the "namenode restart" used by crash tests.
    pub fn reload(&self) -> Result<crate::RecoveryReport> {
        let mut state = self.state.write();
        let recovered = self.journal.load()?;
        *state = recovered.state;
        Ok(recovered.report)
    }

    /// Journals `record` and applies it to `state` — the write-ahead
    /// step every mutation funnels through. On journal failure nothing
    /// is applied and the mutation reports the error; a torn append is
    /// salvaged away at the next recovery, so an un-acked mutation can
    /// never resurface.
    fn journal_and_apply(&self, state: &mut NnState, record: EditRecord) -> Result<()> {
        self.journal.append(&record)?;
        state.apply(&record);
        if self.journal.should_checkpoint() {
            // Best-effort: the mutation is already durable in the edit
            // log; a failed checkpoint just postpones log truncation.
            let _ = self.journal.checkpoint(state);
        }
        Ok(())
    }

    /// Reserves `path` for a writer.
    pub fn begin_create(&self, path: &str) -> Result<()> {
        let mut state = self.state.write();
        if state.files.contains_key(path) {
            return Err(Error::AlreadyExists(format!("DFS path '{path}'")));
        }
        self.journal_and_apply(
            &mut state,
            EditRecord::BeginCreate {
                path: path.to_string(),
            },
        )
    }

    /// Seals a pending file with its final block list.
    pub fn commit(&self, path: &str, meta: FileMeta) -> Result<()> {
        let mut state = self.state.write();
        match state.files.get(path) {
            Some(Entry::Pending) => self.journal_and_apply(
                &mut state,
                EditRecord::Commit {
                    path: path.to_string(),
                    meta,
                },
            ),
            Some(Entry::Closed(_)) => Err(Error::internal(format!(
                "commit of already-closed file '{path}'"
            ))),
            None => Err(Error::not_found(format!("pending file '{path}'"))),
        }
    }

    /// Drops a pending reservation (writer aborted). Journaling is
    /// best-effort here: recovery drops uncommitted pendings anyway, so a
    /// failed Abort append cannot resurrect the file.
    pub fn abort(&self, path: &str) {
        let mut state = self.state.write();
        if let Some(Entry::Pending) = state.files.get(path) {
            let record = EditRecord::Abort {
                path: path.to_string(),
            };
            let _ = self.journal.append(&record);
            state.apply(&record);
        }
    }

    /// Returns the metadata of a closed file.
    pub fn get_closed(&self, path: &str) -> Result<FileMeta> {
        match self.state.read().files.get(path) {
            Some(Entry::Closed(meta)) => Ok(meta.clone()),
            Some(Entry::Pending) => {
                Err(Error::Busy(format!("file '{path}' is still being written")))
            }
            None => Err(Error::not_found(format!("DFS file '{path}'"))),
        }
    }

    /// Removes a closed file, returning its metadata so blocks can be freed.
    pub fn remove(&self, path: &str) -> Result<FileMeta> {
        let mut state = self.state.write();
        match state.files.get(path) {
            Some(Entry::Closed(meta)) => {
                let meta = meta.clone();
                self.journal_and_apply(
                    &mut state,
                    EditRecord::Remove {
                        path: path.to_string(),
                    },
                )?;
                Ok(meta)
            }
            Some(Entry::Pending) => Err(Error::Busy(format!(
                "cannot delete '{path}' while it is being written"
            ))),
            None => Err(Error::not_found(format!("DFS file '{path}'"))),
        }
    }

    /// Renames a closed file; destination must be free.
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut state = self.state.write();
        if state.files.contains_key(to) {
            return Err(Error::AlreadyExists(format!("DFS path '{to}'")));
        }
        match state.files.get(from) {
            Some(Entry::Closed(_)) => self.journal_and_apply(
                &mut state,
                EditRecord::Rename {
                    from: from.to_string(),
                    to: to.to_string(),
                },
            ),
            Some(Entry::Pending) => Err(Error::Busy(format!(
                "cannot rename '{from}' while it is being written"
            ))),
            None => Err(Error::not_found(format!("DFS file '{from}'"))),
        }
    }

    /// Replaces the metadata of a closed file (post-repair block lists).
    pub fn replace(&self, path: &str, meta: FileMeta) -> Result<()> {
        let mut state = self.state.write();
        match state.files.get(path) {
            Some(Entry::Closed(_)) => self.journal_and_apply(
                &mut state,
                EditRecord::Replace {
                    path: path.to_string(),
                    meta,
                },
            ),
            Some(Entry::Pending) => Err(Error::Busy(format!(
                "cannot replace metadata of '{path}' while it is being written"
            ))),
            None => Err(Error::not_found(format!("DFS file '{path}'"))),
        }
    }

    /// Takes `replica` out of the serving set of block group
    /// `group_index` of `path` and records it as quarantined. Returns
    /// `true` iff this call removed it (a concurrent reader may have won
    /// the race, or the journal append may have failed — quarantine is
    /// best-effort; the replica stays serving and `fsck` still flags it).
    /// The *last* replica of a group is never removed — a suspect copy
    /// beats no copy.
    pub fn quarantine_replica(&self, path: &str, group_index: usize, replica: BlockId) -> bool {
        let mut state = self.state.write();
        let Some(Entry::Closed(meta)) = state.files.get(path) else {
            return false;
        };
        let Some(group) = meta.blocks.get(group_index) else {
            return false;
        };
        if group.replicas.len() <= 1 || !group.replicas.contains(&replica) {
            return false;
        }
        self.journal_and_apply(
            &mut state,
            EditRecord::Quarantine {
                path: path.to_string(),
                group: group_index,
                replica,
            },
        )
        .is_ok()
    }

    /// Number of replicas currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.state.read().quarantined.len()
    }

    /// Drains the quarantine list so a scrub pass can reclaim the blocks.
    /// The drain itself is journaled first, so a crash after the blocks
    /// are deleted cannot resurrect stale quarantine entries.
    pub fn take_quarantined(&self) -> Result<Vec<BlockId>> {
        let mut state = self.state.write();
        if state.quarantined.is_empty() {
            return Ok(Vec::new());
        }
        let drained = state.quarantined.clone();
        self.journal_and_apply(&mut state, EditRecord::DrainQuarantine)?;
        Ok(drained)
    }

    /// Number of in-flight (pending) writers.
    pub fn pending_count(&self) -> usize {
        self.state
            .read()
            .files
            .values()
            .filter(|e| matches!(e, Entry::Pending))
            .count()
    }

    /// Every block id referenced by a closed file or the quarantine
    /// registry — the live set for orphan-block accounting.
    pub fn referenced_blocks(&self) -> HashSet<BlockId> {
        let state = self.state.read();
        let mut refs: HashSet<BlockId> = state.quarantined.iter().copied().collect();
        for entry in state.files.values() {
            if let Entry::Closed(meta) = entry {
                for group in &meta.blocks {
                    refs.extend(group.replicas.iter().copied());
                }
            }
        }
        refs
    }

    /// Sorted list of closed paths with the given prefix.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.state
            .read()
            .files
            .range(prefix.to_string()..)
            .take_while(|(path, _)| path.starts_with(prefix))
            .filter(|(_, entry)| matches!(entry, Entry::Closed(_)))
            .map(|(path, _)| path.clone())
            .collect()
    }

    /// Sum of closed file lengths.
    pub fn total_bytes(&self) -> u64 {
        self.state
            .read()
            .files
            .values()
            .map(|e| match e {
                Entry::Closed(meta) => meta.len,
                Entry::Pending => 0,
            })
            .sum()
    }
}
