//! Namespace metadata: path → file → block list.
//!
//! Mirrors the HDFS namenode's role: a single metadata authority tracking
//! which blocks make up each file and whether the file has been sealed.

use std::collections::BTreeMap;

use dt_common::{Error, Result};
use parking_lot::RwLock;

use crate::block_store::BlockId;

/// One logical block of a file: every replica holds the same `len` bytes
/// with checksum `crc`. The checksum enables `fsck`-style integrity
/// audits and lets repair tell healthy replicas from rotted ones.
#[derive(Debug, Clone)]
pub(crate) struct BlockGroup {
    /// Physical replicas, in placement order. Readers try them in order.
    pub replicas: Vec<BlockId>,
    pub len: u64,
    pub crc: u32,
}

/// Metadata of one file: ordered block groups plus total length.
#[derive(Debug, Clone, Default)]
pub(crate) struct FileMeta {
    pub blocks: Vec<BlockGroup>,
    pub len: u64,
}

enum Entry {
    /// `create()` has been called; the writer has not committed yet.
    Pending,
    /// Sealed, immutable file.
    Closed(FileMeta),
}

/// The namespace table.
pub(crate) struct NameNode {
    files: RwLock<BTreeMap<String, Entry>>,
    /// Replicas readers have reported bad (CRC mismatch or I/O failure).
    /// Already removed from their block groups, they wait here for a
    /// scrub pass to reclaim the storage — the quarantine lifecycle of
    /// DESIGN.md §8.
    quarantined: RwLock<Vec<BlockId>>,
}

impl NameNode {
    pub fn new() -> Self {
        NameNode {
            files: RwLock::new(BTreeMap::new()),
            quarantined: RwLock::new(Vec::new()),
        }
    }

    /// Reserves `path` for a writer.
    pub fn begin_create(&self, path: &str) -> Result<()> {
        let mut files = self.files.write();
        if files.contains_key(path) {
            return Err(Error::AlreadyExists(format!("DFS path '{path}'")));
        }
        files.insert(path.to_string(), Entry::Pending);
        Ok(())
    }

    /// Seals a pending file with its final block list.
    pub fn commit(&self, path: &str, meta: FileMeta) -> Result<()> {
        let mut files = self.files.write();
        match files.get_mut(path) {
            Some(entry @ Entry::Pending) => {
                *entry = Entry::Closed(meta);
                Ok(())
            }
            Some(Entry::Closed(_)) => Err(Error::internal(format!(
                "commit of already-closed file '{path}'"
            ))),
            None => Err(Error::not_found(format!("pending file '{path}'"))),
        }
    }

    /// Drops a pending reservation (writer aborted).
    pub fn abort(&self, path: &str) {
        let mut files = self.files.write();
        if let Some(Entry::Pending) = files.get(path) {
            files.remove(path);
        }
    }

    /// Returns the metadata of a closed file.
    pub fn get_closed(&self, path: &str) -> Result<FileMeta> {
        match self.files.read().get(path) {
            Some(Entry::Closed(meta)) => Ok(meta.clone()),
            Some(Entry::Pending) => Err(Error::Busy(format!(
                "file '{path}' is still being written"
            ))),
            None => Err(Error::not_found(format!("DFS file '{path}'"))),
        }
    }

    /// Removes a closed file, returning its metadata so blocks can be freed.
    pub fn remove(&self, path: &str) -> Result<FileMeta> {
        let mut files = self.files.write();
        match files.get(path) {
            Some(Entry::Closed(_)) => {
                if let Some(Entry::Closed(meta)) = files.remove(path) {
                    Ok(meta)
                } else {
                    unreachable!("checked above")
                }
            }
            Some(Entry::Pending) => Err(Error::Busy(format!(
                "cannot delete '{path}' while it is being written"
            ))),
            None => Err(Error::not_found(format!("DFS file '{path}'"))),
        }
    }

    /// Renames a closed file; destination must be free.
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut files = self.files.write();
        if files.contains_key(to) {
            return Err(Error::AlreadyExists(format!("DFS path '{to}'")));
        }
        match files.get(from) {
            Some(Entry::Closed(_)) => {
                if let Some(entry) = files.remove(from) {
                    files.insert(to.to_string(), entry);
                }
                Ok(())
            }
            Some(Entry::Pending) => Err(Error::Busy(format!(
                "cannot rename '{from}' while it is being written"
            ))),
            None => Err(Error::not_found(format!("DFS file '{from}'"))),
        }
    }

    /// Replaces the metadata of a closed file (post-repair block lists).
    pub fn replace(&self, path: &str, meta: FileMeta) -> Result<()> {
        let mut files = self.files.write();
        match files.get_mut(path) {
            Some(entry @ Entry::Closed(_)) => {
                *entry = Entry::Closed(meta);
                Ok(())
            }
            Some(Entry::Pending) => Err(Error::Busy(format!(
                "cannot replace metadata of '{path}' while it is being written"
            ))),
            None => Err(Error::not_found(format!("DFS file '{path}'"))),
        }
    }

    /// Takes `replica` out of the serving set of block group
    /// `group_index` of `path` and records it as quarantined. Returns
    /// `true` iff this call removed it (a concurrent reader may have won
    /// the race). The *last* replica of a group is never removed — a
    /// suspect copy beats no copy, and `fsck` will still flag the group.
    pub fn quarantine_replica(
        &self,
        path: &str,
        group_index: usize,
        replica: BlockId,
    ) -> bool {
        let mut files = self.files.write();
        let Some(Entry::Closed(meta)) = files.get_mut(path) else {
            return false;
        };
        let Some(group) = meta.blocks.get_mut(group_index) else {
            return false;
        };
        if group.replicas.len() <= 1 || !group.replicas.contains(&replica) {
            return false;
        }
        group.replicas.retain(|r| *r != replica);
        drop(files);
        self.quarantined.write().push(replica);
        true
    }

    /// Number of replicas currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.read().len()
    }

    /// Drains the quarantine list so a scrub pass can reclaim the blocks.
    pub fn take_quarantined(&self) -> Vec<BlockId> {
        std::mem::take(&mut *self.quarantined.write())
    }

    /// Sorted list of closed paths with the given prefix.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.files
            .read()
            .range(prefix.to_string()..)
            .take_while(|(path, _)| path.starts_with(prefix))
            .filter(|(_, entry)| matches!(entry, Entry::Closed(_)))
            .map(|(path, _)| path.clone())
            .collect()
    }

    /// Sum of closed file lengths.
    pub fn total_bytes(&self) -> u64 {
        self.files
            .read()
            .values()
            .map(|e| match e {
                Entry::Closed(meta) => meta.len,
                Entry::Pending => 0,
            })
            .sum()
    }
}
