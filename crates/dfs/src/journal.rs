//! Durable namenode metadata: edit log + checkpoint.
//!
//! Every namespace mutation is journaled to an append-only **edit log**
//! before it is applied in memory — the classic HDFS edit-log discipline.
//! Records use the same CRC framing the kvstore WAL proved out
//! (`[payload_len: u32 LE][crc32(payload): u32 LE][payload]`), so replay
//! tolerates a torn tail: a crash mid-append loses only the un-acked
//! record, never a committed one.
//!
//! After [`DfsConfig::checkpoint_interval`] journaled mutations the
//! namenode writes a **checkpoint** — a full snapshot of the namespace —
//! via temp-file + atomic rename, then truncates the edit log. Each edit
//! carries a monotone sequence number and the checkpoint records the last
//! sequence it covers, so replay after a crash *between* the rename and
//! the log truncation simply skips already-covered records; no idempotent
//! replay gymnastics needed.
//!
//! All journal I/O goes through the pluggable [`BlockStore`] metadata
//! streams, so a [`dt_common::FaultPlan`]-wrapped store injects faults
//! into journal writes exactly like block writes. Journal bytes are *not*
//! recorded in [`dt_common::IoStats`] — the stats model data-path volume
//! (the cost model's calibration input), not control-plane traffic.
//!
//! [`DfsConfig::checkpoint_interval`]: crate::DfsConfig::checkpoint_interval

use std::sync::{Arc, Mutex};

use dt_common::codec::{get_bytes, get_uvarint, put_bytes, put_uvarint};
use dt_common::crc32::crc32;
use dt_common::{Error, HealthCounters, Result, RetryPolicy};

use crate::block_store::{BlockId, BlockStore};
use crate::namenode::{BlockGroup, Entry, FileMeta, NnState};

/// The append-only edit log stream.
pub const EDITS_FILE: &str = "edits.log";
/// The checkpoint stream (full namespace snapshot).
pub const CHECKPOINT_FILE: &str = "checkpoint";
/// Scratch name a checkpoint is staged under before its atomic rename.
pub const CHECKPOINT_TMP: &str = "checkpoint.tmp";

/// One journaled namespace mutation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum EditRecord {
    BeginCreate {
        path: String,
    },
    Commit {
        path: String,
        meta: FileMeta,
    },
    Abort {
        path: String,
    },
    Remove {
        path: String,
    },
    Rename {
        from: String,
        to: String,
    },
    Replace {
        path: String,
        meta: FileMeta,
    },
    Quarantine {
        path: String,
        group: usize,
        replica: BlockId,
    },
    /// A scrub pass reclaimed every quarantined replica.
    DrainQuarantine,
}

const TAG_BEGIN_CREATE: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_ABORT: u8 = 3;
const TAG_REMOVE: u8 = 4;
const TAG_RENAME: u8 = 5;
const TAG_REPLACE: u8 = 6;
const TAG_QUARANTINE: u8 = 7;
const TAG_DRAIN_QUARANTINE: u8 = 8;

fn put_file_meta(buf: &mut Vec<u8>, meta: &FileMeta) {
    put_uvarint(buf, meta.len);
    put_uvarint(buf, meta.blocks.len() as u64);
    for group in &meta.blocks {
        put_uvarint(buf, group.len);
        put_uvarint(buf, group.crc as u64);
        put_uvarint(buf, group.replicas.len() as u64);
        for replica in &group.replicas {
            put_uvarint(buf, replica.0);
        }
    }
}

fn get_file_meta(buf: &[u8], pos: &mut usize) -> Result<FileMeta> {
    let len = get_uvarint(buf, pos)?;
    let group_count = get_uvarint(buf, pos)?;
    let mut blocks = Vec::with_capacity(group_count as usize);
    for _ in 0..group_count {
        let glen = get_uvarint(buf, pos)?;
        let crc = get_uvarint(buf, pos)? as u32;
        let replica_count = get_uvarint(buf, pos)?;
        let mut replicas = Vec::with_capacity(replica_count as usize);
        for _ in 0..replica_count {
            replicas.push(BlockId(get_uvarint(buf, pos)?));
        }
        blocks.push(BlockGroup {
            replicas,
            len: glen,
            crc,
        });
    }
    Ok(FileMeta { blocks, len })
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String> {
    let bytes = get_bytes(buf, pos)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| Error::corrupt("non-UTF-8 path in journal"))
}

impl EditRecord {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            EditRecord::BeginCreate { path } => {
                buf.push(TAG_BEGIN_CREATE);
                put_str(buf, path);
            }
            EditRecord::Commit { path, meta } => {
                buf.push(TAG_COMMIT);
                put_str(buf, path);
                put_file_meta(buf, meta);
            }
            EditRecord::Abort { path } => {
                buf.push(TAG_ABORT);
                put_str(buf, path);
            }
            EditRecord::Remove { path } => {
                buf.push(TAG_REMOVE);
                put_str(buf, path);
            }
            EditRecord::Rename { from, to } => {
                buf.push(TAG_RENAME);
                put_str(buf, from);
                put_str(buf, to);
            }
            EditRecord::Replace { path, meta } => {
                buf.push(TAG_REPLACE);
                put_str(buf, path);
                put_file_meta(buf, meta);
            }
            EditRecord::Quarantine {
                path,
                group,
                replica,
            } => {
                buf.push(TAG_QUARANTINE);
                put_str(buf, path);
                put_uvarint(buf, *group as u64);
                put_uvarint(buf, replica.0);
            }
            EditRecord::DrainQuarantine => buf.push(TAG_DRAIN_QUARANTINE),
        }
    }

    fn decode(buf: &[u8], pos: &mut usize) -> Result<EditRecord> {
        if *pos >= buf.len() {
            return Err(Error::corrupt("journal record missing tag"));
        }
        let tag = buf[*pos];
        *pos += 1;
        Ok(match tag {
            TAG_BEGIN_CREATE => EditRecord::BeginCreate {
                path: get_str(buf, pos)?,
            },
            TAG_COMMIT => EditRecord::Commit {
                path: get_str(buf, pos)?,
                meta: get_file_meta(buf, pos)?,
            },
            TAG_ABORT => EditRecord::Abort {
                path: get_str(buf, pos)?,
            },
            TAG_REMOVE => EditRecord::Remove {
                path: get_str(buf, pos)?,
            },
            TAG_RENAME => EditRecord::Rename {
                from: get_str(buf, pos)?,
                to: get_str(buf, pos)?,
            },
            TAG_REPLACE => EditRecord::Replace {
                path: get_str(buf, pos)?,
                meta: get_file_meta(buf, pos)?,
            },
            TAG_QUARANTINE => EditRecord::Quarantine {
                path: get_str(buf, pos)?,
                group: get_uvarint(buf, pos)? as usize,
                replica: BlockId(get_uvarint(buf, pos)?),
            },
            TAG_DRAIN_QUARANTINE => EditRecord::DrainQuarantine,
            other => return Err(Error::corrupt(format!("unknown journal tag {other}"))),
        })
    }
}

struct JournalState {
    /// Sequence number the next edit record will carry (1-based).
    next_seq: u64,
    /// Edits journaled since the last checkpoint.
    edits_since_checkpoint: u64,
}

/// The namenode's durable metadata writer/reader.
pub(crate) struct Journal {
    blocks: Arc<dyn BlockStore>,
    retry: RetryPolicy,
    health: Arc<HealthCounters>,
    checkpoint_interval: u64,
    state: Mutex<JournalState>,
}

/// What [`Journal::recover`] reconstructed.
pub(crate) struct Recovered {
    pub state: NnState,
    pub report: RecoveryReport,
}

/// Public summary of one namenode recovery pass, surfaced by
/// [`crate::Dfs::crash_and_reopen`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Paths that were still `Pending` in the journal — writers that died
    /// with the crash. Their create never committed, so recovery drops
    /// them from the namespace; their placed blocks become orphans for
    /// the next scrub pass.
    pub dropped_pending: Vec<String>,
    /// Bytes of torn/corrupt edit-log tail discarded by salvage. Non-zero
    /// means the crash landed mid-append; the salvaged state was
    /// re-checkpointed and the log reset.
    pub dropped_bytes: u64,
}

impl Journal {
    /// Opens the journal over `blocks`, replaying any persisted
    /// checkpoint + edit log into a [`Recovered`] namespace.
    ///
    /// A fresh store performs **zero** fault-surface operations here: the
    /// existence checks go through [`BlockStore::meta_list`], which is
    /// enumeration-only, so armed fault plans see the same op indices
    /// whether a `Dfs` is brand new or freshly recovered-from-empty.
    pub fn recover(
        blocks: Arc<dyn BlockStore>,
        retry: RetryPolicy,
        health: Arc<HealthCounters>,
        checkpoint_interval: u64,
    ) -> Result<(Journal, Recovered)> {
        let journal = Journal {
            blocks,
            retry,
            health,
            checkpoint_interval,
            state: Mutex::new(JournalState {
                next_seq: 1,
                edits_since_checkpoint: 0,
            }),
        };
        let recovered = journal.load()?;
        Ok((journal, recovered))
    }

    /// Re-runs recovery over the persisted streams, resetting this
    /// journal's counters — the "namenode restart" entry point.
    pub fn load(&self) -> Result<Recovered> {
        let names = self.blocks.meta_list();
        // A stale staged checkpoint means a crash before the atomic
        // rename: the snapshot never committed, drop it.
        if names.iter().any(|n| n == CHECKPOINT_TMP) {
            let _ = self.blocks.meta_delete(CHECKPOINT_TMP);
        }

        let mut state = NnState::default();
        let mut last_seq = 0u64;
        if names.iter().any(|n| n == CHECKPOINT_FILE) {
            let data = self
                .retry
                .run(&self.health, || self.blocks.meta_read(CHECKPOINT_FILE))?;
            last_seq = decode_checkpoint(&data, &mut state)?;
        }

        let mut max_seq = last_seq;
        let mut dropped_bytes = 0u64;
        if names.iter().any(|n| n == EDITS_FILE) {
            let data = self
                .retry
                .run(&self.health, || self.blocks.meta_read(EDITS_FILE))?;
            let mut pos = 0usize;
            while pos + 8 <= data.len() {
                let len = u32::from_le_bytes(data[pos..pos + 4].try_into().unwrap()) as usize;
                let crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().unwrap());
                let body_start = pos + 8;
                let body_end = match body_start.checked_add(len) {
                    Some(e) if e <= data.len() => e,
                    // Truncated tail — crash mid-append; stop here.
                    _ => break,
                };
                let payload = &data[body_start..body_end];
                if crc32(payload) != crc {
                    // Torn or corrupt record: salvage stops at the last
                    // good one. A journal may always end mid-write.
                    break;
                }
                let mut p = 0usize;
                let Ok(seq) = get_uvarint(payload, &mut p) else {
                    break;
                };
                let Ok(record) = EditRecord::decode(payload, &mut p) else {
                    // Frame passed CRC but the payload will not decode:
                    // bit rot inside the checksum window or a codec bug.
                    // Nothing after it can be trusted.
                    break;
                };
                if seq > last_seq {
                    // Records at or below the checkpoint's sequence are
                    // already folded into the snapshot (a crash between
                    // checkpoint rename and log truncation leaves them
                    // behind) — skip, do not re-apply.
                    state.apply(&record);
                }
                max_seq = max_seq.max(seq);
                pos = body_end;
            }
            dropped_bytes = (data.len() - pos) as u64;
        }

        // Writers that held a Pending reservation died with the crash:
        // their create never committed, so the paths simply do not exist.
        // Their placed blocks become orphans for scrub to collect.
        let dropped_pending: Vec<String> = state
            .files
            .iter()
            .filter(|(_, e)| matches!(e, Entry::Pending))
            .map(|(p, _)| p.clone())
            .collect();
        for path in &dropped_pending {
            state.files.remove(path);
        }

        {
            let mut js = self.state.lock().unwrap();
            js.next_seq = max_seq + 1;
            js.edits_since_checkpoint = 0;
        }

        if dropped_bytes > 0 {
            // The edit log ends in garbage. Future appends would land
            // behind it, unreachable to replay — so make the salvaged
            // state durable as a fresh checkpoint and clear the log,
            // mirroring the kvstore's flush-salvaged-then-reset idiom.
            self.checkpoint(&state)?;
        }

        Ok(Recovered {
            state,
            report: RecoveryReport {
                dropped_pending,
                dropped_bytes,
            },
        })
    }

    /// Durably appends one edit record. Must be called *before* the
    /// in-memory mutation it describes (write-ahead), under the namenode
    /// state lock so log order equals apply order.
    pub fn append(&self, record: &EditRecord) -> Result<()> {
        let seq = {
            let js = self.state.lock().unwrap();
            js.next_seq
        };
        let mut payload = Vec::with_capacity(64);
        put_uvarint(&mut payload, seq);
        record.encode(&mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        // Transient write hiccups are retried like any data write, so a
        // brief outage does not fail a metadata operation.
        self.retry
            .run(&self.health, || self.blocks.meta_append(EDITS_FILE, &frame))?;
        let mut js = self.state.lock().unwrap();
        js.next_seq += 1;
        js.edits_since_checkpoint += 1;
        Ok(())
    }

    /// `true` once enough edits accumulated that the caller should fold
    /// them into a checkpoint.
    pub fn should_checkpoint(&self) -> bool {
        self.state.lock().unwrap().edits_since_checkpoint >= self.checkpoint_interval
    }

    /// Snapshots `state` and truncates the edit log.
    ///
    /// Crash-safe at every step: the snapshot is staged under
    /// [`CHECKPOINT_TMP`] and only becomes *the* checkpoint via atomic
    /// rename; a crash before the rename leaves a stale tmp (cleaned on
    /// recovery), a crash after the rename but before the log delete
    /// leaves already-covered records in the log (skipped via their
    /// sequence numbers on replay).
    pub fn checkpoint(&self, state: &NnState) -> Result<()> {
        let last_seq = self.state.lock().unwrap().next_seq - 1;
        let payload = encode_checkpoint(state, last_seq);
        self.retry.run(&self.health, || {
            self.blocks.meta_write(CHECKPOINT_TMP, &payload)
        })?;
        self.retry.run(&self.health, || {
            self.blocks.meta_rename(CHECKPOINT_TMP, CHECKPOINT_FILE)
        })?;
        match self.blocks.meta_delete(EDITS_FILE) {
            Ok(()) | Err(Error::NotFound(_)) => {}
            Err(e) => return Err(e),
        }
        self.state.lock().unwrap().edits_since_checkpoint = 0;
        Ok(())
    }
}

/// Checkpoint layout: `[crc32(body): u32 LE][body]` where body is
/// `[last_seq][file count][files…][quarantine count][ids…]`, each file
/// being `[path][state byte]` + `FileMeta` when closed. A checkpoint only
/// ever appears whole (atomic rename), so unlike the edit log there is no
/// salvage: a CRC mismatch here is real damage and fails recovery.
fn encode_checkpoint(state: &NnState, last_seq: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(256);
    put_uvarint(&mut body, last_seq);
    put_uvarint(&mut body, state.files.len() as u64);
    for (path, entry) in &state.files {
        put_str(&mut body, path);
        match entry {
            Entry::Pending => body.push(0),
            Entry::Closed(meta) => {
                body.push(1);
                put_file_meta(&mut body, meta);
            }
        }
    }
    put_uvarint(&mut body, state.quarantined.len() as u64);
    for id in &state.quarantined {
        put_uvarint(&mut body, id.0);
    }
    let mut out = Vec::with_capacity(body.len() + 4);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

fn decode_checkpoint(data: &[u8], state: &mut NnState) -> Result<u64> {
    if data.len() < 4 {
        return Err(Error::corrupt("checkpoint shorter than its checksum"));
    }
    let crc = u32::from_le_bytes(data[..4].try_into().unwrap());
    let body = &data[4..];
    if crc32(body) != crc {
        return Err(Error::corrupt("checkpoint checksum mismatch"));
    }
    let mut pos = 0usize;
    let last_seq = get_uvarint(body, &mut pos)?;
    let file_count = get_uvarint(body, &mut pos)?;
    for _ in 0..file_count {
        let path = get_str(body, &mut pos)?;
        if pos >= body.len() {
            return Err(Error::corrupt("checkpoint file entry missing state byte"));
        }
        let tag = body[pos];
        pos += 1;
        let entry = match tag {
            0 => Entry::Pending,
            1 => Entry::Closed(get_file_meta(body, &mut pos)?),
            other => {
                return Err(Error::corrupt(format!(
                    "unknown checkpoint entry state {other}"
                )))
            }
        };
        state.files.insert(path, entry);
    }
    let quarantine_count = get_uvarint(body, &mut pos)?;
    for _ in 0..quarantine_count {
        state
            .quarantined
            .push(BlockId(get_uvarint(body, &mut pos)?));
    }
    Ok(last_seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_store::MemBlockStore;

    fn fresh() -> (Journal, Arc<MemBlockStore>) {
        let store = Arc::new(MemBlockStore::new());
        let (journal, recovered) = Journal::recover(
            store.clone(),
            RetryPolicy::disabled(),
            Arc::new(HealthCounters::new()),
            4,
        )
        .unwrap();
        assert!(recovered.state.files.is_empty());
        (journal, store)
    }

    fn reopen(store: &Arc<MemBlockStore>) -> Recovered {
        let (_, recovered) = Journal::recover(
            store.clone(),
            RetryPolicy::disabled(),
            Arc::new(HealthCounters::new()),
            4,
        )
        .unwrap();
        recovered
    }

    fn meta(ids: &[u64]) -> FileMeta {
        FileMeta {
            blocks: vec![BlockGroup {
                replicas: ids.iter().map(|&i| BlockId(i)).collect(),
                len: 10,
                crc: 0xABCD,
            }],
            len: 10,
        }
    }

    #[test]
    fn edits_replay_across_reopen() {
        let (journal, store) = fresh();
        journal
            .append(&EditRecord::BeginCreate { path: "/a".into() })
            .unwrap();
        journal
            .append(&EditRecord::Commit {
                path: "/a".into(),
                meta: meta(&[1, 2]),
            })
            .unwrap();
        let recovered = reopen(&store);
        assert_eq!(recovered.state.files.len(), 1);
        let Entry::Closed(m) = &recovered.state.files["/a"] else {
            panic!("expected closed file");
        };
        assert_eq!(m.blocks[0].replicas, vec![BlockId(1), BlockId(2)]);
        assert_eq!(recovered.report.dropped_bytes, 0);
    }

    #[test]
    fn pending_without_commit_is_dropped_on_recovery() {
        let (journal, store) = fresh();
        journal
            .append(&EditRecord::BeginCreate {
                path: "/doomed".into(),
            })
            .unwrap();
        let recovered = reopen(&store);
        assert!(recovered.state.files.is_empty());
        assert_eq!(
            recovered.report.dropped_pending,
            vec!["/doomed".to_string()]
        );
    }

    #[test]
    fn torn_edit_tail_is_salvaged_and_log_reset() {
        let (journal, store) = fresh();
        journal
            .append(&EditRecord::BeginCreate { path: "/a".into() })
            .unwrap();
        journal
            .append(&EditRecord::Commit {
                path: "/a".into(),
                meta: meta(&[1]),
            })
            .unwrap();
        // Tear the log mid-record.
        let data = store.meta_read(EDITS_FILE).unwrap();
        store
            .meta_write(EDITS_FILE, &data[..data.len() - 3])
            .unwrap();
        let recovered = reopen(&store);
        // The torn Commit is gone; its BeginCreate survives alone and is
        // dropped as a dead pending writer.
        assert!(recovered.state.files.is_empty());
        assert!(recovered.report.dropped_bytes > 0);
        // Salvage rewrote the durable state: a second reopen is clean.
        let again = reopen(&store);
        assert_eq!(again.report.dropped_bytes, 0);
        assert!(again.state.files.is_empty());
    }

    #[test]
    fn checkpoint_truncates_log_and_replay_skips_covered_seqs() {
        let (journal, store) = fresh();
        let mut state = NnState::default();
        for record in [
            EditRecord::BeginCreate { path: "/a".into() },
            EditRecord::Commit {
                path: "/a".into(),
                meta: meta(&[1, 2]),
            },
            EditRecord::Quarantine {
                path: "/a".into(),
                group: 0,
                replica: BlockId(2),
            },
        ] {
            journal.append(&record).unwrap();
            state.apply(&record);
        }
        let covered_edits = store.meta_read(EDITS_FILE).unwrap();
        journal.checkpoint(&state).unwrap();
        assert!(store.meta_read(EDITS_FILE).is_err(), "log truncated");
        assert_eq!(reopen(&store).state.quarantined, vec![BlockId(2)]);

        // Crash between the checkpoint rename and the log truncation: the
        // covered records are still in the log. Replay must skip them by
        // sequence number — re-applying the Quarantine would duplicate
        // the registry entry.
        store.meta_write(EDITS_FILE, &covered_edits).unwrap();
        let recovered = reopen(&store);
        assert_eq!(recovered.state.quarantined, vec![BlockId(2)]);
        let Entry::Closed(m) = &recovered.state.files["/a"] else {
            panic!("expected closed file");
        };
        assert_eq!(m.blocks[0].replicas, vec![BlockId(1)]);
    }

    #[test]
    fn stale_checkpoint_tmp_is_cleaned() {
        let (journal, store) = fresh();
        journal
            .append(&EditRecord::BeginCreate { path: "/a".into() })
            .unwrap();
        journal
            .append(&EditRecord::Commit {
                path: "/a".into(),
                meta: meta(&[3]),
            })
            .unwrap();
        store.meta_write(CHECKPOINT_TMP, b"half a snapsh").unwrap();
        let recovered = reopen(&store);
        assert_eq!(recovered.state.files.len(), 1);
        assert!(store.meta_read(CHECKPOINT_TMP).is_err(), "tmp cleaned");
    }

    #[test]
    fn quarantine_records_survive_reopen() {
        let (journal, store) = fresh();
        journal
            .append(&EditRecord::BeginCreate { path: "/a".into() })
            .unwrap();
        journal
            .append(&EditRecord::Commit {
                path: "/a".into(),
                meta: meta(&[1, 2]),
            })
            .unwrap();
        journal
            .append(&EditRecord::Quarantine {
                path: "/a".into(),
                group: 0,
                replica: BlockId(2),
            })
            .unwrap();
        let recovered = reopen(&store);
        assert_eq!(recovered.state.quarantined, vec![BlockId(2)]);
        let Entry::Closed(m) = &recovered.state.files["/a"] else {
            panic!("expected closed file");
        };
        assert_eq!(m.blocks[0].replicas, vec![BlockId(1)]);
    }

    #[test]
    fn checkpoint_roundtrips_pending_and_quarantine() {
        let mut state = NnState::default();
        state.files.insert("/p".into(), Entry::Pending);
        state.files.insert("/c".into(), Entry::Closed(meta(&[9])));
        state.quarantined.push(BlockId(42));
        let encoded = encode_checkpoint(&state, 17);
        let mut decoded = NnState::default();
        assert_eq!(decode_checkpoint(&encoded, &mut decoded).unwrap(), 17);
        assert_eq!(decoded.files.len(), 2);
        assert!(matches!(decoded.files["/p"], Entry::Pending));
        assert_eq!(decoded.quarantined, vec![BlockId(42)]);
    }

    #[test]
    fn corrupt_checkpoint_is_fatal() {
        let mut state = NnState::default();
        state.files.insert("/c".into(), Entry::Closed(meta(&[1])));
        let mut encoded = encode_checkpoint(&state, 5);
        let n = encoded.len();
        encoded[n - 1] ^= 0x10;
        let mut decoded = NnState::default();
        assert!(decode_checkpoint(&encoded, &mut decoded)
            .unwrap_err()
            .to_string()
            .contains("checksum"));
    }
}
