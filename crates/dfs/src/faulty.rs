//! Fault-injecting decorator over any [`BlockStore`].
//!
//! Consults a shared [`FaultPlan`] before every data operation. With a
//! disarmed plan ([`FaultPlan::none`]) the wrapper is a single relaxed
//! atomic load per call — behaviour is byte-identical to the wrapped
//! store.

use std::sync::Arc;

use dt_common::fault::{FaultKind, FaultPlan, IoOp};
use dt_common::Result;

use crate::block_store::{BlockId, BlockStore};

/// A [`BlockStore`] that injects the faults scheduled by a [`FaultPlan`].
pub struct FaultyBlockStore {
    inner: Arc<dyn BlockStore>,
    plan: Arc<FaultPlan>,
}

impl FaultyBlockStore {
    /// Wraps `inner`, consulting `plan` on every operation.
    pub fn new(inner: Arc<dyn BlockStore>, plan: Arc<FaultPlan>) -> Self {
        FaultyBlockStore { inner, plan }
    }

    /// The shared fault plan.
    pub fn plan(&self) -> &Arc<FaultPlan> {
        &self.plan
    }
}

impl BlockStore for FaultyBlockStore {
    fn put(&self, data: &[u8]) -> Result<BlockId> {
        match self.plan.on_op(IoOp::Write) {
            None => self.inner.put(data),
            Some(FaultKind::TornWrite) => {
                // A prefix of the block lands on the datanode, but the
                // client never learns its id — exactly what a crashed
                // pipeline leaves behind. The orphan is invisible (no
                // namenode reference) and only wastes space.
                let keep = self.plan.torn_prefix_len(data.len());
                let _ = self.inner.put(&data[..keep]);
                Err(FaultPlan::error(FaultKind::TornWrite, "block put"))
            }
            Some(FaultKind::CorruptWrite) => {
                let mut mangled = data.to_vec();
                self.plan.mangle_byte(&mut mangled);
                self.inner.put(&mangled)
            }
            Some(kind) => Err(FaultPlan::error(kind, "block put")),
        }
    }

    fn read_at(&self, id: BlockId, offset: u64, buf: &mut [u8]) -> Result<()> {
        match self.plan.on_op(IoOp::Read) {
            None => self.inner.read_at(id, offset, buf),
            Some(FaultKind::CorruptRead) => {
                self.inner.read_at(id, offset, buf)?;
                self.plan.mangle_byte(buf);
                Ok(())
            }
            Some(kind) => Err(FaultPlan::error(kind, "block read")),
        }
    }

    fn delete(&self, id: BlockId) -> Result<()> {
        self.plan.check(IoOp::Delete, "block delete")?;
        self.inner.delete(id)
    }

    fn meta_append(&self, name: &str, data: &[u8]) -> Result<()> {
        match self.plan.on_op(IoOp::Write) {
            None => self.inner.meta_append(name, data),
            Some(FaultKind::TornWrite) => {
                // A prefix of the frame lands in the journal — exactly the
                // torn tail the replay salvage must tolerate.
                let keep = self.plan.torn_prefix_len(data.len());
                let _ = self.inner.meta_append(name, &data[..keep]);
                Err(FaultPlan::error(FaultKind::TornWrite, "meta append"))
            }
            Some(FaultKind::CorruptWrite) => {
                let mut mangled = data.to_vec();
                self.plan.mangle_byte(&mut mangled);
                self.inner.meta_append(name, &mangled)
            }
            Some(kind) => Err(FaultPlan::error(kind, "meta append")),
        }
    }

    fn meta_write(&self, name: &str, data: &[u8]) -> Result<()> {
        match self.plan.on_op(IoOp::Write) {
            None => self.inner.meta_write(name, data),
            Some(FaultKind::TornWrite) => {
                let keep = self.plan.torn_prefix_len(data.len());
                let _ = self.inner.meta_write(name, &data[..keep]);
                Err(FaultPlan::error(FaultKind::TornWrite, "meta write"))
            }
            Some(FaultKind::CorruptWrite) => {
                let mut mangled = data.to_vec();
                self.plan.mangle_byte(&mut mangled);
                self.inner.meta_write(name, &mangled)
            }
            Some(kind) => Err(FaultPlan::error(kind, "meta write")),
        }
    }

    fn meta_read(&self, name: &str) -> Result<Vec<u8>> {
        match self.plan.on_op(IoOp::Read) {
            None => self.inner.meta_read(name),
            Some(FaultKind::CorruptRead) => {
                let mut data = self.inner.meta_read(name)?;
                self.plan.mangle_byte(&mut data);
                Ok(data)
            }
            Some(kind) => Err(FaultPlan::error(kind, "meta read")),
        }
    }

    fn meta_rename(&self, from: &str, to: &str) -> Result<()> {
        // A rename is atomic: it either happens or it does not, so torn
        // and corrupting kinds degrade to a plain failed operation.
        self.plan.check(IoOp::Write, "meta rename")?;
        self.inner.meta_rename(from, to)
    }

    fn meta_delete(&self, name: &str) -> Result<()> {
        self.plan.check(IoOp::Delete, "meta delete")?;
        self.inner.meta_delete(name)
    }

    fn meta_list(&self) -> Vec<String> {
        self.inner.meta_list()
    }

    fn list_blocks(&self) -> Vec<BlockId> {
        self.inner.list_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_store::MemBlockStore;

    fn wrapped(plan: FaultPlan) -> (FaultyBlockStore, Arc<FaultPlan>) {
        let plan = Arc::new(plan);
        (
            FaultyBlockStore::new(Arc::new(MemBlockStore::new()), plan.clone()),
            plan,
        )
    }

    #[test]
    fn disarmed_is_transparent() {
        let (store, plan) = wrapped(FaultPlan::none());
        let id = store.put(b"payload").unwrap();
        let mut buf = vec![0u8; 7];
        store.read_at(id, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"payload");
        store.delete(id).unwrap();
        assert_eq!(plan.injected_count(), 0);
    }

    #[test]
    fn write_error_has_no_side_effects() {
        let inner = Arc::new(MemBlockStore::new());
        let plan = Arc::new(FaultPlan::new(3).fail_at(1, FaultKind::WriteError));
        let store = FaultyBlockStore::new(inner.clone(), plan);
        assert!(store.put(b"x").unwrap_err().is_injected());
        assert_eq!(inner.block_count(), 0);
        // The next put proceeds normally.
        store.put(b"x").unwrap();
        assert_eq!(inner.block_count(), 1);
    }

    #[test]
    fn corrupt_read_flips_one_byte() {
        let (store, plan) = wrapped(FaultPlan::new(5).fail_at(2, FaultKind::CorruptRead));
        let id = store.put(b"0123456789").unwrap();
        let mut bad = vec![0u8; 10];
        store.read_at(id, 0, &mut bad).unwrap();
        assert_eq!(plan.injected_count(), 1);
        let diffs = b"0123456789"
            .iter()
            .zip(&bad)
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
        // Subsequent reads are clean again.
        let mut good = vec![0u8; 10];
        store.read_at(id, 0, &mut good).unwrap();
        assert_eq!(&good, b"0123456789");
    }

    #[test]
    fn torn_write_crashes_and_sticks() {
        let plan = Arc::new(FaultPlan::new(7).fail_at(1, FaultKind::TornWrite));
        let store = FaultyBlockStore::new(Arc::new(MemBlockStore::new()), plan.clone());
        assert!(store.put(b"doomed block").unwrap_err().is_injected());
        assert!(plan.is_crashed());
        // Everything fails until heal().
        assert!(store.put(b"next").is_err());
        let mut buf = [0u8; 1];
        assert!(store.read_at(BlockId(0), 0, &mut buf).is_err());
        plan.heal();
        store.put(b"after recovery").unwrap();
    }
}
