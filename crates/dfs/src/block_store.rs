//! Physical block storage behind the DFS namespace.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dt_common::{Error, Result};
use parking_lot::RwLock;

/// Opaque identifier of one stored block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Storage for immutable blocks plus a small mutable metadata area.
///
/// Blocks are written whole and never mutated — the datanode contract.
/// The `meta_*` family backs the namenode's durable state (edit log and
/// checkpoints): named byte streams on the same substrate, so a faulty
/// wrapper sees journal I/O exactly like block I/O.
pub trait BlockStore: Send + Sync {
    /// Stores `data` as a new block.
    fn put(&self, data: &[u8]) -> Result<BlockId>;

    /// Reads `buf.len()` bytes starting at `offset` within the block.
    fn read_at(&self, id: BlockId, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Releases a block.
    fn delete(&self, id: BlockId) -> Result<()>;

    /// Appends `data` to the named metadata stream, creating it if absent.
    fn meta_append(&self, name: &str, data: &[u8]) -> Result<()>;

    /// Creates or fully replaces the named metadata stream.
    fn meta_write(&self, name: &str, data: &[u8]) -> Result<()>;

    /// Reads the full contents of the named metadata stream.
    /// [`Error::not_found`] if it does not exist.
    fn meta_read(&self, name: &str) -> Result<Vec<u8>>;

    /// Atomically renames a metadata stream, replacing any existing
    /// `to` — the commit point of a checkpoint.
    fn meta_rename(&self, from: &str, to: &str) -> Result<()>;

    /// Deletes the named metadata stream. [`Error::not_found`] if absent.
    fn meta_delete(&self, name: &str) -> Result<()>;

    /// Names of all existing metadata streams. Enumeration only (a
    /// directory listing) — kept off the fault surface like other
    /// metadata-free lookups.
    fn meta_list(&self) -> Vec<String>;

    /// Ids of all stored blocks, referenced or not. Enumeration only —
    /// off the fault surface; backs orphan-block accounting.
    fn list_blocks(&self) -> Vec<BlockId>;
}

/// Heap-backed block store; the default for tests and deterministic
/// experiments.
#[derive(Default)]
pub struct MemBlockStore {
    next_id: AtomicU64,
    blocks: RwLock<HashMap<BlockId, Arc<Vec<u8>>>>,
    meta: RwLock<HashMap<String, Vec<u8>>>,
}

impl MemBlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live blocks (for leak tests).
    pub fn block_count(&self) -> usize {
        self.blocks.read().len()
    }
}

impl BlockStore for MemBlockStore {
    fn put(&self, data: &[u8]) -> Result<BlockId> {
        let id = BlockId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.blocks.write().insert(id, Arc::new(data.to_vec()));
        Ok(id)
    }

    fn read_at(&self, id: BlockId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let block = self
            .blocks
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("block {id:?}")))?;
        let start = offset as usize;
        let end = start
            .checked_add(buf.len())
            .ok_or_else(|| Error::invalid("block read range overflow"))?;
        if end > block.len() {
            return Err(Error::invalid(format!(
                "read [{start}, {end}) beyond block of {} bytes",
                block.len()
            )));
        }
        buf.copy_from_slice(&block[start..end]);
        Ok(())
    }

    fn delete(&self, id: BlockId) -> Result<()> {
        self.blocks
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| Error::not_found(format!("block {id:?}")))
    }

    fn meta_append(&self, name: &str, data: &[u8]) -> Result<()> {
        self.meta
            .write()
            .entry(name.to_string())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn meta_write(&self, name: &str, data: &[u8]) -> Result<()> {
        self.meta.write().insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn meta_read(&self, name: &str) -> Result<Vec<u8>> {
        self.meta
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("meta stream {name}")))
    }

    fn meta_rename(&self, from: &str, to: &str) -> Result<()> {
        let mut meta = self.meta.write();
        let data = meta
            .remove(from)
            .ok_or_else(|| Error::not_found(format!("meta stream {from}")))?;
        meta.insert(to.to_string(), data);
        Ok(())
    }

    fn meta_delete(&self, name: &str) -> Result<()> {
        self.meta
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| Error::not_found(format!("meta stream {name}")))
    }

    fn meta_list(&self) -> Vec<String> {
        let mut names: Vec<String> = self.meta.read().keys().cloned().collect();
        names.sort();
        names
    }

    fn list_blocks(&self) -> Vec<BlockId> {
        let mut ids: Vec<BlockId> = self.blocks.read().keys().copied().collect();
        ids.sort();
        ids
    }
}

/// Block store writing one file per block under a root directory; used by
/// benchmarks that want the OS page cache and real disk behaviour in play.
pub struct DiskBlockStore {
    root: PathBuf,
    next_id: AtomicU64,
}

impl DiskBlockStore {
    /// Creates the root directory if needed. Reopening an existing root
    /// resumes id allocation after the highest surviving block, so a
    /// recovered namenode never sees its blocks overwritten.
    pub fn new(root: PathBuf) -> Result<Self> {
        fs::create_dir_all(&root)?;
        let mut next_id = 0u64;
        for entry in fs::read_dir(&root)? {
            let name = entry?.file_name();
            if let Some(hex) = name.to_str().and_then(|n| n.strip_prefix("blk_")) {
                if let Ok(id) = u64::from_str_radix(hex, 16) {
                    next_id = next_id.max(id + 1);
                }
            }
        }
        Ok(DiskBlockStore {
            root,
            next_id: AtomicU64::new(next_id),
        })
    }

    fn path_of(&self, id: BlockId) -> PathBuf {
        self.root.join(format!("blk_{:016x}", id.0))
    }

    fn meta_path(&self, name: &str) -> PathBuf {
        self.root.join(format!("nn_{name}"))
    }
}

impl BlockStore for DiskBlockStore {
    fn put(&self, data: &[u8]) -> Result<BlockId> {
        let id = BlockId(self.next_id.fetch_add(1, Ordering::Relaxed));
        fs::write(self.path_of(id), data)?;
        Ok(id)
    }

    fn read_at(&self, id: BlockId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut f = fs::File::open(self.path_of(id))
            .map_err(|_| Error::not_found(format!("block {id:?}")))?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)?;
        Ok(())
    }

    fn delete(&self, id: BlockId) -> Result<()> {
        fs::remove_file(self.path_of(id)).map_err(|_| Error::not_found(format!("block {id:?}")))
    }

    fn meta_append(&self, name: &str, data: &[u8]) -> Result<()> {
        use std::io::Write;
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.meta_path(name))?;
        f.write_all(data)?;
        Ok(())
    }

    fn meta_write(&self, name: &str, data: &[u8]) -> Result<()> {
        fs::write(self.meta_path(name), data)?;
        Ok(())
    }

    fn meta_read(&self, name: &str) -> Result<Vec<u8>> {
        fs::read(self.meta_path(name)).map_err(|_| Error::not_found(format!("meta stream {name}")))
    }

    fn meta_rename(&self, from: &str, to: &str) -> Result<()> {
        fs::rename(self.meta_path(from), self.meta_path(to))
            .map_err(|_| Error::not_found(format!("meta stream {from}")))
    }

    fn meta_delete(&self, name: &str) -> Result<()> {
        fs::remove_file(self.meta_path(name))
            .map_err(|_| Error::not_found(format!("meta stream {name}")))
    }

    fn meta_list(&self) -> Vec<String> {
        let mut names = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                if let Some(name) = entry
                    .file_name()
                    .to_str()
                    .and_then(|n| n.strip_prefix("nn_"))
                {
                    names.push(name.to_string());
                }
            }
        }
        names.sort();
        names
    }

    fn list_blocks(&self) -> Vec<BlockId> {
        let mut ids = Vec::new();
        if let Ok(entries) = fs::read_dir(&self.root) {
            for entry in entries.flatten() {
                if let Some(hex) = entry
                    .file_name()
                    .to_str()
                    .and_then(|n| n.strip_prefix("blk_"))
                {
                    if let Ok(id) = u64::from_str_radix(hex, 16) {
                        ids.push(BlockId(id));
                    }
                }
            }
        }
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_roundtrip_and_delete() {
        let store = MemBlockStore::new();
        let id = store.put(b"hello").unwrap();
        let mut buf = vec![0u8; 3];
        store.read_at(id, 1, &mut buf).unwrap();
        assert_eq!(&buf, b"ell");
        store.delete(id).unwrap();
        assert!(store.read_at(id, 0, &mut buf).is_err());
        assert_eq!(store.block_count(), 0);
    }

    #[test]
    fn mem_store_rejects_out_of_range() {
        let store = MemBlockStore::new();
        let id = store.put(b"abc").unwrap();
        let mut buf = vec![0u8; 4];
        assert!(store.read_at(id, 0, &mut buf).is_err());
        assert!(store.read_at(id, 3, &mut buf[..1]).is_err());
    }

    #[test]
    fn ids_are_unique() {
        let store = MemBlockStore::new();
        let a = store.put(b"a").unwrap();
        let b = store.put(b"b").unwrap();
        assert_ne!(a, b);
    }

    fn meta_roundtrip(store: &dyn BlockStore) {
        assert!(store.meta_read("edits").is_err());
        store.meta_append("edits", b"rec1;").unwrap();
        store.meta_append("edits", b"rec2;").unwrap();
        assert_eq!(store.meta_read("edits").unwrap(), b"rec1;rec2;");
        store.meta_write("ckpt.tmp", b"snapshot").unwrap();
        store.meta_rename("ckpt.tmp", "ckpt").unwrap();
        assert!(store.meta_read("ckpt.tmp").is_err());
        assert_eq!(store.meta_read("ckpt").unwrap(), b"snapshot");
        assert_eq!(
            store.meta_list(),
            vec!["ckpt".to_string(), "edits".to_string()]
        );
        // Rename over an existing target replaces it.
        store.meta_write("ckpt.tmp", b"snapshot2").unwrap();
        store.meta_rename("ckpt.tmp", "ckpt").unwrap();
        assert_eq!(store.meta_read("ckpt").unwrap(), b"snapshot2");
        store.meta_delete("edits").unwrap();
        assert!(store.meta_delete("edits").is_err());
        assert_eq!(store.meta_list(), vec!["ckpt".to_string()]);
    }

    #[test]
    fn mem_store_meta_streams_roundtrip() {
        meta_roundtrip(&MemBlockStore::new());
    }

    #[test]
    fn disk_store_meta_streams_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dt_blkmeta_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DiskBlockStore::new(dir.clone()).unwrap();
        meta_roundtrip(&store);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_store_resumes_block_ids_after_reopen() {
        let dir = std::env::temp_dir().join(format!("dt_blkresume_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = {
            let store = DiskBlockStore::new(dir.clone()).unwrap();
            store.put(b"first").unwrap()
        };
        let store = DiskBlockStore::new(dir.clone()).unwrap();
        let b = store.put(b"second").unwrap();
        assert!(b > a, "reopened store must not reuse live block ids");
        let mut buf = vec![0u8; 5];
        store.read_at(a, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"first");
        assert_eq!(store.list_blocks(), vec![a, b]);
        let _ = fs::remove_dir_all(&dir);
    }
}
