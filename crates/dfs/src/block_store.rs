//! Physical block storage behind the DFS namespace.

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dt_common::{Error, Result};
use parking_lot::RwLock;

/// Opaque identifier of one stored block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Storage for immutable blocks.
///
/// Blocks are written whole and never mutated — the datanode contract.
pub trait BlockStore: Send + Sync {
    /// Stores `data` as a new block.
    fn put(&self, data: &[u8]) -> Result<BlockId>;

    /// Reads `buf.len()` bytes starting at `offset` within the block.
    fn read_at(&self, id: BlockId, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Releases a block.
    fn delete(&self, id: BlockId) -> Result<()>;
}

/// Heap-backed block store; the default for tests and deterministic
/// experiments.
#[derive(Default)]
pub struct MemBlockStore {
    next_id: AtomicU64,
    blocks: RwLock<HashMap<BlockId, Arc<Vec<u8>>>>,
}

impl MemBlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live blocks (for leak tests).
    pub fn block_count(&self) -> usize {
        self.blocks.read().len()
    }
}

impl BlockStore for MemBlockStore {
    fn put(&self, data: &[u8]) -> Result<BlockId> {
        let id = BlockId(self.next_id.fetch_add(1, Ordering::Relaxed));
        self.blocks.write().insert(id, Arc::new(data.to_vec()));
        Ok(id)
    }

    fn read_at(&self, id: BlockId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let block = self
            .blocks
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::not_found(format!("block {id:?}")))?;
        let start = offset as usize;
        let end = start
            .checked_add(buf.len())
            .ok_or_else(|| Error::invalid("block read range overflow"))?;
        if end > block.len() {
            return Err(Error::invalid(format!(
                "read [{start}, {end}) beyond block of {} bytes",
                block.len()
            )));
        }
        buf.copy_from_slice(&block[start..end]);
        Ok(())
    }

    fn delete(&self, id: BlockId) -> Result<()> {
        self.blocks
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| Error::not_found(format!("block {id:?}")))
    }
}

/// Block store writing one file per block under a root directory; used by
/// benchmarks that want the OS page cache and real disk behaviour in play.
pub struct DiskBlockStore {
    root: PathBuf,
    next_id: AtomicU64,
}

impl DiskBlockStore {
    /// Creates the root directory if needed.
    pub fn new(root: PathBuf) -> Result<Self> {
        fs::create_dir_all(&root)?;
        Ok(DiskBlockStore {
            root,
            next_id: AtomicU64::new(0),
        })
    }

    fn path_of(&self, id: BlockId) -> PathBuf {
        self.root.join(format!("blk_{:016x}", id.0))
    }
}

impl BlockStore for DiskBlockStore {
    fn put(&self, data: &[u8]) -> Result<BlockId> {
        let id = BlockId(self.next_id.fetch_add(1, Ordering::Relaxed));
        fs::write(self.path_of(id), data)?;
        Ok(id)
    }

    fn read_at(&self, id: BlockId, offset: u64, buf: &mut [u8]) -> Result<()> {
        let mut f = fs::File::open(self.path_of(id))
            .map_err(|_| Error::not_found(format!("block {id:?}")))?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)?;
        Ok(())
    }

    fn delete(&self, id: BlockId) -> Result<()> {
        fs::remove_file(self.path_of(id))
            .map_err(|_| Error::not_found(format!("block {id:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_store_roundtrip_and_delete() {
        let store = MemBlockStore::new();
        let id = store.put(b"hello").unwrap();
        let mut buf = vec![0u8; 3];
        store.read_at(id, 1, &mut buf).unwrap();
        assert_eq!(&buf, b"ell");
        store.delete(id).unwrap();
        assert!(store.read_at(id, 0, &mut buf).is_err());
        assert_eq!(store.block_count(), 0);
    }

    #[test]
    fn mem_store_rejects_out_of_range() {
        let store = MemBlockStore::new();
        let id = store.put(b"abc").unwrap();
        let mut buf = vec![0u8; 4];
        assert!(store.read_at(id, 0, &mut buf).is_err());
        assert!(store.read_at(id, 3, &mut buf[..1]).is_err());
    }

    #[test]
    fn ids_are_unique() {
        let store = MemBlockStore::new();
        let a = store.put(b"a").unwrap();
        let b = store.put(b"b").unwrap();
        assert_ne!(a, b);
    }
}
