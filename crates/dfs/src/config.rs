//! DFS tuning knobs.

/// Configuration for a [`crate::Dfs`] instance.
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    /// Block ("chunk") size in bytes. The paper's clusters use 64 MB; tests
    /// shrink this to exercise multi-block paths.
    pub chunk_size: usize,
    /// Replication factor. Writes are accounted as `bytes × replication`
    /// in the I/O statistics, mirroring the write amplification an HDFS
    /// pipeline incurs. The paper's clusters use 3.
    pub replication: u32,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            chunk_size: 64 * 1024 * 1024,
            replication: 3,
        }
    }
}

impl DfsConfig {
    /// A configuration with tiny chunks and no replication amplification,
    /// for tests that want to exercise block boundaries.
    pub fn small_chunks(chunk_size: usize) -> Self {
        DfsConfig {
            chunk_size,
            replication: 1,
        }
    }
}
