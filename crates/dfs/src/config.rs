//! DFS tuning knobs.

use dt_common::RetryPolicy;

/// Configuration for a [`crate::Dfs`] instance.
#[derive(Debug, Clone, Copy)]
pub struct DfsConfig {
    /// Block ("chunk") size in bytes. The paper's clusters use 64 MB; tests
    /// shrink this to exercise multi-block paths.
    pub chunk_size: usize,
    /// Replication factor. Writes are accounted as `bytes × replication`
    /// in the I/O statistics, mirroring the write amplification an HDFS
    /// pipeline incurs. The paper's clusters use 3.
    pub replication: u32,
    /// Retry policy for transient block-I/O failures: the write pipeline
    /// retries each replica placement, and readers retry a replica before
    /// failing over to the next one (DESIGN.md §8).
    pub retry: RetryPolicy,
    /// Namenode edit-log entries between checkpoints. After this many
    /// journaled mutations, the namenode snapshots its full state and
    /// truncates the edit log (DESIGN.md §9). High by default so the edit
    /// log carries most of the recovery load in short-lived tests; lower
    /// it to exercise the checkpoint path.
    pub checkpoint_interval: u64,
    /// Capacity in bytes of the shared CRC-verified block cache
    /// (DESIGN.md §10). `0` disables caching; every read then pays a
    /// physical replica fetch.
    pub block_cache_bytes: u64,
    /// Synthetic per-replica block-placement latency, in microseconds.
    /// Models the datanode round-trip a real HDFS pipeline pays per copy,
    /// so write-path experiments observe pipeline overlap (parallel
    /// replication, the rewrite fan-out) even on hosts with few cores.
    /// `0` (the default) disables it; production paths never set it.
    pub put_latency_micros: u64,
}

impl Default for DfsConfig {
    fn default() -> Self {
        DfsConfig {
            chunk_size: 64 * 1024 * 1024,
            replication: 3,
            retry: RetryPolicy::default(),
            checkpoint_interval: 1024,
            block_cache_bytes: 64 * 1024 * 1024,
            put_latency_micros: 0,
        }
    }
}

impl DfsConfig {
    /// A configuration with tiny chunks and no replication amplification,
    /// for tests that want to exercise block boundaries.
    pub fn small_chunks(chunk_size: usize) -> Self {
        DfsConfig {
            chunk_size,
            replication: 1,
            ..DfsConfig::default()
        }
    }

    /// The same configuration with the block cache disabled — the oracle
    /// side of cache-coherence differential tests, and the "cache off"
    /// leg of benchmarks.
    pub fn without_block_cache(mut self) -> Self {
        self.block_cache_bytes = 0;
        self
    }
}
