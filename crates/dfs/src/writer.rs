//! Streaming, append-only file writer.

use std::sync::Arc;

use dt_common::Result;

use crate::namenode::{BlockGroup, FileMeta};
use crate::DfsInner;

/// Writes a new DFS file as a stream; the file becomes visible (and
/// immutable) only when [`DfsWriter::close`] succeeds. A dropped writer
/// aborts the file — nothing becomes visible, mimicking an HDFS client that
/// dies before `close()`.
pub struct DfsWriter {
    inner: Arc<DfsInner>,
    path: String,
    buf: Vec<u8>,
    meta: FileMeta,
    state: State,
}

#[derive(PartialEq)]
enum State {
    Open,
    Closed,
    Aborted,
}

impl DfsWriter {
    pub(crate) fn new(inner: Arc<DfsInner>, path: String) -> Self {
        let chunk = inner.config().chunk_size;
        DfsWriter {
            inner,
            path,
            buf: Vec::with_capacity(chunk.min(1 << 20)),
            meta: FileMeta::default(),
            state: State::Open,
        }
    }

    /// Appends bytes to the file.
    pub fn write_all(&mut self, mut data: &[u8]) -> Result<()> {
        debug_assert!(self.state == State::Open, "write after close");
        let chunk = self.inner.config().chunk_size;
        while !data.is_empty() {
            let room = chunk - self.buf.len();
            let take = room.min(data.len());
            self.buf.extend_from_slice(&data[..take]);
            data = &data[take..];
            if self.buf.len() == chunk {
                self.flush_block()?;
            }
        }
        Ok(())
    }

    /// Bytes written so far.
    pub fn position(&self) -> u64 {
        self.meta.len + self.buf.len() as u64
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let crc = dt_common::crc32::crc32(&self.buf);
        let written = self.buf.len() as u64;
        // Place one physical copy per configured replica, retrying each
        // placement on transient faults like an HDFS client rebuilding its
        // pipeline. Replicas are written concurrently (one scoped thread
        // per copy) rather than down a serial pipeline. If any placement
        // still fails, the ones that landed are released and the write
        // fails whole — a block group is never committed short.
        let replication = self.inner.config().replication.max(1);
        let policy = self.inner.config().retry;
        let latency = self.inner.config().put_latency_micros;
        let inner = &self.inner;
        let buf = &self.buf;
        let place = move || {
            if latency > 0 {
                std::thread::sleep(std::time::Duration::from_micros(latency));
            }
            inner.blocks().put(buf)
        };
        let results = if replication <= 1 {
            vec![policy.run(inner.health(), place)]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..replication)
                    .map(|_| s.spawn(move || policy.run(inner.health(), place)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or_else(|_| {
                            Err(dt_common::Error::internal("a replica writer panicked"))
                        })
                    })
                    .collect::<Vec<_>>()
            })
        };
        let mut replicas = Vec::with_capacity(replication as usize);
        let mut first_err = None;
        for result in results {
            match result {
                Ok(id) => replicas.push(id),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            for placed in replicas {
                let _ = self.inner.blocks().delete(placed);
            }
            return Err(e);
        }
        for _ in 0..replication {
            self.inner.stats().record_write(written);
        }
        if replication > 1 {
            self.inner.stats().record_parallel_replication();
            self.inner.health().record_parallel_replication();
        }
        self.meta.blocks.push(BlockGroup {
            replicas,
            len: written,
            crc,
        });
        self.meta.len += written;
        self.buf.clear();
        Ok(())
    }

    /// Seals the file, making it visible to readers.
    pub fn close(mut self) -> Result<()> {
        self.flush_block()?;
        let meta = std::mem::take(&mut self.meta);
        self.inner.commit_file(&self.path, meta)?;
        self.state = State::Closed;
        Ok(())
    }
}

impl Drop for DfsWriter {
    fn drop(&mut self) {
        if self.state == State::Open {
            // Abort: free any blocks already flushed, release the path.
            for group in &self.meta.blocks {
                for replica in &group.replicas {
                    let _ = self.inner.blocks().delete(*replica);
                }
            }
            self.inner.abort_file(&self.path);
            self.state = State::Aborted;
        }
    }
}
