//! An HDFS-like file system simulator.
//!
//! The paper stores Master Tables on HDFS, whose essential properties are:
//!
//! * **write-once files** — a file is the consistency unit; once closed it is
//!   immutable (no random writes),
//! * **chunked storage** — files are split into fixed-size blocks (the paper's
//!   clusters use 64 MB), each replicated,
//! * **high-throughput streaming reads and writes**, poor at point updates.
//!
//! [`Dfs`] reproduces exactly that contract. Two block stores are provided:
//! an in-memory store for tests and deterministic experiments, and a local
//! on-disk store for benchmarks that want real file I/O. Replication is
//! accounted in the I/O statistics (bytes × replication factor) rather than
//! shipped over a network — the paper's experiments depend on I/O volume, not
//! on network topology (see DESIGN.md §2).
//!
//! ```
//! use dt_dfs::{Dfs, DfsConfig};
//!
//! let dfs = Dfs::in_memory(DfsConfig::default());
//! let mut w = dfs.create("/warehouse/t/part-0").unwrap();
//! w.write_all(b"hello world").unwrap();
//! w.close().unwrap();
//!
//! let mut r = dfs.open("/warehouse/t/part-0").unwrap();
//! let mut buf = vec![0u8; 5];
//! r.read_at(6, &mut buf).unwrap();
//! assert_eq!(&buf, b"world");
//! ```

mod block_store;
mod cache;
mod config;
mod faulty;
mod journal;
mod namenode;
mod reader;
mod writer;

pub use block_store::{BlockId, BlockStore, DiskBlockStore, MemBlockStore};
pub use config::DfsConfig;
pub use dt_common::RetryPolicy;
pub use faulty::FaultyBlockStore;
pub use journal::{RecoveryReport, CHECKPOINT_FILE, CHECKPOINT_TMP, EDITS_FILE};
pub use reader::DfsReader;
pub use writer::DfsWriter;

use std::sync::Arc;

use cache::BlockCache;
use dt_common::fault::FaultPlan;
use dt_common::{Error, HealthCounters, IoStats, Result};
use namenode::{FileMeta, NameNode};

/// Handle to a DFS namespace plus its block storage.
///
/// Cheap to clone; clones share the same namespace.
#[derive(Clone)]
pub struct Dfs {
    inner: Arc<DfsInner>,
}

pub(crate) struct DfsInner {
    namenode: NameNode,
    blocks: Arc<dyn BlockStore>,
    config: DfsConfig,
    stats: IoStats,
    health: Arc<HealthCounters>,
    cache: BlockCache,
    /// Bumped on every namenode restart. Higher-level read caches (ORC
    /// footers) tag entries with the epoch they were filled under and
    /// treat any entry from an older epoch as stale, because recovery can
    /// roll the namespace back past commits (DESIGN.md §10).
    epoch: std::sync::atomic::AtomicU64,
}

impl Dfs {
    /// Creates a DFS backed by in-memory blocks.
    pub fn in_memory(config: DfsConfig) -> Self {
        Self::with_block_store(Arc::new(MemBlockStore::new()), config)
            .expect("fresh in-memory store has no journal to recover")
    }

    /// Creates a DFS whose blocks live as files under `root` on the local
    /// disk. Reopening a root that already holds a journal recovers the
    /// namespace from it.
    pub fn on_disk(root: impl Into<std::path::PathBuf>, config: DfsConfig) -> Result<Self> {
        Self::with_block_store(Arc::new(DiskBlockStore::new(root.into())?), config)
    }

    /// Creates an in-memory DFS whose block I/O is subject to `plan`'s
    /// injected faults (see [`FaultyBlockStore`]).
    pub fn in_memory_faulty(config: DfsConfig, plan: Arc<FaultPlan>) -> Self {
        Self::with_block_store(
            Arc::new(FaultyBlockStore::new(Arc::new(MemBlockStore::new()), plan)),
            config,
        )
        .expect("fresh in-memory store has no journal to recover")
    }

    /// Opens a DFS over an arbitrary block store, recovering the
    /// namespace from any edit log / checkpoint already persisted there.
    /// A store with no journal streams yields an empty namespace.
    pub fn with_block_store(blocks: Arc<dyn BlockStore>, config: DfsConfig) -> Result<Self> {
        let health = Arc::new(HealthCounters::new());
        let namenode = NameNode::recover(
            blocks.clone(),
            config.retry,
            health.clone(),
            config.checkpoint_interval,
        )?;
        Ok(Dfs {
            inner: Arc::new(DfsInner {
                namenode,
                blocks,
                config,
                stats: IoStats::new(),
                health,
                cache: BlockCache::new(config.block_cache_bytes),
                epoch: std::sync::atomic::AtomicU64::new(0),
            }),
        })
    }

    /// Simulates a namenode crash + restart: discards every piece of
    /// in-memory namespace state and rebuilds it from the durable edit
    /// log and checkpoint. Block data is untouched — datanodes survive a
    /// namenode restart. Pending writers are implicitly aborted (their
    /// placed blocks become orphans for [`Dfs::scrub`] to collect).
    /// Returns what recovery had to clean up.
    ///
    /// The block cache is purged *before* recovery: a reload can roll the
    /// namespace back past a commit (torn edit-log tail), after which a
    /// path may be recreated with different bytes — no pre-crash
    /// path→bytes association survives a restart.
    pub fn crash_and_reopen(&self) -> Result<RecoveryReport> {
        self.inner.cache.clear();
        self.inner
            .epoch
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.inner.namenode.reload()
    }

    /// The namespace epoch: bumped on every [`Dfs::crash_and_reopen`].
    /// Read caches layered above the DFS compare this against the epoch
    /// recorded at fill time to reject entries that predate a restart.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// The I/O counters for this file system (the Master tier in cost-model
    /// terms).
    pub fn stats(&self) -> &IoStats {
        &self.inner.stats
    }

    /// Self-healing counters for this tier: retries, failovers,
    /// quarantined and re-replicated replicas (see `SHOW HEALTH`).
    pub fn health(&self) -> &HealthCounters {
        &self.inner.health
    }

    /// Number of replicas currently quarantined and awaiting a
    /// [`Dfs::scrub`] pass.
    pub fn quarantined_replicas(&self) -> usize {
        self.inner.namenode.quarantined_count()
    }

    /// The configured chunk size in bytes.
    pub fn chunk_size(&self) -> usize {
        self.inner.config.chunk_size
    }

    /// Bytes currently resident in the shared block cache.
    pub fn block_cache_resident_bytes(&self) -> u64 {
        self.inner.cache.resident_bytes()
    }

    /// Entries currently resident in the shared block cache.
    pub fn block_cache_entries(&self) -> usize {
        self.inner.cache.entries()
    }

    /// Empties the shared block cache (benchmarks measuring cold reads).
    pub fn clear_block_cache(&self) {
        self.inner.cache.clear();
    }

    /// Creates a new file for writing. Fails if the path already exists
    /// (HDFS write-once semantics).
    pub fn create(&self, path: &str) -> Result<DfsWriter> {
        validate_path(path)?;
        self.inner.namenode.begin_create(path)?;
        Ok(DfsWriter::new(self.inner.clone(), path.to_string()))
    }

    /// Opens a closed file for reading.
    pub fn open(&self, path: &str) -> Result<DfsReader> {
        let meta = self.inner.namenode.get_closed(path)?;
        Ok(DfsReader::new(self.inner.clone(), path.to_string(), meta))
    }

    /// Length in bytes of a closed file.
    pub fn len(&self, path: &str) -> Result<u64> {
        Ok(self.inner.namenode.get_closed(path)?.len)
    }

    /// `true` iff a closed file exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        self.inner.namenode.get_closed(path).is_ok()
    }

    /// Lists closed files whose path starts with `prefix`, in lexicographic
    /// order.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.namenode.list(prefix)
    }

    /// Deletes a file, releasing every replica of every block. Deleting a
    /// missing file is an error. Replica release is best-effort: the
    /// namespace entry is already gone, so a failed unlink merely leaks an
    /// unreferenced block (reported via the first error).
    pub fn delete(&self, path: &str) -> Result<()> {
        let meta = self.inner.namenode.remove(path)?;
        self.inner.cache.invalidate_path(path);
        let mut first_err = None;
        for group in &meta.blocks {
            for replica in &group.replicas {
                if let Err(e) = self.inner.blocks.delete(*replica) {
                    first_err.get_or_insert(e);
                }
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Deletes every file under `prefix`; returns how many were removed.
    pub fn delete_prefix(&self, prefix: &str) -> Result<usize> {
        let files = self.list(prefix);
        for f in &files {
            self.delete(f)?;
        }
        Ok(files.len())
    }

    /// Atomically renames a closed file. Fails if the destination exists.
    pub fn rename(&self, from: &str, to: &str) -> Result<()> {
        validate_path(to)?;
        self.inner.namenode.rename(from, to)?;
        self.inner.cache.invalidate_path(from);
        Ok(())
    }

    /// Total bytes stored across all closed files (logical size, before
    /// replication).
    pub fn total_bytes(&self) -> u64 {
        self.inner.namenode.total_bytes()
    }

    /// Reads an entire file into memory.
    pub fn read_to_vec(&self, path: &str) -> Result<Vec<u8>> {
        let mut r = self.open(path)?;
        let len = r.len() as usize;
        let mut buf = vec![0u8; len];
        r.read_at(0, &mut buf)?;
        Ok(buf)
    }

    /// Creates a file holding exactly `data`.
    pub fn write_file(&self, path: &str, data: &[u8]) -> Result<()> {
        let mut w = self.create(path)?;
        w.write_all(data)?;
        w.close()
    }

    /// Integrity audit in the spirit of `hdfs fsck`: re-reads every
    /// replica of every block of every closed file and verifies its
    /// stored CRC-32.
    ///
    /// A block group with **no** healthy replica makes its file
    /// `corrupt`; a group with some but not all healthy replicas makes
    /// its file `under_replicated` (data still readable, durability
    /// degraded). [`Dfs::repair`] restores the latter.
    pub fn fsck(&self) -> Result<FsckReport> {
        let mut report = FsckReport::default();
        for path in self.list("/") {
            report.files += 1;
            let meta = self.inner.namenode.get_closed(&path)?;
            let mut file_corrupt = false;
            let mut file_under = false;
            for group in &meta.blocks {
                report.blocks += 1;
                let mut healthy = 0usize;
                for replica in &group.replicas {
                    let mut buf = vec![0u8; group.len as usize];
                    match self.inner.blocks.read_at(*replica, 0, &mut buf) {
                        Ok(()) if dt_common::crc32::crc32(&buf) == group.crc => healthy += 1,
                        _ => {}
                    }
                }
                if healthy == 0 {
                    file_corrupt = true;
                } else if healthy < group.replicas.len() {
                    file_under = true;
                }
            }
            if file_corrupt {
                report.corrupt.push(path.clone());
            } else if file_under {
                report.under_replicated.push(path.clone());
            }
        }
        // Orphan accounting only makes sense with no writer in flight: a
        // pending writer's placed-but-uncommitted blocks are legitimately
        // unreferenced until its commit.
        if self.inner.namenode.pending_count() == 0 {
            let referenced = self.inner.namenode.referenced_blocks();
            report.orphan_blocks = self
                .inner
                .blocks
                .list_blocks()
                .into_iter()
                .filter(|id| !referenced.contains(id))
                .count() as u64;
        }
        Ok(report)
    }

    /// Re-replication pass: for every block group with dead or rotted
    /// replicas, drops the bad copies and clones a healthy replica until
    /// the group is back at the configured replication factor. Groups
    /// with no healthy replica are reported as unrecoverable (the file
    /// stays listed so higher layers can decide what to drop).
    pub fn repair(&self) -> Result<RepairReport> {
        let mut report = RepairReport::default();
        let target = self.inner.config.replication.max(1) as usize;
        for path in self.list("/") {
            let mut meta = self.inner.namenode.get_closed(&path)?;
            let mut changed = false;
            let mut unrecoverable = false;
            for group in &mut meta.blocks {
                let mut healthy_bytes: Option<Vec<u8>> = None;
                let mut good = Vec::new();
                let mut bad = Vec::new();
                for replica in &group.replicas {
                    let mut buf = vec![0u8; group.len as usize];
                    match self.inner.blocks.read_at(*replica, 0, &mut buf) {
                        Ok(()) if dt_common::crc32::crc32(&buf) == group.crc => {
                            good.push(*replica);
                            healthy_bytes.get_or_insert(buf);
                        }
                        _ => bad.push(*replica),
                    }
                }
                if bad.is_empty() && good.len() >= target {
                    continue;
                }
                let Some(bytes) = healthy_bytes else {
                    unrecoverable = true;
                    continue;
                };
                for dead in bad {
                    // Best-effort: the replica may already be gone.
                    let _ = self.inner.blocks.delete(dead);
                }
                while good.len() < target {
                    let id = self.inner.blocks.put(&bytes)?;
                    self.inner.stats.record_write(group.len);
                    good.push(id);
                    report.replicas_recreated += 1;
                }
                group.replicas = good;
                changed = true;
            }
            if changed {
                self.inner.namenode.replace(&path, meta)?;
                self.inner.cache.invalidate_path(&path);
                report.files_repaired += 1;
            }
            if unrecoverable {
                report.unrecoverable.push(path);
            }
        }
        Ok(report)
    }

    /// Scrubber pass: [`Dfs::repair`] plus quarantine reclamation.
    ///
    /// Readers that hit a bad replica only *remove it from the serving
    /// set* (cheap, on the read path); restoring the replication factor
    /// and reclaiming the quarantined storage is this background pass's
    /// job, like the HDFS block scanner feeding the re-replication queue.
    pub fn scrub(&self) -> Result<ScrubReport> {
        let repair = self.repair()?;
        self.inner
            .health
            .record_rereplication(repair.replicas_recreated);
        let quarantined = self.inner.namenode.take_quarantined()?;
        let quarantined_purged = quarantined.len() as u64;
        for id in quarantined {
            // Best-effort: the replica is already out of every block
            // group, so a failed unlink merely leaks unreferenced bytes.
            let _ = self.inner.blocks.delete(id);
        }
        // Orphan collection: blocks no closed file (and no quarantine
        // entry) references — the leavings of crashed writers and torn
        // block puts. Only safe with no writer in flight.
        let mut orphans_collected = 0u64;
        if self.inner.namenode.pending_count() == 0 {
            let referenced = self.inner.namenode.referenced_blocks();
            for id in self.inner.blocks.list_blocks() {
                if !referenced.contains(&id) && self.inner.blocks.delete(id).is_ok() {
                    orphans_collected += 1;
                }
            }
        }
        Ok(ScrubReport {
            files_repaired: repair.files_repaired,
            replicas_recreated: repair.replicas_recreated,
            quarantined_purged,
            orphans_collected,
            unrecoverable: repair.unrecoverable,
        })
    }
}

/// Result of [`Dfs::scrub`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Files whose block lists were rewritten back to full replication.
    pub files_repaired: u64,
    /// Replicas cloned from healthy copies.
    pub replicas_recreated: u64,
    /// Quarantined replicas reclaimed from the block store.
    pub quarantined_purged: u64,
    /// Unreferenced blocks (crashed writers, torn puts) reclaimed.
    pub orphans_collected: u64,
    /// Paths with a block group that has no healthy replica left.
    pub unrecoverable: Vec<String>,
}

/// Result of [`Dfs::fsck`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Closed files audited.
    pub files: u64,
    /// Block groups audited.
    pub blocks: u64,
    /// Paths with at least one block group having **no** healthy replica.
    pub corrupt: Vec<String>,
    /// Paths readable today but with at least one block group below full
    /// replication.
    pub under_replicated: Vec<String>,
    /// Blocks in the store referenced by no closed file and no quarantine
    /// entry (counted only when no writer is in flight). Dead weight, not
    /// a danger: [`Dfs::scrub`] reclaims them.
    pub orphan_blocks: u64,
}

impl FsckReport {
    /// `true` iff every replica of every block verified. Orphans do not
    /// affect health — they are unreachable garbage, not data loss.
    pub fn healthy(&self) -> bool {
        self.corrupt.is_empty() && self.under_replicated.is_empty()
    }
}

/// Result of [`Dfs::repair`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Files whose block lists were rewritten.
    pub files_repaired: u64,
    /// Replicas cloned from healthy copies.
    pub replicas_recreated: u64,
    /// Paths with a block group that has no healthy replica left.
    pub unrecoverable: Vec<String>,
}

impl DfsInner {
    pub(crate) fn blocks(&self) -> &Arc<dyn BlockStore> {
        &self.blocks
    }

    pub(crate) fn config(&self) -> &DfsConfig {
        &self.config
    }

    pub(crate) fn stats(&self) -> &IoStats {
        &self.stats
    }

    pub(crate) fn health(&self) -> &HealthCounters {
        &self.health
    }

    pub(crate) fn cache(&self) -> &BlockCache {
        &self.cache
    }

    /// Reader-reported bad replica: drop it from the serving set (unless
    /// it is the last copy) and queue it for scrub. Returns `true` iff
    /// this call removed it.
    pub(crate) fn quarantine_replica(
        &self,
        path: &str,
        group_index: usize,
        replica: BlockId,
    ) -> bool {
        self.namenode.quarantine_replica(path, group_index, replica)
    }

    pub(crate) fn commit_file(&self, path: &str, meta: FileMeta) -> Result<()> {
        self.namenode.commit(path, meta)
    }

    pub(crate) fn abort_file(&self, path: &str) {
        self.namenode.abort(path);
    }
}

fn validate_path(path: &str) -> Result<()> {
    if !path.starts_with('/') || path.ends_with('/') || path.contains("//") {
        return Err(Error::invalid(format!(
            "invalid DFS path '{path}': must be absolute, with no trailing or doubled slashes"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let dfs = Dfs::in_memory(DfsConfig::small_chunks(8));
        let payload: Vec<u8> = (0..100u8).collect();
        dfs.write_file("/a/b", &payload).unwrap();
        assert_eq!(dfs.read_to_vec("/a/b").unwrap(), payload);
        assert_eq!(dfs.len("/a/b").unwrap(), 100);
    }

    #[test]
    fn create_existing_fails() {
        let dfs = Dfs::in_memory(DfsConfig::default());
        dfs.write_file("/x", b"1").unwrap();
        assert!(matches!(dfs.create("/x"), Err(Error::AlreadyExists(_))));
    }

    #[test]
    fn open_unclosed_file_fails() {
        let dfs = Dfs::in_memory(DfsConfig::default());
        let _w = dfs.create("/pending").unwrap();
        assert!(dfs.open("/pending").is_err());
        assert!(!dfs.exists("/pending"));
    }

    #[test]
    fn dropped_writer_aborts_creation() {
        let dfs = Dfs::in_memory(DfsConfig::default());
        {
            let mut w = dfs.create("/tmpfile").unwrap();
            w.write_all(b"partial").unwrap();
            // dropped without close()
        }
        assert!(!dfs.exists("/tmpfile"));
        // The path is free again.
        dfs.write_file("/tmpfile", b"done").unwrap();
        assert_eq!(dfs.read_to_vec("/tmpfile").unwrap(), b"done");
    }

    #[test]
    fn list_is_sorted_and_prefix_filtered() {
        let dfs = Dfs::in_memory(DfsConfig::default());
        dfs.write_file("/t/b", b"").unwrap();
        dfs.write_file("/t/a", b"").unwrap();
        dfs.write_file("/u/c", b"").unwrap();
        assert_eq!(
            dfs.list("/t/"),
            vec!["/t/a".to_string(), "/t/b".to_string()]
        );
    }

    #[test]
    fn delete_frees_path_and_delete_prefix_counts() {
        let dfs = Dfs::in_memory(DfsConfig::default());
        dfs.write_file("/d/1", b"x").unwrap();
        dfs.write_file("/d/2", b"y").unwrap();
        assert_eq!(dfs.delete_prefix("/d/").unwrap(), 2);
        assert!(!dfs.exists("/d/1"));
        assert!(dfs.delete("/d/1").is_err());
    }

    #[test]
    fn rename_moves_and_protects_destination() {
        let dfs = Dfs::in_memory(DfsConfig::default());
        dfs.write_file("/old", b"data").unwrap();
        dfs.write_file("/busy", b"").unwrap();
        assert!(dfs.rename("/old", "/busy").is_err());
        dfs.rename("/old", "/new").unwrap();
        assert!(!dfs.exists("/old"));
        assert_eq!(dfs.read_to_vec("/new").unwrap(), b"data");
    }

    #[test]
    fn replication_is_accounted_in_write_stats() {
        let cfg = DfsConfig {
            chunk_size: 1024,
            replication: 3,
            ..DfsConfig::default()
        };
        let dfs = Dfs::in_memory(cfg);
        dfs.write_file("/r", &[0u8; 100]).unwrap();
        assert_eq!(dfs.stats().snapshot().bytes_written, 300);
    }

    #[test]
    fn path_validation() {
        let dfs = Dfs::in_memory(DfsConfig::default());
        assert!(dfs.create("relative").is_err());
        assert!(dfs.create("/a//b").is_err());
        assert!(dfs.create("/a/").is_err());
    }

    #[test]
    fn total_bytes_tracks_files() {
        let dfs = Dfs::in_memory(DfsConfig::default());
        dfs.write_file("/a", &[0u8; 10]).unwrap();
        dfs.write_file("/b", &[0u8; 5]).unwrap();
        assert_eq!(dfs.total_bytes(), 15);
        dfs.delete("/a").unwrap();
        assert_eq!(dfs.total_bytes(), 5);
    }

    #[test]
    fn disk_backed_roundtrip() {
        let dir = std::env::temp_dir().join(format!("dt-dfs-test-{}", std::process::id()));
        let dfs = Dfs::on_disk(&dir, DfsConfig::small_chunks(16)).unwrap();
        let payload: Vec<u8> = (0..255u8).collect();
        dfs.write_file("/disk/file", &payload).unwrap();
        assert_eq!(dfs.read_to_vec("/disk/file").unwrap(), payload);
        dfs.delete("/disk/file").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
