//! The "Hive(HDFS)" baseline: ORC on the DFS, DML via full rewrite.

use std::ops::ControlFlow;

use dt_common::{Error, Result, Row, Schema};
use dt_dfs::Dfs;
use dt_orcfile::{ColumnPredicate, OrcReader, OrcWriter, WriterOptions};

/// A Hive-0.11-style table: a directory of immutable ORC files.
///
/// `UPDATE`/`DELETE` read every row and rewrite the whole table with
/// `INSERT OVERWRITE` — "the cost of a update operation is always
/// proportional to total amount of data instead of the amount of modified
/// data" (paper §II-B).
#[derive(Clone)]
pub struct HiveHdfsTable {
    dfs: Dfs,
    name: String,
    schema: Schema,
    writer_options: WriterOptions,
    rows_per_file: usize,
}

impl HiveHdfsTable {
    /// Creates an empty table.
    pub fn create(
        dfs: &Dfs,
        name: &str,
        schema: Schema,
        writer_options: WriterOptions,
        rows_per_file: usize,
    ) -> Result<Self> {
        if schema.is_empty() {
            return Err(Error::schema("table schema must have columns"));
        }
        Ok(HiveHdfsTable {
            dfs: dfs.clone(),
            name: name.to_string(),
            schema,
            writer_options,
            rows_per_file: rows_per_file.max(1),
        })
    }

    fn dir(&self) -> String {
        format!("/warehouse/{}", self.name)
    }

    fn files(&self) -> Vec<String> {
        self.dfs.list(&format!("{}/", self.dir()))
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Total bytes across the table's files.
    pub fn total_bytes(&self) -> Result<u64> {
        let mut total = 0;
        for f in self.files() {
            total += self.dfs.len(&f)?;
        }
        Ok(total)
    }

    fn next_file_path(&self) -> String {
        let n = self.files().len();
        format!("{}/part-{n:010}", self.dir())
    }

    /// Appends rows as new ORC files (`INSERT INTO`).
    pub fn insert_rows<I>(&self, rows: I) -> Result<u64>
    where
        I: IntoIterator<Item = Row>,
    {
        let mut written = 0u64;
        let mut writer: Option<OrcWriter> = None;
        let mut in_file = 0usize;
        for row in rows {
            if writer.is_none() {
                writer = Some(OrcWriter::create(
                    &self.dfs,
                    &self.next_file_path(),
                    self.schema.clone(),
                    self.writer_options.clone(),
                )?);
                in_file = 0;
            }
            writer.as_mut().expect("just created").write_row(row)?;
            written += 1;
            in_file += 1;
            if in_file >= self.rows_per_file {
                writer.take().expect("writer exists").finish()?;
            }
        }
        if let Some(w) = writer {
            w.finish()?;
        }
        Ok(written)
    }

    /// Replaces the table's content (`INSERT OVERWRITE TABLE`).
    pub fn insert_overwrite<I>(&self, rows: I) -> Result<u64>
    where
        I: IntoIterator<Item = Row>,
    {
        // Write to fresh paths after remembering the old ones, then drop
        // the old files — mirroring Hive's staging-directory move.
        let old = self.files();
        let mut staged = Vec::new();
        let mut written = 0u64;
        {
            let mut writer: Option<(String, OrcWriter)> = None;
            let mut in_file = 0usize;
            let mut seq = 0usize;
            for row in rows {
                if writer.is_none() {
                    let path = format!("{}/.staging-{seq:010}", self.dir());
                    seq += 1;
                    writer = Some((
                        path.clone(),
                        OrcWriter::create(
                            &self.dfs,
                            &path,
                            self.schema.clone(),
                            self.writer_options.clone(),
                        )?,
                    ));
                    in_file = 0;
                }
                let (_, w) = writer.as_mut().expect("just created");
                w.write_row(row)?;
                written += 1;
                in_file += 1;
                if in_file >= self.rows_per_file {
                    let (path, w) = writer.take().expect("writer exists");
                    w.finish()?;
                    staged.push(path);
                }
            }
            if let Some((path, w)) = writer {
                w.finish()?;
                staged.push(path);
            }
        }
        for f in &old {
            self.dfs.delete(f)?;
        }
        for (i, path) in staged.iter().enumerate() {
            self.dfs
                .rename(path, &format!("{}/part-{i:010}", self.dir()))?;
        }
        Ok(written)
    }

    /// Streams rows through `f`; `Break` stops the scan.
    pub fn for_each(
        &self,
        projection: Option<&[usize]>,
        predicates: Option<&[ColumnPredicate]>,
        mut f: impl FnMut(Row) -> Result<ControlFlow<()>>,
    ) -> Result<()> {
        for file in self.files() {
            let reader = OrcReader::open(&self.dfs, &file)?;
            for item in reader.rows(projection, predicates)? {
                let (_, row) = item?;
                if let ControlFlow::Break(()) = f(row)? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Materializes a scan.
    pub fn scan(
        &self,
        projection: Option<&[usize]>,
        predicates: Option<&[ColumnPredicate]>,
    ) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        self.for_each(projection, predicates, |row| {
            out.push(row);
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(out)
    }

    /// Row count.
    pub fn count(&self) -> Result<u64> {
        let mut n = 0;
        for file in self.files() {
            n += OrcReader::open(&self.dfs, &file)?.num_rows();
        }
        Ok(n)
    }

    /// `UPDATE … SET … WHERE …` via full rewrite. Returns
    /// `(rows matched, rows scanned)`.
    pub fn update(
        &self,
        predicate: impl Fn(&Row) -> bool,
        assignments: &[dualtable::Assignment<'_>],
    ) -> Result<(u64, u64)> {
        let mut matched = 0u64;
        let mut scanned = 0u64;
        let mut rows = Vec::new();
        self.for_each(None, None, |mut row| {
            scanned += 1;
            if predicate(&row) {
                matched += 1;
                for (col, f) in assignments {
                    let v = f(&row);
                    if !v.conforms_to(self.schema.field(*col).data_type) {
                        return Err(Error::schema(format!(
                            "UPDATE value {v:?} does not fit column '{}'",
                            self.schema.field(*col).name
                        )));
                    }
                    row[*col] = v;
                }
            }
            rows.push(row);
            Ok(ControlFlow::Continue(()))
        })?;
        self.insert_overwrite(rows)?;
        Ok((matched, scanned))
    }

    /// `DELETE FROM … WHERE …` via full rewrite of the surviving rows.
    pub fn delete(&self, predicate: impl Fn(&Row) -> bool) -> Result<(u64, u64)> {
        let mut matched = 0u64;
        let mut scanned = 0u64;
        let mut rows = Vec::new();
        self.for_each(None, None, |row| {
            scanned += 1;
            if predicate(&row) {
                matched += 1;
            } else {
                rows.push(row);
            }
            Ok(ControlFlow::Continue(()))
        })?;
        self.insert_overwrite(rows)?;
        Ok((matched, scanned))
    }

    /// Drops all storage.
    pub fn drop_table(self) -> Result<()> {
        self.dfs.delete_prefix(&format!("{}/", self.dir()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::DataType;
    use dt_common::Value;
    use dt_dfs::DfsConfig;

    fn table(n: i64) -> HiveHdfsTable {
        let dfs = Dfs::in_memory(DfsConfig::default());
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)]);
        let t = HiveHdfsTable::create(&dfs, "t", schema, WriterOptions::default(), 32).unwrap();
        t.insert_rows((0..n).map(|i| vec![Value::Int64(i), Value::Int64(0)]))
            .unwrap();
        t
    }

    #[test]
    fn insert_scan_count() {
        let t = table(100);
        assert_eq!(t.count().unwrap(), 100);
        let rows = t.scan(Some(&[0]), None).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[42][0], Value::Int64(42));
    }

    #[test]
    fn update_rewrites_everything() {
        let t = table(100);
        let before = t.total_bytes().unwrap();
        let (matched, scanned) = t
            .update(
                |r| r[0].as_i64().unwrap() == 5,
                &[(1, Box::new(|_| Value::Int64(99)))],
            )
            .unwrap();
        assert_eq!(matched, 1);
        assert_eq!(scanned, 100);
        // Whole table rewritten: same row count, similar size.
        assert_eq!(t.count().unwrap(), 100);
        assert!(t.total_bytes().unwrap() > before / 2);
        let rows = t.scan(None, None).unwrap();
        assert_eq!(rows[5][1], Value::Int64(99));
        assert_eq!(rows[6][1], Value::Int64(0));
    }

    #[test]
    fn delete_keeps_survivors() {
        let t = table(50);
        let (matched, _) = t.delete(|r| r[0].as_i64().unwrap() % 2 == 0).unwrap();
        assert_eq!(matched, 25);
        assert_eq!(t.count().unwrap(), 25);
        assert!(t
            .scan(None, None)
            .unwrap()
            .iter()
            .all(|r| r[0].as_i64().unwrap() % 2 == 1));
    }

    #[test]
    fn insert_overwrite_replaces() {
        let t = table(50);
        t.insert_overwrite((0..5).map(|i| vec![Value::Int64(i + 100), Value::Int64(1)]))
            .unwrap();
        assert_eq!(t.count().unwrap(), 5);
        assert_eq!(t.scan(None, None).unwrap()[0][0], Value::Int64(100));
    }

    #[test]
    fn overwrite_with_empty_result_empties_table() {
        let t = table(10);
        t.delete(|_| true).unwrap();
        assert_eq!(t.count().unwrap(), 0);
        // Table still usable afterwards.
        t.insert_rows(vec![vec![Value::Int64(1), Value::Int64(2)]])
            .unwrap();
        assert_eq!(t.count().unwrap(), 1);
    }
}
