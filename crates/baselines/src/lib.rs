//! Comparator storage systems from the paper's evaluation (§VI).
//!
//! * [`HiveHdfsTable`] — "Hive(HDFS)": ORC files on the DFS; UPDATE and
//!   DELETE are implemented the only way stock Hive 0.11 could — a full
//!   `INSERT OVERWRITE` rewrite of the table, regardless of how little data
//!   changed. The paper's primary baseline.
//! * [`HiveHbaseTable`] — "Hive(HBase)": the whole table lives in the KV
//!   store. Row-level writes are cheap, but scans pay the LSM read path —
//!   the paper finds it "much slower than Hive itself and DualTable" for
//!   reads (Figure 11).
//! * [`HiveAcidTable`] — the HIVE-5317 base+delta design the paper compares
//!   against conceptually (§V-C): both base and delta live on the DFS;
//!   every transaction appends a delta file holding *whole updated records*;
//!   reads merge-sort base with all deltas; *minor* compaction folds deltas
//!   together, *major* compaction folds them into the base.
//!
//! All three share the substrate crates with DualTable, so experiment
//! comparisons measure the storage model, not the implementation quality.

mod hive_acid;
mod hive_hbase;
mod hive_hdfs;

pub use hive_acid::HiveAcidTable;
pub use hive_hbase::HiveHbaseTable;
pub use hive_hdfs::HiveHdfsTable;
