//! The "Hive(HBase)" baseline: the whole table in the KV store.

use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use dt_common::codec::{decode_value, encode_value};
use dt_common::{Error, Result, Row, Schema, Value};
use dt_kvstore::{KvCluster, Store};

/// A Hive table backed entirely by the KV store (HBase storage handler).
///
/// Row key = an auto-incrementing 8-byte id; every column is one qualifier.
/// Point writes are cheap (the LSM absorbs them), but full scans pay the
/// merge across memtable and SSTables plus per-cell decoding — the
/// batch-read weakness the paper attributes to HBase-backed Hive.
#[derive(Clone)]
pub struct HiveHbaseTable {
    kv: KvCluster,
    store: Store,
    name: String,
    schema: Schema,
    next_row_id: Arc<AtomicU64>,
}

impl HiveHbaseTable {
    /// Creates an empty table.
    pub fn create(kv: &KvCluster, name: &str, schema: Schema) -> Result<Self> {
        if schema.is_empty() {
            return Err(Error::schema("table schema must have columns"));
        }
        if schema.len() >= 0xFFFF {
            return Err(Error::schema("too many columns"));
        }
        let store = kv.create_table(&format!("hive_{name}"))?;
        Ok(HiveHbaseTable {
            kv: kv.clone(),
            store,
            name: name.to_string(),
            schema,
            next_row_id: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn qual(col: usize) -> [u8; 2] {
        (col as u16).to_be_bytes()
    }

    /// Appends rows.
    pub fn insert_rows<I>(&self, rows: I) -> Result<u64>
    where
        I: IntoIterator<Item = Row>,
    {
        let mut written = 0u64;
        let mut batch = Vec::new();
        for row in rows {
            self.schema.check_row(&row)?;
            let id = self.next_row_id.fetch_add(1, Ordering::Relaxed);
            let key = id.to_be_bytes().to_vec();
            for (col, value) in row.iter().enumerate() {
                batch.push((key.clone(), Self::qual(col).to_vec(), encode_value(value)));
            }
            written += 1;
            if batch.len() >= 4096 {
                self.store.put_batch(std::mem::take(&mut batch))?;
            }
        }
        if !batch.is_empty() {
            self.store.put_batch(batch)?;
        }
        Ok(written)
    }

    /// Replaces the table content.
    pub fn insert_overwrite<I>(&self, rows: I) -> Result<u64>
    where
        I: IntoIterator<Item = Row>,
    {
        self.truncate()?;
        self.insert_rows(rows)
    }

    fn truncate(&self) -> Result<()> {
        // Row tombstones per existing row: HBase's truncate drops the
        // region files, but issuing deletes exercises the same API surface
        // our scans understand; resetting the row-id counter is safe since
        // old ids are tombstoned.
        let rows: Vec<Vec<u8>> = self
            .store
            .scan(None, None)?
            .map(|r| r.map(|e| e.row))
            .collect::<Result<_>>()?;
        for row in rows {
            self.store.delete_row(&row)?;
        }
        Ok(())
    }

    /// Streams rows (with their internal row ids) through `f`.
    pub fn for_each_entry(
        &self,
        mut f: impl FnMut(u64, Row) -> Result<ControlFlow<()>>,
    ) -> Result<()> {
        for entry in self.store.scan(None, None)? {
            let entry = entry?;
            let id_bytes: [u8; 8] = entry
                .row
                .as_slice()
                .try_into()
                .map_err(|_| Error::corrupt("hive-hbase row key is not an 8-byte id"))?;
            let id = u64::from_be_bytes(id_bytes);
            let mut row: Row = vec![Value::Null; self.schema.len()];
            for (qual, _, bytes) in &entry.cells {
                let q: [u8; 2] = qual
                    .as_slice()
                    .try_into()
                    .map_err(|_| Error::corrupt("bad qualifier"))?;
                let col = u16::from_be_bytes(q) as usize;
                if col < row.len() {
                    row[col] = decode_value(bytes)?;
                }
            }
            if let ControlFlow::Break(()) = f(id, row)? {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Materializes a scan (projection applied after decoding — the HBase
    /// handler cannot skip column data the way ORC does).
    pub fn scan(&self, projection: Option<&[usize]>) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        self.for_each_entry(|_, row| {
            out.push(match projection {
                Some(p) => p.iter().map(|&c| row[c].clone()).collect(),
                None => row,
            });
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(out)
    }

    /// Row count.
    pub fn count(&self) -> Result<u64> {
        let mut n = 0u64;
        self.for_each_entry(|_, _| {
            n += 1;
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(n)
    }

    /// Row-level UPDATE: scan, then write only the changed cells (the
    /// "EDIT plan implemented with user defined functions" the paper uses
    /// for HBase-backed Hive in §VI-B).
    pub fn update(
        &self,
        predicate: impl Fn(&Row) -> bool,
        assignments: &[dualtable::Assignment<'_>],
    ) -> Result<(u64, u64)> {
        let mut matched = 0u64;
        let mut scanned = 0u64;
        let mut batch = Vec::new();
        self.for_each_entry(|id, row| {
            scanned += 1;
            if predicate(&row) {
                matched += 1;
                let key = id.to_be_bytes().to_vec();
                for (col, f) in assignments {
                    let v = f(&row);
                    if !v.conforms_to(self.schema.field(*col).data_type) {
                        return Err(Error::schema(format!(
                            "UPDATE value {v:?} does not fit column '{}'",
                            self.schema.field(*col).name
                        )));
                    }
                    batch.push((key.clone(), Self::qual(*col).to_vec(), encode_value(&v)));
                }
            }
            Ok(ControlFlow::Continue(()))
        })?;
        for chunk in batch.chunks(4096) {
            self.store.put_batch(chunk.to_vec())?;
        }
        Ok((matched, scanned))
    }

    /// Row-level DELETE via row tombstones.
    pub fn delete(&self, predicate: impl Fn(&Row) -> bool) -> Result<(u64, u64)> {
        let mut matched = 0u64;
        let mut scanned = 0u64;
        let mut victims = Vec::new();
        self.for_each_entry(|id, row| {
            scanned += 1;
            if predicate(&row) {
                matched += 1;
                victims.push(id);
            }
            Ok(ControlFlow::Continue(()))
        })?;
        for id in victims {
            self.store.delete_row(&id.to_be_bytes())?;
        }
        Ok((matched, scanned))
    }

    /// Drops the table storage.
    pub fn drop_table(self) -> Result<()> {
        self.kv.drop_table(&format!("hive_{}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::DataType;
    use dt_kvstore::KvConfig;

    fn table(n: i64) -> HiveHbaseTable {
        let kv = KvCluster::in_memory(KvConfig::default());
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Utf8)]);
        let t = HiveHbaseTable::create(&kv, "t", schema).unwrap();
        t.insert_rows((0..n).map(|i| vec![Value::Int64(i), Value::from("x")]))
            .unwrap();
        t
    }

    #[test]
    fn insert_scan_roundtrip() {
        let t = table(100);
        assert_eq!(t.count().unwrap(), 100);
        let rows = t.scan(None).unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[7][0], Value::Int64(7));
        let proj = t.scan(Some(&[1])).unwrap();
        assert_eq!(proj[0], vec![Value::from("x")]);
    }

    #[test]
    fn update_changes_only_matches() {
        let t = table(20);
        let (m, s) = t
            .update(
                |r| r[0].as_i64().unwrap() < 3,
                &[(1, Box::new(|_| Value::from("changed")))],
            )
            .unwrap();
        assert_eq!((m, s), (3, 20));
        let rows = t.scan(None).unwrap();
        assert_eq!(rows[2][1], Value::from("changed"));
        assert_eq!(rows[3][1], Value::from("x"));
    }

    #[test]
    fn delete_removes_rows() {
        let t = table(20);
        let (m, _) = t.delete(|r| r[0].as_i64().unwrap() % 4 == 0).unwrap();
        assert_eq!(m, 5);
        assert_eq!(t.count().unwrap(), 15);
    }

    #[test]
    fn insert_overwrite_resets_content() {
        let t = table(10);
        t.insert_overwrite((100..103).map(|i| vec![Value::Int64(i), Value::from("y")]))
            .unwrap();
        assert_eq!(t.count().unwrap(), 3);
        let rows = t.scan(None).unwrap();
        assert!(rows.iter().all(|r| r[1] == Value::from("y")));
    }

    #[test]
    fn nulls_roundtrip() {
        let kv = KvCluster::in_memory(KvConfig::default());
        let schema = Schema::from_pairs(&[("a", DataType::Int64), ("b", DataType::Utf8)]);
        let t = HiveHbaseTable::create(&kv, "n", schema).unwrap();
        t.insert_rows(vec![vec![Value::Null, Value::from("only-b")]])
            .unwrap();
        let rows = t.scan(None).unwrap();
        assert_eq!(rows[0][0], Value::Null);
        assert_eq!(rows[0][1], Value::from("only-b"));
    }
}
