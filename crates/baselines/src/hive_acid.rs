//! The Hive ACID (HIVE-5317) base+delta design the paper compares against
//! conceptually in §V-C.
//!
//! Differences from DualTable, as the paper lists them:
//!
//! * both base and delta tables live in the *same* storage format on the
//!   DFS (no hybrid tier) — so delta reads are sequential scans, not
//!   random lookups;
//! * every transaction appends a **new delta file**, and the write puts
//!   the **whole updated record** into it "even if only one cell is
//!   changed";
//! * reads merge-sort the base with *all* delta files;
//! * no cost model: updates always go to deltas;
//! * *minor* compaction merges all deltas into one delta, *major*
//!   compaction folds them into the base.

use std::collections::HashMap;
use std::ops::ControlFlow;

use dt_common::{DataType, Error, Field, Result, Row, Schema, Value};
use dt_dfs::Dfs;
use dt_orcfile::{OrcReader, OrcWriter, WriterOptions};
use parking_lot::Mutex;
use std::sync::Arc;

const OP_UPDATE: i64 = 0;
const OP_DELETE: i64 = 1;

/// A base+delta table in the style of Hive's ACID design.
#[derive(Clone)]
pub struct HiveAcidTable {
    dfs: Dfs,
    name: String,
    schema: Schema,
    delta_schema: Schema,
    writer_options: WriterOptions,
    rows_per_file: usize,
    txn: Arc<Mutex<u64>>,
}

/// A resolved delta action for one base row.
#[derive(Clone)]
enum DeltaAction {
    Update(Row),
    Delete,
}

impl HiveAcidTable {
    /// Creates an empty table.
    pub fn create(
        dfs: &Dfs,
        name: &str,
        schema: Schema,
        writer_options: WriterOptions,
        rows_per_file: usize,
    ) -> Result<Self> {
        if schema.is_empty() {
            return Err(Error::schema("table schema must have columns"));
        }
        // Delta rows: operation, original row id, then the full record.
        let mut fields = vec![
            Field::new("__op", DataType::Int64),
            Field::new("__orig_id", DataType::Int64),
        ];
        fields.extend(schema.fields().iter().cloned());
        let delta_schema = Schema::new(
            fields
                .into_iter()
                .enumerate()
                .map(|(i, f)| {
                    if i < 2 {
                        f
                    } else {
                        Field::new(format!("__c_{}", f.name), f.data_type)
                    }
                })
                .collect(),
        )?;
        Ok(HiveAcidTable {
            dfs: dfs.clone(),
            name: name.to_string(),
            schema,
            delta_schema,
            writer_options,
            rows_per_file: rows_per_file.max(1),
            txn: Arc::new(Mutex::new(0)),
        })
    }

    fn base_dir(&self) -> String {
        format!("/warehouse/{}/base", self.name)
    }

    fn delta_dir(&self) -> String {
        format!("/warehouse/{}/delta", self.name)
    }

    fn base_files(&self) -> Vec<String> {
        self.dfs.list(&format!("{}/", self.base_dir()))
    }

    fn delta_files(&self) -> Vec<String> {
        self.dfs.list(&format!("{}/", self.delta_dir()))
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live delta files (compaction experiments).
    pub fn delta_file_count(&self) -> usize {
        self.delta_files().len()
    }

    /// Appends rows as new base files.
    pub fn insert_rows<I>(&self, rows: I) -> Result<u64>
    where
        I: IntoIterator<Item = Row>,
    {
        let mut written = 0u64;
        let mut writer: Option<OrcWriter> = None;
        let mut in_file = 0usize;
        let mut seq = self.base_files().len();
        for row in rows {
            self.schema.check_row(&row)?;
            if writer.is_none() {
                writer = Some(OrcWriter::create(
                    &self.dfs,
                    &format!("{}/part-{seq:010}", self.base_dir()),
                    self.schema.clone(),
                    self.writer_options.clone(),
                )?);
                seq += 1;
                in_file = 0;
            }
            writer.as_mut().expect("just created").write_row(row)?;
            written += 1;
            in_file += 1;
            if in_file >= self.rows_per_file {
                writer.take().expect("exists").finish()?;
            }
        }
        if let Some(w) = writer {
            w.finish()?;
        }
        Ok(written)
    }

    /// Loads every delta file and resolves the latest action per base row.
    /// This is the sequential delta scan the paper contrasts with
    /// DualTable's random HBase access.
    fn load_deltas(&self) -> Result<HashMap<u64, DeltaAction>> {
        let mut actions: HashMap<u64, (u64, DeltaAction)> = HashMap::new();
        for file in self.delta_files() {
            // Delta files are named delta-{txn:010}; later txns win.
            let txn: u64 = file
                .rsplit('-')
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| Error::corrupt(format!("bad delta file name '{file}'")))?;
            let reader = OrcReader::open(&self.dfs, &file)?;
            for item in reader.rows(None, None)? {
                let (_, row) = item?;
                let op = row[0]
                    .as_i64()
                    .ok_or_else(|| Error::corrupt("delta op not an integer"))?;
                let orig = row[1]
                    .as_i64()
                    .ok_or_else(|| Error::corrupt("delta orig id not an integer"))?
                    as u64;
                let action = match op {
                    OP_UPDATE => DeltaAction::Update(row[2..].to_vec()),
                    OP_DELETE => DeltaAction::Delete,
                    other => return Err(Error::corrupt(format!("unknown delta op {other}"))),
                };
                match actions.get(&orig) {
                    Some((t, _)) if *t >= txn => {}
                    _ => {
                        actions.insert(orig, (txn, action));
                    }
                }
            }
        }
        Ok(actions.into_iter().map(|(k, (_, a))| (k, a)).collect())
    }

    /// Streams the merged (base ⋈ deltas) view through `f`.
    pub fn for_each(&self, mut f: impl FnMut(Row) -> Result<ControlFlow<()>>) -> Result<()> {
        self.for_each_identified(|_, row| f(row))
    }

    fn for_each_identified(
        &self,
        mut f: impl FnMut(u64, Row) -> Result<ControlFlow<()>>,
    ) -> Result<()> {
        let deltas = self.load_deltas()?;
        for (file_idx, file) in self.base_files().into_iter().enumerate() {
            let reader = OrcReader::open(&self.dfs, &file)?;
            for item in reader.rows(None, None)? {
                let (row_number, row) = item?;
                let id = ((file_idx as u64) << 32) | row_number;
                let row = match deltas.get(&id) {
                    Some(DeltaAction::Delete) => continue,
                    Some(DeltaAction::Update(updated)) => updated.clone(),
                    None => row,
                };
                if let ControlFlow::Break(()) = f(id, row)? {
                    return Ok(());
                }
            }
        }
        Ok(())
    }

    /// Materializes the merged view.
    pub fn scan(&self) -> Result<Vec<Row>> {
        let mut out = Vec::new();
        self.for_each(|row| {
            out.push(row);
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(out)
    }

    /// Row count of the merged view.
    pub fn count(&self) -> Result<u64> {
        let mut n = 0;
        self.for_each(|_| {
            n += 1;
            Ok(ControlFlow::Continue(()))
        })?;
        Ok(n)
    }

    fn next_delta_writer(&self) -> Result<OrcWriter> {
        let mut txn = self.txn.lock();
        *txn += 1;
        OrcWriter::create(
            &self.dfs,
            &format!("{}/delta-{:010}", self.delta_dir(), *txn),
            self.delta_schema.clone(),
            self.writer_options.clone(),
        )
    }

    /// UPDATE: one transaction = one new delta file holding the whole
    /// updated records.
    pub fn update(
        &self,
        predicate: impl Fn(&Row) -> bool,
        assignments: &[dualtable::Assignment<'_>],
    ) -> Result<(u64, u64)> {
        let mut matched = 0u64;
        let mut scanned = 0u64;
        let mut delta_rows: Vec<Row> = Vec::new();
        self.for_each_identified(|id, mut row| {
            scanned += 1;
            if predicate(&row) {
                matched += 1;
                for (col, f) in assignments {
                    let v = f(&row);
                    if !v.conforms_to(self.schema.field(*col).data_type) {
                        return Err(Error::schema(format!(
                            "UPDATE value {v:?} does not fit column '{}'",
                            self.schema.field(*col).name
                        )));
                    }
                    row[*col] = v;
                }
                let mut delta = vec![Value::Int64(OP_UPDATE), Value::Int64(id as i64)];
                delta.extend(row);
                delta_rows.push(delta);
            }
            Ok(ControlFlow::Continue(()))
        })?;
        if !delta_rows.is_empty() {
            let mut w = self.next_delta_writer()?;
            w.write_rows(delta_rows)?;
            w.finish()?;
        }
        Ok((matched, scanned))
    }

    /// DELETE: one transaction = one delta file of delete records.
    pub fn delete(&self, predicate: impl Fn(&Row) -> bool) -> Result<(u64, u64)> {
        let mut matched = 0u64;
        let mut scanned = 0u64;
        let mut delta_rows: Vec<Row> = Vec::new();
        let null_row: Row = vec![Value::Null; self.schema.len()];
        self.for_each_identified(|id, row| {
            scanned += 1;
            if predicate(&row) {
                matched += 1;
                let mut delta = vec![Value::Int64(OP_DELETE), Value::Int64(id as i64)];
                delta.extend(null_row.clone());
                delta_rows.push(delta);
            }
            Ok(ControlFlow::Continue(()))
        })?;
        if !delta_rows.is_empty() {
            let mut w = self.next_delta_writer()?;
            w.write_rows(delta_rows)?;
            w.finish()?;
        }
        Ok((matched, scanned))
    }

    /// Minor compaction: merge every delta into a single delta file.
    pub fn minor_compact(&self) -> Result<()> {
        let old = self.delta_files();
        if old.len() <= 1 {
            return Ok(());
        }
        let actions = self.load_deltas()?;
        let mut w = self.next_delta_writer()?;
        let mut ids: Vec<u64> = actions.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let mut delta = match &actions[&id] {
                DeltaAction::Update(row) => {
                    let mut d = vec![Value::Int64(OP_UPDATE), Value::Int64(id as i64)];
                    d.extend(row.clone());
                    d
                }
                DeltaAction::Delete => {
                    let mut d = vec![Value::Int64(OP_DELETE), Value::Int64(id as i64)];
                    d.extend(vec![Value::Null; self.schema.len()]);
                    d
                }
            };
            debug_assert_eq!(delta.len(), self.delta_schema.len());
            w.write_row(std::mem::take(&mut delta))?;
        }
        w.finish()?;
        for f in old {
            self.dfs.delete(&f)?;
        }
        Ok(())
    }

    /// Major compaction: fold the deltas into a fresh base.
    pub fn major_compact(&self) -> Result<()> {
        let mut rows = Vec::new();
        self.for_each(|row| {
            rows.push(row);
            Ok(ControlFlow::Continue(()))
        })?;
        let old_base = self.base_files();
        let old_delta = self.delta_files();
        // Stage the new base beside the old one, then swap.
        let staging = format!("/warehouse/{}/.base-staging", self.name);
        {
            let mut writer: Option<OrcWriter> = None;
            let mut in_file = 0usize;
            let mut seq = 0usize;
            for row in rows {
                if writer.is_none() {
                    writer = Some(OrcWriter::create(
                        &self.dfs,
                        &format!("{staging}/part-{seq:010}"),
                        self.schema.clone(),
                        self.writer_options.clone(),
                    )?);
                    seq += 1;
                    in_file = 0;
                }
                writer.as_mut().expect("just created").write_row(row)?;
                in_file += 1;
                if in_file >= self.rows_per_file {
                    writer.take().expect("exists").finish()?;
                }
            }
            if let Some(w) = writer {
                w.finish()?;
            }
        }
        for f in old_base.iter().chain(&old_delta) {
            self.dfs.delete(f)?;
        }
        for f in self.dfs.list(&format!("{staging}/")) {
            let tail = f.rsplit('/').next().expect("file name");
            self.dfs
                .rename(&f, &format!("{}/{tail}", self.base_dir()))?;
        }
        Ok(())
    }

    /// Drops all storage.
    pub fn drop_table(self) -> Result<()> {
        self.dfs
            .delete_prefix(&format!("/warehouse/{}/", self.name))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::DataType;
    use dt_dfs::DfsConfig;

    fn table(n: i64) -> HiveAcidTable {
        let dfs = Dfs::in_memory(DfsConfig::default());
        let schema = Schema::from_pairs(&[("id", DataType::Int64), ("v", DataType::Int64)]);
        let t = HiveAcidTable::create(&dfs, "t", schema, WriterOptions::default(), 32).unwrap();
        t.insert_rows((0..n).map(|i| vec![Value::Int64(i), Value::Int64(0)]))
            .unwrap();
        t
    }

    #[test]
    fn update_goes_to_delta_and_merges_on_read() {
        let t = table(100);
        let (m, s) = t
            .update(
                |r| r[0].as_i64().unwrap() < 10,
                &[(1, Box::new(|_| Value::Int64(7)))],
            )
            .unwrap();
        assert_eq!((m, s), (10, 100));
        assert_eq!(t.delta_file_count(), 1);
        let rows = t.scan().unwrap();
        assert_eq!(rows.len(), 100);
        assert_eq!(rows[9][1], Value::Int64(7));
        assert_eq!(rows[10][1], Value::Int64(0));
    }

    #[test]
    fn each_transaction_creates_a_delta() {
        let t = table(50);
        for i in 0..5 {
            t.update(
                move |r| r[0].as_i64().unwrap() == i,
                &[(1, Box::new(move |_| Value::Int64(i * 10)))],
            )
            .unwrap();
        }
        assert_eq!(t.delta_file_count(), 5);
        // Latest txn wins on overlapping updates.
        t.update(
            |r| r[0].as_i64().unwrap() == 0,
            &[(1, Box::new(|_| Value::Int64(999)))],
        )
        .unwrap();
        assert_eq!(t.scan().unwrap()[0][1], Value::Int64(999));
    }

    #[test]
    fn delete_and_minor_compact() {
        let t = table(40);
        t.delete(|r| r[0].as_i64().unwrap() % 2 == 0).unwrap();
        t.update(
            |r| r[0].as_i64().unwrap() == 1,
            &[(1, Box::new(|_| Value::Int64(-1)))],
        )
        .unwrap();
        assert_eq!(t.delta_file_count(), 2);
        assert_eq!(t.count().unwrap(), 20);

        t.minor_compact().unwrap();
        assert_eq!(t.delta_file_count(), 1);
        assert_eq!(t.count().unwrap(), 20);
        assert_eq!(t.scan().unwrap()[0][1], Value::Int64(-1));
    }

    #[test]
    fn major_compact_folds_into_base() {
        let t = table(30);
        t.delete(|r| r[0].as_i64().unwrap() >= 20).unwrap();
        t.update(
            |r| r[0].as_i64().unwrap() == 5,
            &[(1, Box::new(|_| Value::Int64(5)))],
        )
        .unwrap();
        t.major_compact().unwrap();
        assert_eq!(t.delta_file_count(), 0);
        let rows = t.scan().unwrap();
        assert_eq!(rows.len(), 20);
        assert_eq!(rows[5][1], Value::Int64(5));
        // Further DML still works on the new base.
        t.delete(|r| r[0].as_i64().unwrap() == 0).unwrap();
        assert_eq!(t.count().unwrap(), 19);
    }

    #[test]
    fn update_after_delete_is_invisible() {
        let t = table(10);
        t.delete(|r| r[0].as_i64().unwrap() == 3).unwrap();
        // Row 3 no longer visible, so this matches nothing.
        let (m, _) = t
            .update(
                |r| r[0].as_i64().unwrap() == 3,
                &[(1, Box::new(|_| Value::Int64(1)))],
            )
            .unwrap();
        assert_eq!(m, 0);
        assert_eq!(t.count().unwrap(), 9);
    }
}
