//! `dualtabled`: a served front door for the DualTable engine
//! (DESIGN.md §14).
//!
//! The library crates execute statements in-process; this crate puts a
//! TCP server in front of them with the robustness machinery a shared
//! daemon needs:
//!
//! * **Admission control** — a bounded dispatch queue
//!   ([`dt_engine::ServicePool`]); overload turns into a retryable
//!   `SERVER_BUSY` refusal, never an unbounded backlog.
//! * **Per-statement deadlines** — a [`dt_common::Deadline`] token
//!   threaded through [`dt_hiveql::Session`] aborts long scans at
//!   row-batch boundaries with a retryable `TIMEOUT` that does *not*
//!   poison the session.
//! * **Backpressure** — workers never touch sockets; a slow reader
//!   stalls only its own connection thread.
//! * **Crash-proof teardown** — a dropped connection rolls back its
//!   open transaction and releases every snapshot pin; a panicking
//!   statement is contained to an `INTERNAL` error on one connection.
//!
//! See [`protocol`] for the wire format, [`Server`] for the daemon and
//! [`Client`] for the driver side.

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, Response};
pub use protocol::{ErrorCode, WireError};
pub use server::{Server, ServerConfig};
