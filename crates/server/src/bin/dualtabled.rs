//! The `dualtabled` daemon: serves the DualTable engine over TCP.
//!
//! ```text
//! dualtabled [--listen ADDR] [--data DIR | --mem] [--workers N]
//!            [--queue-depth N] [--deadline-ms MS]
//! ```
//!
//! Prints `listening on ADDR` once ready. SIGTERM/SIGINT trigger a
//! graceful shutdown: in-flight statements drain, open transactions
//! roll back, and the process exits 0.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use dt_hiveql::SharedCatalog;
use dt_server::{Server, ServerConfig};
use dualtable::DualTableEnv;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

// Raw signal(2) binding — the build has no libc crate; the symbol
// itself is always in libc proper.
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_signal(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

struct Args {
    listen: String,
    data: Option<String>,
    workers: usize,
    queue_depth: usize,
    deadline_ms: u64,
    compaction: bool,
    compaction_interval_ms: u64,
    delta_bytes: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7117".to_string(),
        data: None,
        workers: 4,
        queue_depth: 16,
        deadline_ms: 0,
        compaction: true,
        compaction_interval_ms: 20,
        delta_bytes: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--listen" => args.listen = value("--listen")?,
            "--data" => args.data = Some(value("--data")?),
            "--mem" => args.data = None,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?;
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--no-compaction" => args.compaction = false,
            "--delta-bytes" => {
                args.delta_bytes = value("--delta-bytes")?
                    .parse()
                    .map_err(|e| format!("--delta-bytes: {e}"))?;
            }
            "--compaction-interval-ms" => {
                args.compaction_interval_ms = value("--compaction-interval-ms")?
                    .parse()
                    .map_err(|e| format!("--compaction-interval-ms: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: dualtabled [--listen ADDR] [--data DIR | --mem] [--workers N] \
                     [--queue-depth N] [--deadline-ms MS] [--no-compaction] \
                     [--compaction-interval-ms MS] [--delta-bytes N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    install_signal_handlers();

    let env = match &args.data {
        Some(dir) => match DualTableEnv::on_disk(dir) {
            Ok(env) => env,
            Err(e) => {
                eprintln!("failed to open data directory '{dir}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => DualTableEnv::in_memory(),
    };
    let config = ServerConfig {
        workers: args.workers,
        queue_depth: args.queue_depth,
        default_deadline_ms: args.deadline_ms,
        compaction: args.compaction,
        compaction_interval_ms: args.compaction_interval_ms,
        // Maintenance yields once foreground work fills half the queue.
        compaction_queue_threshold: (args.queue_depth / 2).max(1),
        session: {
            let mut session = dt_hiveql::SessionConfig::default();
            session.dualtable.delta_bytes = args.delta_bytes;
            session
        },
        panic_marker: None,
    };
    let server = match Server::start(&args.listen, env, SharedCatalog::new(), config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("failed to start server on {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    // Flushed line the test harness (and humans) wait for.
    println!("listening on {}", server.local_addr());

    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("shutting down: draining in-flight statements");
    server.shutdown();
    eprintln!("shutdown complete");
    ExitCode::SUCCESS
}
