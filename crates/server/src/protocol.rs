//! The `dualtabled` wire protocol (DESIGN.md §14): length-prefixed
//! frames over TCP, strict request–response.
//!
//! Every frame is `u32` little-endian payload length followed by the
//! payload; `payload[0]` is the frame kind. The client sends one
//! **query** frame and reads frames until a terminal **end** or
//! **error** frame:
//!
//! * `Q` (client → server): `u32` deadline in milliseconds (`0` = use
//!   the server default) + the statement text, UTF-8.
//! * `H` (server → client): result header. `u16` column count, then per
//!   column `u16` name length + name bytes + `u8` type code.
//! * `D` (server → client): a row batch. `u16` row count, then rows as
//!   tagged values (see [`write_value`]). Batches are bounded
//!   ([`ROWS_PER_BATCH`]) so a slow reader exerts backpressure on its
//!   own connection thread only.
//! * `E` (server → client, terminal): success. `u64` affected-row count
//!   + `u32` message length + message.
//! * `X` (server → client, terminal): failure. `u8` error code, `u8`
//!   retryable flag, `u16` count of already-committed tables (each
//!   `u16` length + name — the structured partial-COMMIT report), `u32`
//!   message length + message.
//!
//! Only `E`/`X` end a request; a client must keep reading past `H`/`D`.

use std::io::{Read, Write};

use dt_common::{DataType, Error, Result, Row, Schema, Value};

/// Frame kind bytes.
pub const FRAME_QUERY: u8 = b'Q';
/// Result header frame.
pub const FRAME_HEADER: u8 = b'H';
/// Row batch frame.
pub const FRAME_ROWS: u8 = b'D';
/// Terminal success frame.
pub const FRAME_END: u8 = b'E';
/// Terminal error frame.
pub const FRAME_ERROR: u8 = b'X';

/// Rows per `D` frame. Small enough that a timed-out or disconnected
/// reader is noticed quickly; large enough to amortize syscalls.
pub const ROWS_PER_BATCH: usize = 256;

/// Frames larger than this are rejected on read (a corrupt length
/// prefix must not allocate gigabytes).
pub const MAX_FRAME_LEN: u32 = 64 << 20;

/// Wire error codes carried by `X` frames. Codes ≤ 17 mirror
/// [`Error`] variants; the server-layer refusals get their own codes so
/// clients can distinguish "the statement failed" from "the server
/// never ran it".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// Malformed statement text.
    Parse = 1,
    /// Unplannable statement.
    Plan = 2,
    /// Unknown table/path/key.
    NotFound = 3,
    /// CREATE of an existing entity.
    AlreadyExists = 4,
    /// Schema violation.
    Schema = 5,
    /// Invalid argument.
    InvalidArgument = 6,
    /// Unsupported by the storage handler.
    Unsupported = 7,
    /// A concurrent exclusive operation holds the table.
    Busy = 8,
    /// First-committer-wins MVCC conflict (retryable).
    Conflict = 9,
    /// A storage tier is temporarily unreachable (retryable).
    Unavailable = 10,
    /// The statement overran its deadline (retryable; session intact).
    Timeout = 11,
    /// Admission control shed the statement: dispatch queue full
    /// (retryable; the statement never executed).
    ServerBusy = 12,
    /// The server is draining for shutdown (retryable elsewhere; the
    /// statement never executed).
    ShuttingDown = 13,
    /// Invariant violation (includes contained statement panics).
    Internal = 14,
    /// On-disk data failed validation.
    Corrupt = 15,
    /// OS-level I/O failure.
    Io = 16,
    /// Deterministic test-injected fault.
    Injected = 17,
}

impl ErrorCode {
    /// Maps a library error to its wire code.
    pub fn from_error(e: &Error) -> ErrorCode {
        match e {
            Error::Parse(_) => ErrorCode::Parse,
            Error::Plan(_) => ErrorCode::Plan,
            Error::NotFound(_) => ErrorCode::NotFound,
            Error::AlreadyExists(_) => ErrorCode::AlreadyExists,
            Error::Schema(_) => ErrorCode::Schema,
            Error::InvalidArgument(_) => ErrorCode::InvalidArgument,
            Error::Unsupported(_) => ErrorCode::Unsupported,
            Error::Busy(_) => ErrorCode::Busy,
            Error::Conflict(_) => ErrorCode::Conflict,
            Error::Unavailable(_) => ErrorCode::Unavailable,
            Error::Timeout(_) => ErrorCode::Timeout,
            Error::Internal(_) => ErrorCode::Internal,
            Error::Corrupt(_) => ErrorCode::Corrupt,
            Error::Io(_) => ErrorCode::Io,
            Error::Injected(_) => ErrorCode::Injected,
        }
    }

    /// Decodes a wire code.
    pub fn from_u8(code: u8) -> Option<ErrorCode> {
        Some(match code {
            1 => ErrorCode::Parse,
            2 => ErrorCode::Plan,
            3 => ErrorCode::NotFound,
            4 => ErrorCode::AlreadyExists,
            5 => ErrorCode::Schema,
            6 => ErrorCode::InvalidArgument,
            7 => ErrorCode::Unsupported,
            8 => ErrorCode::Busy,
            9 => ErrorCode::Conflict,
            10 => ErrorCode::Unavailable,
            11 => ErrorCode::Timeout,
            12 => ErrorCode::ServerBusy,
            13 => ErrorCode::ShuttingDown,
            14 => ErrorCode::Internal,
            15 => ErrorCode::Corrupt,
            16 => ErrorCode::Io,
            17 => ErrorCode::Injected,
            _ => return None,
        })
    }
}

fn type_code(ty: DataType) -> u8 {
    match ty {
        DataType::Int64 => 1,
        DataType::Float64 => 2,
        DataType::Utf8 => 3,
        DataType::Bool => 4,
        DataType::Date => 5,
    }
}

fn type_from_code(code: u8) -> Result<DataType> {
    Ok(match code {
        1 => DataType::Int64,
        2 => DataType::Float64,
        3 => DataType::Utf8,
        4 => DataType::Bool,
        5 => DataType::Date,
        other => return Err(Error::Corrupt(format!("unknown wire type code {other}"))),
    })
}

/// Serializes one value with a leading type tag.
pub fn write_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int64(x) => {
            buf.push(1);
            buf.extend_from_slice(&x.to_le_bytes());
        }
        Value::Float64(x) => {
            buf.push(2);
            buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Utf8(s) => {
            buf.push(3);
            buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
            buf.extend_from_slice(s.as_bytes());
        }
        Value::Bool(b) => {
            buf.push(4);
            buf.push(u8::from(*b));
        }
        Value::Date(d) => {
            buf.push(5);
            buf.extend_from_slice(&d.to_le_bytes());
        }
    }
}

/// A cursor over a received payload.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Corrupt(format!(
                "frame truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads a `u16`-length-prefixed UTF-8 string (table names).
    pub fn short_string(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::Corrupt("non-UTF-8 string".into()))
    }

    /// Reads everything left as UTF-8 (the SQL tail of a `Q` frame).
    pub fn rest_utf8(&mut self) -> Result<String> {
        let bytes = self.take(self.buf.len() - self.pos)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::Corrupt("non-UTF-8 SQL".into()))
    }

    /// Reads one tagged value.
    pub fn value(&mut self) -> Result<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int64(i64::from_le_bytes(self.take(8)?.try_into().unwrap())),
            2 => Value::Float64(f64::from_bits(u64::from_le_bytes(
                self.take(8)?.try_into().unwrap(),
            ))),
            3 => Value::Utf8(self.string()?),
            4 => Value::Bool(self.u8()? != 0),
            5 => Value::Date(i32::from_le_bytes(self.take(4)?.try_into().unwrap())),
            other => return Err(Error::Corrupt(format!("unknown value tag {other}"))),
        })
    }
}

/// Writes one frame: `u32` LE length prefix + payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame payload. `Ok(None)` on clean EOF at a frame boundary
/// (the peer hung up between requests).
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF inside frame length",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(len_buf);
    if len == 0 || len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} out of range"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Encodes a `Q` frame payload.
pub fn encode_query(deadline_ms: u32, sql: &str) -> Vec<u8> {
    let mut buf = Vec::with_capacity(5 + sql.len());
    buf.push(FRAME_QUERY);
    buf.extend_from_slice(&deadline_ms.to_le_bytes());
    buf.extend_from_slice(sql.as_bytes());
    buf
}

/// Encodes an `H` frame payload.
pub fn encode_header(schema: &Schema) -> Vec<u8> {
    let mut buf = vec![FRAME_HEADER];
    buf.extend_from_slice(&(schema.len() as u16).to_le_bytes());
    for f in schema.fields() {
        buf.extend_from_slice(&(f.name.len() as u16).to_le_bytes());
        buf.extend_from_slice(f.name.as_bytes());
        buf.push(type_code(f.data_type));
    }
    buf
}

/// Decodes an `H` payload (past the kind byte) into `(name, type)`s.
pub fn decode_header(r: &mut Reader<'_>) -> Result<Vec<(String, DataType)>> {
    let n = r.u16()? as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.short_string()?;
        let ty = type_from_code(r.u8()?)?;
        cols.push((name, ty));
    }
    Ok(cols)
}

/// Encodes a `D` frame payload from a row slice.
pub fn encode_rows(rows: &[Row]) -> Vec<u8> {
    let mut buf = vec![FRAME_ROWS];
    buf.extend_from_slice(&(rows.len() as u16).to_le_bytes());
    for row in rows {
        for v in row {
            write_value(&mut buf, v);
        }
    }
    buf
}

/// Encodes an `E` frame payload.
pub fn encode_end(affected: u64, message: &str) -> Vec<u8> {
    let mut buf = vec![FRAME_END];
    buf.extend_from_slice(&affected.to_le_bytes());
    buf.extend_from_slice(&(message.len() as u32).to_le_bytes());
    buf.extend_from_slice(message.as_bytes());
    buf
}

/// Encodes an `X` frame payload. `committed` is the structured
/// partial-COMMIT table list (empty for every other failure).
pub fn encode_error(
    code: ErrorCode,
    retryable: bool,
    committed: &[String],
    message: &str,
) -> Vec<u8> {
    let mut buf = vec![FRAME_ERROR, code as u8, u8::from(retryable)];
    buf.extend_from_slice(&(committed.len() as u16).to_le_bytes());
    for t in committed {
        buf.extend_from_slice(&(t.len() as u16).to_le_bytes());
        buf.extend_from_slice(t.as_bytes());
    }
    buf.extend_from_slice(&(message.len() as u32).to_le_bytes());
    buf.extend_from_slice(message.as_bytes());
    buf
}

/// A decoded `X` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The wire error code.
    pub code: ErrorCode,
    /// `true` if the client may retry (possibly on another server).
    pub retryable: bool,
    /// Tables a failed multi-table COMMIT had already durably committed.
    pub committed: Vec<String>,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)?;
        if !self.committed.is_empty() {
            write!(f, " (already committed: {})", self.committed.join(", "))?;
        }
        Ok(())
    }
}

/// Decodes an `X` payload (past the kind byte).
pub fn decode_error(r: &mut Reader<'_>) -> Result<WireError> {
    let code_byte = r.u8()?;
    let code = ErrorCode::from_u8(code_byte)
        .ok_or_else(|| Error::Corrupt(format!("unknown error code {code_byte}")))?;
    let retryable = r.u8()? != 0;
    let n = r.u16()? as usize;
    let mut committed = Vec::with_capacity(n);
    for _ in 0..n {
        committed.push(r.short_string()?);
    }
    let message = r.string()?;
    Ok(WireError {
        code,
        retryable,
        committed,
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let values = vec![
            Value::Null,
            Value::Int64(-42),
            Value::Float64(2.5),
            Value::Utf8("héllo".into()),
            Value::Bool(true),
            Value::Date(19000),
        ];
        let mut buf = Vec::new();
        for v in &values {
            write_value(&mut buf, v);
        }
        let mut r = Reader::new(&buf);
        for v in &values {
            assert_eq!(&r.value().unwrap(), v);
        }
    }

    #[test]
    fn error_frame_round_trip() {
        let payload = encode_error(
            ErrorCode::Conflict,
            true,
            &["t1".to_string(), "t2".to_string()],
            "first-committer-wins loss",
        );
        assert_eq!(payload[0], FRAME_ERROR);
        let mut r = Reader::new(&payload[1..]);
        let e = decode_error(&mut r).unwrap();
        assert_eq!(e.code, ErrorCode::Conflict);
        assert!(e.retryable);
        assert_eq!(e.committed, vec!["t1", "t2"]);
        assert_eq!(e.message, "first-committer-wins loss");
    }

    #[test]
    fn frame_round_trip_over_a_buffer() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &encode_query(250, "SELECT 1")).unwrap();
        write_frame(&mut wire, &encode_end(3, "ok")).unwrap();
        let mut cursor = std::io::Cursor::new(wire);
        let q = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(q[0], FRAME_QUERY);
        let mut r = Reader::new(&q[1..]);
        assert_eq!(r.u32().unwrap(), 250);
        assert_eq!(r.rest_utf8().unwrap(), "SELECT 1");
        let e = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(e[0], FRAME_END);
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        let err = read_frame(&mut std::io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }
}
