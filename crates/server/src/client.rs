//! A blocking wire-protocol client for `dualtabled` — the library the
//! bench driver, the soak harness and ad-hoc tools speak through.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use dt_common::{DataType, Row};

use crate::protocol::{
    self, decode_error, decode_header, ErrorCode, Reader, WireError, FRAME_END, FRAME_ERROR,
    FRAME_HEADER, FRAME_ROWS,
};

/// A successful statement response.
#[derive(Debug, Clone, Default)]
pub struct Response {
    /// Result columns (empty for DML/DDL acknowledgements).
    pub columns: Vec<(String, DataType)>,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Rows affected by DML.
    pub affected: u64,
    /// Server-side execution note.
    pub message: String,
}

/// Why a statement failed at the client.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure — the connection is dead; reconnect to retry.
    Io(std::io::Error),
    /// The server answered with an `X` frame; the connection is fine.
    Server(WireError),
}

impl ClientError {
    /// `true` if retrying (same statement, possibly after reconnect)
    /// may succeed.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Server(e) => e.retryable,
        }
    }

    /// The server error, if this was an `X` frame.
    pub fn server(&self) -> Option<&WireError> {
        match self {
            ClientError::Server(e) => Some(e),
            ClientError::Io(_) => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connection to a `dualtabled` server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Connects, retrying briefly — for tests racing server startup.
    pub fn connect_retry(
        addr: impl ToSocketAddrs + Copy,
        timeout: Duration,
    ) -> std::io::Result<Client> {
        let start = std::time::Instant::now();
        loop {
            match Self::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if start.elapsed() > timeout => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(20)),
            }
        }
    }

    /// Executes one statement with the server-default deadline.
    pub fn query(&mut self, sql: &str) -> Result<Response, ClientError> {
        self.query_deadline(sql, 0)
    }

    /// Executes one statement under an explicit deadline (`0` = server
    /// default).
    pub fn query_deadline(&mut self, sql: &str, deadline_ms: u32) -> Result<Response, ClientError> {
        protocol::write_frame(&mut self.writer, &protocol::encode_query(deadline_ms, sql))
            .map_err(ClientError::Io)?;
        use std::io::Write;
        self.writer.flush().map_err(ClientError::Io)?;

        let mut response = Response::default();
        loop {
            let payload = match protocol::read_frame(&mut self.reader).map_err(ClientError::Io)? {
                Some(p) => p,
                None => {
                    return Err(ClientError::Io(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed mid-response",
                    )))
                }
            };
            let corrupt = |m: &str| {
                ClientError::Server(WireError {
                    code: ErrorCode::Corrupt,
                    retryable: false,
                    committed: Vec::new(),
                    message: m.to_string(),
                })
            };
            let Some((&kind, body)) = payload.split_first() else {
                return Err(corrupt("empty frame"));
            };
            let mut r = Reader::new(body);
            match kind {
                FRAME_HEADER => {
                    response.columns =
                        decode_header(&mut r).map_err(|e| corrupt(&e.to_string()))?;
                }
                FRAME_ROWS => {
                    let n = r.u16().map_err(|e| corrupt(&e.to_string()))? as usize;
                    for _ in 0..n {
                        let mut row = Row::with_capacity(response.columns.len());
                        for _ in 0..response.columns.len() {
                            row.push(r.value().map_err(|e| corrupt(&e.to_string()))?);
                        }
                        response.rows.push(row);
                    }
                }
                FRAME_END => {
                    response.affected = r.u64().map_err(|e| corrupt(&e.to_string()))?;
                    response.message = r.string().map_err(|e| corrupt(&e.to_string()))?;
                    return Ok(response);
                }
                FRAME_ERROR => {
                    let e = decode_error(&mut r).map_err(|e| corrupt(&e.to_string()))?;
                    return Err(ClientError::Server(e));
                }
                other => return Err(corrupt(&format!("unexpected frame kind {other}"))),
            }
        }
    }
}
