//! The `dualtabled` server core (DESIGN.md §14).
//!
//! One thread per connection owns the socket end to end: it reads `Q`
//! frames, routes statements to the shared [`ServicePool`], and writes
//! every response frame itself. Workers never touch sockets, so a slow
//! reader stalls only its own connection thread (backpressure), never a
//! worker. The pool's bounded queue is the admission controller: a full
//! queue sheds the statement with a retryable `SERVER_BUSY` instead of
//! building an unbounded backlog.
//!
//! Teardown invariants (the "crash-proof" part):
//!
//! * A connection that dies mid-transaction — FIN, RST, or its thread
//!   panicking — runs [`ConnGuard`]'s drop: the open transaction rolls
//!   back, every snapshot pin releases (generation GC drains), and the
//!   `conns_dropped_in_txn` counter records it.
//! * A statement that panics on a worker is contained by
//!   `catch_unwind`; the session's transaction is aborted and the
//!   client gets a retryable-`false` `INTERNAL` error. The worker — and
//!   every other session — keeps running.
//! * Jobs still queued when their connection dies check the
//!   connection's `alive` flag *under the session lock* and skip
//!   execution, so teardown can never race a late statement into a
//!   freshly rolled-back session.
//!
//! Graceful shutdown ([`Server::shutdown`]): stop accepting, refuse new
//! statements (`SHUTTING_DOWN`, retryable), drain every accepted
//! statement, then roll back whatever transactions remain open and join
//! every thread. Accepted work is never dropped; refused work is
//! counted as shed so `accepted + shed == submitted` stays exact.

use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use dt_common::{Deadline, Error, HealthCounters, Result};
use dt_engine::{ServicePool, SubmitError, Supervisor, SupervisorConfig, TickOutcome};
use dt_hiveql::{QueryResult, Session, SharedCatalog};
use dualtable::{CompactionMode, CompactorState, DualTableEnv, FoldOutcome};
use parking_lot::Mutex;

use crate::protocol::{
    self, encode_end, encode_error, encode_header, encode_rows, ErrorCode, Reader, FRAME_QUERY,
    ROWS_PER_BATCH,
};

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing statements.
    pub workers: usize,
    /// Dispatch-queue capacity; the admission-control bound.
    pub queue_depth: usize,
    /// Default per-statement deadline when the client sends `0`;
    /// `0` here means no deadline at all.
    pub default_deadline_ms: u64,
    /// Run the background incremental-compaction daemon (DESIGN.md §15):
    /// a supervised maintenance thread that folds the dirtiest master
    /// files of every DUALTABLE in the catalog. Off by default for
    /// library embedders; the `dualtabled` binary turns it on.
    pub compaction: bool,
    /// Daemon cadence after a cycle that found work, in milliseconds.
    /// Idle and throttled cycles sleep 5× this.
    pub compaction_interval_ms: u64,
    /// Dispatch-queue depth at or above which the daemon throttles —
    /// foreground statements always outrank maintenance.
    pub compaction_queue_threshold: usize,
    /// Session configuration handed to every connection (table defaults:
    /// plan mode, cost-model rates, delta-tier budget, executor tuning).
    /// A `delta_bytes` set here turns the HTAP delta tier on for every
    /// table the server creates (DESIGN.md §17).
    pub session: dt_hiveql::SessionConfig,
    /// Test hook: a statement whose text contains this marker panics on
    /// the worker after reaching it, exercising the contained-panic
    /// teardown path. Never set in production.
    #[doc(hidden)]
    pub panic_marker: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 16,
            default_deadline_ms: 0,
            compaction: false,
            compaction_interval_ms: 20,
            compaction_queue_threshold: 8,
            session: dt_hiveql::SessionConfig::default(),
            panic_marker: None,
        }
    }
}

/// What a worker hands back to the connection thread for one statement.
type StatementOutcome = (Result<QueryResult>, Vec<String>);

/// Per-connection state shared between the connection thread and any
/// queued worker jobs.
struct ConnShared {
    /// Cleared (before locking the session) when the connection is torn
    /// down; queued jobs re-check it under the session lock and skip.
    alive: AtomicBool,
    /// The connection's session. Locked by at most one worker at a time
    /// (strict request–response), and by teardown.
    session: Mutex<Session>,
}

struct ConnHandle {
    shared: Arc<ConnShared>,
    /// A clone of the socket, used to unblock the reader at shutdown.
    stream: TcpStream,
    thread: JoinHandle<()>,
}

struct ServerShared {
    config: ServerConfig,
    env: DualTableEnv,
    catalog: SharedCatalog,
    pool: ServicePool,
    health: Arc<HealthCounters>,
    shutting_down: AtomicBool,
    conns: Mutex<Vec<ConnHandle>>,
}

/// A running `dualtabled` instance. Dropping it without calling
/// [`Server::shutdown`] performs the same graceful shutdown.
pub struct Server {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    /// The supervised compaction daemon (`config.compaction`).
    maintenance: Option<Supervisor>,
    shut: bool,
}

impl Server {
    /// Binds `listen` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts serving `env`/`catalog`.
    pub fn start(
        listen: &str,
        env: DualTableEnv,
        catalog: SharedCatalog,
        config: ServerConfig,
    ) -> Result<Server> {
        let listener = TcpListener::bind(listen).map_err(Error::Io)?;
        let local_addr = listener.local_addr().map_err(Error::Io)?;
        listener.set_nonblocking(true).map_err(Error::Io)?;
        let health = Arc::clone(&env.server_health);
        let shared = Arc::new(ServerShared {
            pool: ServicePool::new(config.workers, config.queue_depth),
            config,
            env,
            catalog,
            health,
            shutting_down: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("dtd-accept".into())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .map_err(Error::Io)?;
        let maintenance = shared.config.compaction.then(|| start_maintenance(&shared));
        Ok(Server {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            maintenance,
            shut: false,
        })
    }

    /// The bound address (for ephemeral-port tests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The serving-tier health counters (the `server` rows of
    /// `SHOW HEALTH`).
    pub fn health(&self) -> Arc<HealthCounters> {
        Arc::clone(&self.shared.health)
    }

    /// Contained statement panics since start.
    pub fn worker_panics(&self) -> u64 {
        self.shared.pool.panics()
    }

    /// Graceful shutdown: refuse new work, drain accepted statements,
    /// roll back remaining open transactions, join every thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.shut {
            return;
        }
        self.shut = true;
        // 0. Stop the compaction daemon first: no new fold starts during
        //    the drain; an in-flight fold runs to completion (it is
        //    crash-safe anyway, but a clean stop keeps counters exact).
        if let Some(m) = self.maintenance.take() {
            m.stop();
        }
        // 1. Refuse new connections and new statements.
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // 2. Drain every accepted statement. Connection threads waiting
        //    on results are unblocked as their statements complete.
        self.shared.pool.drain();
        // 3. Tear every connection down: mark dead, unblock its reader,
        //    join. The guard in each thread rolls back open transactions
        //    and releases pins.
        let conns = std::mem::take(&mut *self.shared.conns.lock());
        for conn in &conns {
            conn.shared.alive.store(false, Ordering::SeqCst);
            let _ = conn.stream.shutdown(std::net::Shutdown::Both);
        }
        for conn in conns {
            let _ = conn.thread.join();
        }
        self.shared.health.set_queue_depth(0);
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Spawns the supervised compaction daemon (DESIGN.md §15). One tick =
/// one maintenance sweep: consult the controller mode, check server load,
/// then run one incremental fold cycle on every DUALTABLE in the catalog.
/// Sharded tables dispatch that cycle round-robin across their shards (the
/// handle advances a per-table cursor), so no shard waits more than one
/// full cycle behind its siblings and per-shard fold counters show up in
/// SHOW COMPACTION.
/// The supervisor restarts the tick across panics, backs transient faults
/// off, and parks on repeated permanent failures; `SET COMPACTION = AUTO`
/// (a mode-epoch bump) is the operator's reset lever.
fn start_maintenance(shared: &Arc<ServerShared>) -> Supervisor {
    let controller = Arc::clone(&shared.env.compaction);
    let table_health = Arc::clone(&shared.env.health);
    let threshold = shared.config.compaction_queue_threshold as u64;
    let interval = shared.config.compaction_interval_ms.max(1);

    let tick_shared = Arc::clone(shared);
    let tick_controller = Arc::clone(&controller);
    let tick_health = Arc::clone(&table_health);
    let mut last_shed = shared.health.snapshot().stmts_shed;
    let tick = move || {
        if tick_controller.mode() == CompactionMode::Off {
            tick_controller.set_state(CompactorState::Idle);
            return Ok(TickOutcome::Idle);
        }
        // Load-aware throttle: a deep dispatch queue or fresh admission
        // shedding means the serving tier needs every core — maintenance
        // yields and retries next tick.
        let shed = tick_shared.health.snapshot().stmts_shed;
        let queued = tick_shared.pool.queued();
        if queued >= threshold || shed > last_shed {
            last_shed = shed;
            tick_health.record_compactor_throttled();
            tick_controller.set_state(CompactorState::Throttled);
            return Ok(TickOutcome::Throttled);
        }
        last_shed = shed;
        tick_controller.set_state(CompactorState::Running);
        let mut worked = false;
        let mut result = Ok(());
        for name in tick_shared.catalog.names() {
            let Ok(handle) = tick_shared.catalog.get(&name) else {
                continue; // dropped since names() — nothing to maintain
            };
            match handle.compact_incremental() {
                Ok(FoldOutcome::Folded { .. } | FoldOutcome::LostRace) => worked = true,
                Ok(FoldOutcome::Clean) => {}
                Err(Error::Unsupported(_)) => {} // non-DUALTABLE storage
                Err(e) => {
                    // Surface the first failure to the supervisor (backoff
                    // or breaker); later tables get their turn next tick.
                    result = Err(e);
                    break;
                }
            }
        }
        tick_controller.set_state(CompactorState::Idle);
        result.map(|()| {
            if worked {
                TickOutcome::Worked
            } else {
                TickOutcome::Idle
            }
        })
    };

    // The breaker's reset lever: record the controller's mode epoch at
    // park time; any later SET COMPACTION = AUTO moves it and unparks.
    let epoch_at_park = Arc::new(AtomicU64::new(0));
    let park_epoch = Arc::clone(&epoch_at_park);
    let park_controller = Arc::clone(&controller);
    let on_park = move |parked: bool| {
        table_health.set_compactor_parked(parked);
        if parked {
            park_epoch.store(park_controller.mode_epoch(), Ordering::SeqCst);
            park_controller.set_state(CompactorState::Parked);
        } else {
            park_controller.set_state(CompactorState::Idle);
        }
    };
    let unpark_when = move || {
        controller.mode() == CompactionMode::Auto
            && controller.mode_epoch() > epoch_at_park.load(Ordering::SeqCst)
    };

    Supervisor::start(
        "compaction",
        SupervisorConfig {
            tick_interval_ms: interval,
            idle_interval_ms: interval.saturating_mul(5),
            ..SupervisorConfig::default()
        },
        tick,
        on_park,
        unpark_when,
    )
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                if let Err(e) = spawn_conn(stream, shared) {
                    // Accept succeeded but setup failed (thread spawn /
                    // socket clone): drop the connection, keep serving.
                    let _ = e;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Reap finished connection threads so the registry stays
                // bounded across long-lived servers.
                shared.conns.lock().retain(|c| !c.thread.is_finished());
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn spawn_conn(stream: TcpStream, shared: &Arc<ServerShared>) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    let mut session = Session::with_shared(shared.env.clone(), shared.catalog.clone());
    session.config = shared.config.session.clone();
    let conn_shared = Arc::new(ConnShared {
        alive: AtomicBool::new(true),
        session: Mutex::new(session),
    });
    let thread_stream = stream.try_clone()?;
    let server = Arc::clone(shared);
    let conn_for_thread = Arc::clone(&conn_shared);
    let thread = std::thread::Builder::new()
        .name("dtd-conn".into())
        .spawn(move || conn_loop(thread_stream, &conn_for_thread, &server))?;
    shared.conns.lock().push(ConnHandle {
        shared: conn_shared,
        stream,
        thread,
    });
    Ok(())
}

/// Runs the connection teardown exactly once, on every exit path of the
/// connection thread — clean EOF, I/O error, or panic.
struct ConnGuard<'a> {
    conn: &'a Arc<ConnShared>,
    health: &'a Arc<HealthCounters>,
}

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        // Order matters: clear `alive` BEFORE taking the session lock.
        // A queued job that wins the lock race will see the flag and
        // skip; one that already holds the lock finishes its statement
        // first, and we roll back after it.
        self.conn.alive.store(false, Ordering::SeqCst);
        let mut session = self.conn.session.lock();
        if session.in_transaction() {
            self.health.record_conn_dropped_in_txn();
            session.abort_transaction();
        }
        self.health.session_closed();
    }
}

fn conn_loop(stream: TcpStream, conn: &Arc<ConnShared>, server: &Arc<ServerShared>) {
    server.health.session_opened();
    let _guard = ConnGuard {
        conn,
        health: &server.health,
    };
    let mut reader = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut writer = BufWriter::new(stream);
    loop {
        let payload = match protocol::read_frame(&mut reader) {
            Ok(Some(p)) => p,
            // Clean EOF or any transport error: tear down. The guard
            // rolls back whatever transaction is open.
            Ok(None) | Err(_) => return,
        };
        if payload.is_empty() || payload[0] != FRAME_QUERY {
            let _ = write_error_frame(
                &mut writer,
                ErrorCode::InvalidArgument,
                false,
                &[],
                "expected a Q frame",
            );
            continue;
        }
        let mut r = Reader::new(&payload[1..]);
        let (deadline_ms, sql) =
            match (|| -> Result<(u32, String)> { Ok((r.u32()?, r.rest_utf8()?)) })() {
                Ok(q) => q,
                Err(e) => {
                    let _ = write_error_frame(
                        &mut writer,
                        ErrorCode::InvalidArgument,
                        false,
                        &[],
                        &e.to_string(),
                    );
                    continue;
                }
            };
        if !handle_statement(&mut writer, conn, server, deadline_ms, &sql) {
            return;
        }
    }
}

/// Admits, executes and answers one statement. Returns `false` when the
/// connection should close (response could not be written).
fn handle_statement(
    writer: &mut BufWriter<TcpStream>,
    conn: &Arc<ConnShared>,
    server: &Arc<ServerShared>,
    deadline_ms: u32,
    sql: &str,
) -> bool {
    let health = &server.health;
    health.record_stmt_submitted();

    if server.shutting_down.load(Ordering::SeqCst) {
        health.record_stmt_shed();
        return write_error_frame(
            writer,
            ErrorCode::ShuttingDown,
            true,
            &[],
            "server is shutting down",
        )
        .is_ok();
    }

    let effective_ms = if deadline_ms > 0 {
        u64::from(deadline_ms)
    } else {
        server.config.default_deadline_ms
    };
    let deadline = if effective_ms > 0 {
        Deadline::after_millis(effective_ms)
    } else {
        Deadline::never()
    };

    let (tx, rx) = mpsc::channel::<StatementOutcome>();
    let job_conn = Arc::clone(conn);
    let job_deadline = deadline.clone();
    let job_sql = sql.to_string();
    let marker = server.config.panic_marker.clone();
    let job = Box::new(move || {
        let mut session = job_conn.session.lock();
        if !job_conn.alive.load(Ordering::SeqCst) {
            // Connection torn down while this job sat in the queue: the
            // transaction is already rolled back; executing now would
            // resurrect state nobody can observe. Drop silently — the
            // receiver is gone too.
            return;
        }
        // Queue-wait expiry: refuse to *start* past the deadline, so a
        // timed-out COMMIT provably never applied anything.
        if let Err(e) = job_deadline.check() {
            let _ = tx.send((Err(e), Vec::new()));
            return;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            if let Some(m) = &marker {
                if job_sql.contains(m.as_str()) {
                    panic!("panic marker hit");
                }
            }
            session.execute_with_deadline(&job_sql, job_deadline)
        }));
        match outcome {
            Ok(result) => {
                let committed = session.last_partial_commit().to_vec();
                let _ = tx.send((result, committed));
            }
            Err(panic) => {
                // Contain the panic: roll the transaction back so the
                // session is reusable, then report INTERNAL. Pins held
                // by the transaction release here.
                session.abort_transaction();
                let _ = tx.send((
                    Err(Error::Internal(
                        "statement panicked; transaction rolled back".into(),
                    )),
                    Vec::new(),
                ));
                // Propagate so the pool's panic counter records it; the
                // pool's own catch_unwind keeps the worker alive.
                std::panic::resume_unwind(panic);
            }
        }
    });

    match server.pool.try_submit(job) {
        Ok(()) => {}
        Err(SubmitError::Full(_)) => {
            health.record_stmt_shed();
            health.set_queue_depth(server.pool.queued());
            return write_error_frame(
                writer,
                ErrorCode::ServerBusy,
                true,
                &[],
                "dispatch queue full; retry with backoff",
            )
            .is_ok();
        }
        Err(SubmitError::Closed(_)) => {
            health.record_stmt_shed();
            return write_error_frame(
                writer,
                ErrorCode::ShuttingDown,
                true,
                &[],
                "server is shutting down",
            )
            .is_ok();
        }
    }
    health.record_stmt_accepted();
    health.set_queue_depth(server.pool.queued());

    // Block until the worker answers. Strict request–response: there is
    // never more than one outstanding statement per connection.
    let (result, committed) = match rx.recv() {
        Ok(outcome) => outcome,
        // Worker dropped the sender without an outcome — only possible
        // when this connection was torn down concurrently.
        Err(_) => return false,
    };
    write_outcome(writer, health, result, &committed).is_ok()
}

fn write_outcome(
    writer: &mut BufWriter<TcpStream>,
    health: &Arc<HealthCounters>,
    result: Result<QueryResult>,
    committed: &[String],
) -> std::io::Result<()> {
    match result {
        Ok(qr) => {
            if !qr.schema.is_empty() {
                protocol::write_frame(writer, &encode_header(&qr.schema))?;
                // Bounded batches: each write lands in the socket buffer
                // before the next is built, so a reader that stops
                // draining stalls exactly this thread, holding no locks
                // and no worker.
                for chunk in qr.rows().chunks(ROWS_PER_BATCH) {
                    protocol::write_frame(writer, &encode_rows(chunk))?;
                }
            }
            protocol::write_frame(
                writer,
                &encode_end(qr.affected, qr.message.as_deref().unwrap_or("")),
            )?;
            writer.flush()
        }
        Err(e) => {
            if e.is_timeout() {
                health.record_stmt_timed_out();
            }
            write_error_frame(
                writer,
                ErrorCode::from_error(&e),
                e.is_transient(),
                committed,
                &e.to_string(),
            )
        }
    }
}

fn write_error_frame(
    writer: &mut BufWriter<TcpStream>,
    code: ErrorCode,
    retryable: bool,
    committed: &[String],
    message: &str,
) -> std::io::Result<()> {
    protocol::write_frame(writer, &encode_error(code, retryable, committed, message))?;
    writer.flush()
}
