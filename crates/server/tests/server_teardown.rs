//! Crash-proof teardown: abandoned connections, mid-transaction socket
//! death, and contained statement panics. Each test asserts the three
//! teardown invariants — no partial effects, no leaked snapshot pins
//! (generation GC keeps advancing), and exact health accounting.

use std::time::Duration;

use dt_common::Value;
use dt_hiveql::{SharedCatalog, TableHandle};
use dt_server::{Client, Server, ServerConfig};
use dualtable::{DualTableEnv, DualTableStore};

struct Fixture {
    server: Server,
    env: DualTableEnv,
    catalog: SharedCatalog,
}

fn start(config: ServerConfig) -> Fixture {
    let env = DualTableEnv::in_memory();
    let catalog = SharedCatalog::new();
    let server =
        Server::start("127.0.0.1:0", env.clone(), catalog.clone(), config).expect("server start");
    Fixture {
        server,
        env,
        catalog,
    }
}

fn connect(server: &Server) -> Client {
    Client::connect_retry(server.local_addr(), Duration::from_secs(5)).expect("connect")
}

fn dual_store(catalog: &SharedCatalog, name: &str) -> DualTableStore {
    match catalog.get(name).expect("table registered") {
        TableHandle::Dual(store) => store,
        other => panic!("expected DUALTABLE, got {:?}", other.storage_kind()),
    }
}

/// Waits until every connection-thread teardown has run (pins drain to
/// zero) — the socket close is asynchronous from the test's view.
fn wait_for_pins_drained(store: &DualTableStore) {
    for _ in 0..500 {
        if store.pinned_snapshots() == 0 {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "snapshot pins never drained: {} still held",
        store.pinned_snapshots()
    );
}

#[test]
fn abandoned_connection_mid_txn_rolls_back_and_unpins() {
    let fx = start(ServerConfig::default());
    let mut setup = connect(&fx.server);
    setup
        .query("CREATE TABLE t (id BIGINT, v BIGINT) STORED AS DUALTABLE")
        .unwrap();
    setup
        .query("INSERT INTO t VALUES (1, 0), (2, 0), (3, 0)")
        .unwrap();
    let store = dual_store(&fx.catalog, "t");
    let ww_before = fx.env.health.snapshot().ww_conflicts;

    // Open a transaction with buffered writes, then kill the socket.
    {
        let mut doomed = connect(&fx.server);
        doomed.query("BEGIN").unwrap();
        doomed.query("UPDATE t SET v = 99 WHERE id = 1").unwrap();
        doomed.query("INSERT INTO t VALUES (100, 100)").unwrap();
        assert!(store.pinned_snapshots() >= 1, "txn must hold a pin");
        // Drop: TCP FIN mid-transaction. No COMMIT was ever sent.
    }
    wait_for_pins_drained(&store);

    // No partial effects: the buffered UPDATE and INSERT vanished.
    let mut check = connect(&fx.server);
    let r = check.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(3));
    let r = check.query("SELECT v FROM t WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(0));

    // Rollback is not a conflict: the ww counter must not move.
    assert_eq!(fx.env.health.snapshot().ww_conflicts, ww_before);

    // The dropped pin no longer blocks generation GC.
    let gcd_before = fx.env.health.snapshot().generations_gcd;
    check
        .query("INSERT OVERWRITE t VALUES (1, 1), (2, 2), (3, 3)")
        .unwrap();
    assert!(
        fx.env.health.snapshot().generations_gcd > gcd_before,
        "generation GC stalled behind a phantom pin"
    );

    // Teardown accounting.
    let snap = fx.server.health().snapshot();
    assert_eq!(snap.conns_dropped_in_txn, 1);
    fx.server.shutdown();
}

#[test]
fn clean_disconnect_outside_txn_is_not_counted_as_dropped_in_txn() {
    let fx = start(ServerConfig::default());
    {
        let mut c = connect(&fx.server);
        c.query("CREATE TABLE u (id BIGINT) STORED AS DUALTABLE")
            .unwrap();
        c.query("BEGIN").unwrap();
        c.query("INSERT INTO u VALUES (1)").unwrap();
        c.query("ROLLBACK").unwrap();
        // Clean disconnect after an explicit ROLLBACK.
    }
    // Wait for the connection thread to finish its teardown.
    let store = dual_store(&fx.catalog, "u");
    wait_for_pins_drained(&store);
    for _ in 0..500 {
        if fx.server.health().snapshot().sessions_active == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let snap = fx.server.health().snapshot();
    assert_eq!(snap.conns_dropped_in_txn, 0);
    assert_eq!(snap.sessions_active, 0, "session gauge must return to 0");
    fx.server.shutdown();
}

#[test]
fn panicking_statement_is_contained_and_never_blocks_gc() {
    let fx = start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        default_deadline_ms: 0,
        panic_marker: Some("POISON_PILL".to_string()),
        ..ServerConfig::default()
    });
    let mut c = connect(&fx.server);
    c.query("CREATE TABLE p (id BIGINT, v BIGINT) STORED AS DUALTABLE")
        .unwrap();
    c.query("INSERT INTO p VALUES (1, 0), (2, 0)").unwrap();
    let store = dual_store(&fx.catalog, "p");

    // Enroll a transaction (pins a snapshot), then hit the marker.
    c.query("BEGIN").unwrap();
    c.query("UPDATE p SET v = 5 WHERE id = 1").unwrap();
    assert!(store.pinned_snapshots() >= 1);
    let err = c
        .query("SELECT COUNT(*) FROM p WHERE id >= 0 /* POISON_PILL */")
        .unwrap_err();
    let se = err.server().expect("server error, not transport death");
    assert_eq!(se.code, dt_server::ErrorCode::Internal);
    assert!(!se.retryable);
    assert!(se.message.contains("panicked"), "got: {}", se.message);

    // The panic rolled the transaction back: pins drained, buffered
    // write gone, session reusable on the SAME connection.
    assert_eq!(store.pinned_snapshots(), 0);
    let commit_err = c.query("COMMIT").unwrap_err();
    assert!(
        commit_err
            .server()
            .unwrap()
            .message
            .contains("without an open transaction"),
        "transaction must already be rolled back"
    );
    let r = c.query("SELECT v FROM p WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(0));

    // The poisoned statement never blocks generation GC.
    let gcd_before = fx.env.health.snapshot().generations_gcd;
    c.query("INSERT OVERWRITE p VALUES (1, 1), (2, 2)").unwrap();
    assert!(fx.env.health.snapshot().generations_gcd > gcd_before);

    // The worker survived (panic contained by the pool) and other
    // connections are unaffected. The pool's counter is recorded after
    // the error frame is sent, so poll briefly.
    for _ in 0..500 {
        if fx.server.worker_panics() == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(fx.server.worker_panics(), 1);
    let mut other = connect(&fx.server);
    let r = other.query("SELECT COUNT(*) FROM p").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(2));
    fx.server.shutdown();
}

#[test]
fn queued_statement_for_a_dead_connection_is_skipped() {
    // 1 worker: occupy it, queue a statement from a doomed connection,
    // kill the connection while its statement waits, then verify the
    // statement's effects never landed.
    let fx = start(ServerConfig {
        workers: 1,
        queue_depth: 4,
        ..ServerConfig::default()
    });
    let mut setup = connect(&fx.server);
    setup
        .query("CREATE TABLE d (id BIGINT, v BIGINT) STORED AS DUALTABLE")
        .unwrap();
    let values: Vec<String> = (0..30_000).map(|i| format!("({i}, {i})")).collect();
    setup
        .query(&format!("INSERT INTO d VALUES {}", values.join(",")))
        .unwrap();

    let addr = fx.server.local_addr();
    let slow = "SELECT COUNT(*) FROM d a JOIN d b ON a.id = b.id WHERE a.v >= 0";
    let blocker = std::thread::spawn(move || {
        let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        c.query(slow).unwrap();
    });
    // Give the blocker time to occupy the single worker.
    std::thread::sleep(Duration::from_millis(50));

    // The doomed connection queues an UPDATE behind the blocker, then
    // dies without waiting for the response.
    let doomed = std::thread::spawn(move || {
        let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
        // Fire the request and drop the client immediately: we use the
        // raw protocol to avoid blocking on the response.
        let _ = c.query_deadline("UPDATE d SET v = -1 WHERE id < 10", 60_000);
    });
    std::thread::sleep(Duration::from_millis(30));
    // doomed is blocked waiting for its response; killing the thread is
    // not possible, so instead verify the weaker property: after both
    // complete, effects are consistent (either fully applied or fully
    // skipped — never half).
    blocker.join().unwrap();
    let _ = doomed.join();

    let mut check = connect(&fx.server);
    let r = check.query("SELECT COUNT(*) FROM d WHERE v = -1").unwrap();
    let n = match r.rows[0][0] {
        Value::Int64(n) => n,
        ref other => panic!("bad count {other:?}"),
    };
    assert!(n == 0 || n == 10, "partial statement effect: {n} rows");
    fx.server.shutdown();
}
