//! Graceful shutdown of the real `dualtabled` binary: SIGTERM under
//! client load must drain in-flight statements, roll back the rest, and
//! exit 0 — and the data directory must reopen cleanly afterwards.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dt_common::Value;
use dt_server::Client;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dualtabled-sigterm-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spawn_daemon(data: &std::path::Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dualtabled"))
        .args([
            "--listen",
            "127.0.0.1:0",
            "--data",
            data.to_str().unwrap(),
            "--workers",
            "3",
            "--queue-depth",
            "8",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn dualtabled");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before announcing its address")
            .expect("read stdout");
        if let Some(addr) = line.strip_prefix("listening on ") {
            break addr.to_string();
        }
    };
    // Keep draining stdout so the daemon never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    (child, addr)
}

#[test]
fn sigterm_under_load_exits_zero_and_data_dir_reopens() {
    let data = temp_dir("main");
    let (mut child, addr) = spawn_daemon(&data);
    let pid = child.id();

    let mut setup = Client::connect_retry(addr.as_str(), Duration::from_secs(10)).expect("connect");
    setup
        .query("CREATE TABLE s (id BIGINT, v BIGINT) STORED AS DUALTABLE")
        .unwrap();
    setup.query("INSERT INTO s VALUES (1, 0), (2, 0)").unwrap();
    drop(setup);

    // Client storm: keep statements in flight while the signal lands.
    let stop = Arc::new(AtomicBool::new(false));
    let completed = Arc::new(AtomicU64::new(0));
    let mut storm = Vec::new();
    for _ in 0..4 {
        let stop = stop.clone();
        let completed = completed.clone();
        let addr = addr.clone();
        storm.push(std::thread::spawn(move || {
            let Ok(mut c) = Client::connect_retry(addr.as_str(), Duration::from_secs(5)) else {
                return;
            };
            while !stop.load(Ordering::SeqCst) {
                // Transport errors and retryable refusals are expected
                // once the shutdown starts; statements that completed
                // before it must have succeeded normally.
                match c.query("SELECT COUNT(*) FROM s") {
                    Ok(_) => {
                        completed.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) if e.is_retryable() => {}
                    Err(e) => panic!("unexpected error under load: {e}"),
                }
            }
        }));
    }
    // Let the storm actually produce load before the signal.
    while completed.load(Ordering::SeqCst) < 50 {
        std::thread::sleep(Duration::from_millis(5));
    }

    let status = Command::new("kill")
        .args(["-TERM", &pid.to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success(), "kill -TERM failed");

    let exit = child.wait().expect("wait for daemon");
    stop.store(true, Ordering::SeqCst);
    for t in storm {
        t.join().expect("storm thread");
    }
    assert!(
        exit.success(),
        "daemon must exit 0 on SIGTERM under load, got {exit:?}"
    );
    assert!(completed.load(Ordering::SeqCst) >= 50, "storm never ran");

    // The data directory reopens: a fresh daemon starts on it and
    // serves statements. (The catalog is session-scoped, so tables are
    // re-registered; the point is that shutdown left no wreckage that
    // prevents reopening the store.)
    let (mut child2, addr2) = spawn_daemon(&data);
    let mut c = Client::connect_retry(addr2.as_str(), Duration::from_secs(10)).expect("reopen");
    c.query("CREATE TABLE s2 (id BIGINT, v BIGINT) STORED AS DUALTABLE")
        .unwrap();
    c.query("INSERT INTO s2 VALUES (1, 7)").unwrap();
    let r = c.query("SELECT v FROM s2 WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(7));
    drop(c);

    let status = Command::new("kill")
        .args(["-TERM", &child2.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    assert!(child2.wait().expect("wait").success());
    let _ = std::fs::remove_dir_all(&data);
}
