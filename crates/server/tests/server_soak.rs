//! Fault-injected soak: a client storm against a deliberately small
//! worker pool, with transient storage faults armed mid-run, deliberate
//! mid-transaction disconnects, and overload bursts.
//!
//! The oracle is exact, not statistical. Every committer counts an
//! increment **only** when the server acknowledged it: a `COMMIT` that
//! returned OK, or a failed COMMIT whose structured error frame lists
//! the table as already durably committed. Everything else — conflicts,
//! shed statements, timeouts, injected faults — restarts the round.
//! After the storm the table must show exactly the acked counts, every
//! snapshot pin must have drained, generation GC must still advance,
//! and the admission ledger must balance to the statement:
//! `accepted + shed == submitted`.
//!
//! Half the seeds run with the HTAP delta tier on (a tiny budget, so the
//! storm spills mid-flight); the acked-commit oracle and every ledger
//! check are identical either way, and `SHOW HEALTH` must surface the
//! delta tier over the wire.
//!
//! Runs 25 seeds by default; override with `SOAK_SEEDS=N`. A failing
//! seed prints (and drops to `target/last_failed_seed.txt`) its repro.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use dt_common::{seed_from_env, with_seed_repro, FaultKind, FaultPlan, Value};
use dt_hiveql::{SessionConfig, SharedCatalog, TableHandle};
use dt_server::{Client, ClientError, ErrorCode, Server, ServerConfig};
use dualtable::DualTableEnv;

const IDS: i64 = 5;
const COMMITTERS: usize = 6;
const ROUNDS: usize = 12;
const DROPPERS: usize = 4;
const BURSTERS: usize = 3;
const BURST_STATEMENTS: usize = 30;

/// Tiny deterministic RNG (xorshift) so each seed replays exactly.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn retry_until_ok(client: &mut Client, sql: &str) -> dt_server::Response {
    for _ in 0..10_000 {
        match client.query(sql) {
            Ok(r) => return r,
            Err(e) if e.is_retryable() => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => panic!("{sql}: non-retryable {e}"),
        }
    }
    panic!("{sql}: retries exhausted");
}

/// One BEGIN/UPDATE/COMMIT attempt. `Ok(true)` means the increment is
/// durably applied; `Ok(false)` means it provably is not.
fn attempt_increment(client: &mut Client, id: i64) -> Result<bool, ClientError> {
    // Reset until the server definitively reports the session state:
    // Ok (a stale transaction was open, now closed) or InvalidArgument
    // (none open). A shed ROLLBACK never executed, so retry it.
    loop {
        match client.query("ROLLBACK") {
            Ok(_) => break,
            Err(ClientError::Server(e)) if e.code == ErrorCode::InvalidArgument => break,
            Err(e) if e.is_retryable() => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => return Err(e),
        }
    }
    loop {
        match client.query("BEGIN") {
            Ok(_) => break,
            Err(e) if e.is_retryable() => std::thread::sleep(Duration::from_millis(1)),
            Err(e) => return Err(e),
        }
    }
    if client
        .query(&format!("UPDATE soak SET v = v + 1 WHERE id = {id}"))
        .is_err()
    {
        // Shed, timed out, or hit an injected fault. The overlay state
        // is unknown; abandon the round rather than risk a double
        // increment on retry within the same snapshot.
        return Ok(false);
    }
    loop {
        return match client.query("COMMIT") {
            Ok(_) => Ok(true),
            Err(ClientError::Server(e)) => {
                if e.committed.iter().any(|t| t == "soak") {
                    // The structured error frame says our table landed.
                    return Ok(true);
                }
                match e.code {
                    // Never executed: the admission queue refused it or
                    // the deadline expired before the worker picked it
                    // up. The transaction is still open — resend COMMIT.
                    ErrorCode::ServerBusy | ErrorCode::Timeout => {
                        std::thread::sleep(Duration::from_millis(1));
                        continue;
                    }
                    // Conflict / injected fault: the commit applied
                    // nothing and rolled the transaction back.
                    _ => Ok(false),
                }
            }
            Err(e) => Err(e),
        };
    }
}

fn soak_one_seed(seed: u64, total_shed: &AtomicU64, delta: bool) {
    let plan = Arc::new(FaultPlan::seeded(
        seed,
        6,
        4_000,
        &[
            FaultKind::TransientWriteError,
            FaultKind::TransientReadError,
        ],
    ));
    plan.set_armed(false); // setup runs fault-free
    let env = DualTableEnv::in_memory_faulty(plan.clone()).expect("faulty env");
    let catalog = SharedCatalog::new();
    let mut session = SessionConfig::default();
    if delta {
        // Tiny budget: the storm's EDIT commits overflow it repeatedly,
        // so spills interleave with faults, disconnects and shedding.
        session.dualtable.delta_bytes = 256;
    }
    let server = Server::start(
        "127.0.0.1:0",
        env.clone(),
        catalog.clone(),
        ServerConfig {
            workers: 3,
            queue_depth: 4,
            default_deadline_ms: 0,
            session,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let addr = server.local_addr();

    let mut setup = Client::connect_retry(addr, Duration::from_secs(5)).expect("connect");
    retry_until_ok(
        &mut setup,
        "CREATE TABLE soak (id BIGINT, v BIGINT) STORED AS DUALTABLE",
    );
    let values: Vec<String> = (0..IDS).map(|i| format!("({i}, 0)")).collect();
    retry_until_ok(
        &mut setup,
        &format!("INSERT INTO soak VALUES {}", values.join(",")),
    );
    drop(setup);

    // ---- storm ----
    plan.set_armed(true);
    let acked: Vec<AtomicU64> = (0..IDS).map(|_| AtomicU64::new(0)).collect();
    let acked = Arc::new(acked);
    std::thread::scope(|s| {
        for c in 0..COMMITTERS {
            let acked = acked.clone();
            s.spawn(move || {
                let mut rng = Rng::new(seed.wrapping_mul(0x9e37).wrapping_add(c as u64));
                let mut client =
                    Client::connect_retry(addr, Duration::from_secs(5)).expect("connect");
                for _ in 0..ROUNDS {
                    let id = (rng.next() % IDS as u64) as i64;
                    let mut tries = 0;
                    loop {
                        match attempt_increment(&mut client, id) {
                            Ok(true) => {
                                acked[id as usize].fetch_add(1, Ordering::SeqCst);
                                break;
                            }
                            Ok(false) => {
                                tries += 1;
                                assert!(tries < 1_000, "round never converged");
                            }
                            Err(e) => panic!("transport died mid-storm: {e}"),
                        }
                    }
                }
            });
        }
        // Deliberate mid-transaction disconnects: BEGIN, optionally
        // buffer a write, then let the socket die.
        for d in 0..DROPPERS {
            s.spawn(move || {
                let mut client =
                    Client::connect_retry(addr, Duration::from_secs(5)).expect("connect");
                loop {
                    match client.query("BEGIN") {
                        Ok(_) => break,
                        Err(e) if e.is_retryable() => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(e) => panic!("BEGIN: {e}"),
                    }
                }
                if d % 2 == 0 {
                    // Buffered write that must vanish with the drop.
                    let _ = client.query("UPDATE soak SET v = v + 1000 WHERE id = 0");
                }
                drop(client); // TCP FIN mid-transaction
            });
        }
        // Overload bursts: cheap statements fired as fast as possible,
        // some under a 1ms deadline. Failures (SERVER_BUSY, TIMEOUT)
        // are expected and ignored — the ledger accounts for them.
        for b in 0..BURSTERS {
            s.spawn(move || {
                let mut client =
                    Client::connect_retry(addr, Duration::from_secs(5)).expect("connect");
                for i in 0..BURST_STATEMENTS {
                    let deadline_ms = if (i + b) % 3 == 0 { 1 } else { 0 };
                    let _ = client.query_deadline("SHOW HEALTH", deadline_ms);
                }
            });
        }
    });
    plan.heal_and_disarm();

    // ---- verdict ----
    // Every dropper teardown and session close must finish first.
    let store = match catalog.get("soak").expect("table registered") {
        TableHandle::Dual(store) => store,
        _ => panic!("expected DUALTABLE"),
    };
    let health = server.health();
    for _ in 0..1_000 {
        let snap = health.snapshot();
        if snap.conns_dropped_in_txn == DROPPERS as u64
            && snap.sessions_active == 0
            && store.pinned_snapshots() == 0
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let snap = health.snapshot();
    assert_eq!(
        snap.conns_dropped_in_txn, DROPPERS as u64,
        "seed {seed}: every deliberate drop (and only those) must be counted"
    );
    assert_eq!(snap.sessions_active, 0, "seed {seed}: session gauge leaked");
    assert_eq!(
        store.pinned_snapshots(),
        0,
        "seed {seed}: snapshot pins leaked after the storm"
    );
    assert_eq!(
        snap.stmts_accepted + snap.stmts_shed,
        snap.stmts_submitted,
        "seed {seed}: admission ledger out of balance"
    );
    total_shed.fetch_add(snap.stmts_shed, Ordering::SeqCst);

    // Zero lost (and zero phantom) updates: the table shows exactly the
    // acked increments, per id.
    let mut check = Client::connect_retry(addr, Duration::from_secs(5)).expect("connect");
    for id in 0..IDS {
        let r = retry_until_ok(&mut check, &format!("SELECT v FROM soak WHERE id = {id}"));
        assert_eq!(
            r.rows[0][0],
            Value::Int64(acked[id as usize].load(Ordering::SeqCst) as i64),
            "seed {seed}: id {id} diverged from the acked-commit oracle"
        );
    }

    // The storm left nothing behind that blocks generation GC.
    let gcd_before = env.health.snapshot().generations_gcd;
    let values: Vec<String> = (0..IDS).map(|i| format!("({i}, {i})")).collect();
    retry_until_ok(
        &mut check,
        &format!("INSERT OVERWRITE soak VALUES {}", values.join(",")),
    );
    assert!(
        env.health.snapshot().generations_gcd > gcd_before,
        "seed {seed}: generation GC stalled after the storm"
    );

    // SHOW HEALTH surfaces the server tier over the wire.
    let r = retry_until_ok(&mut check, "SHOW HEALTH");
    let server_metrics: Vec<String> = r
        .rows
        .iter()
        .filter(|row| row[0] == Value::Utf8("server".into()))
        .map(|row| match &row[1] {
            Value::Utf8(m) => m.clone(),
            other => panic!("bad metric cell {other:?}"),
        })
        .collect();
    for want in [
        "sessions_active",
        "queue_depth",
        "stmts_shed",
        "stmts_timed_out",
        "conns_dropped_in_txn",
    ] {
        assert!(
            server_metrics.iter().any(|m| m == want),
            "seed {seed}: SHOW HEALTH missing server metric {want}"
        );
    }
    // The delta tier reports as its own tier row group, and with the
    // tiny budget the storm must actually have spilled at least once.
    let delta_metric = |name: &str| -> u64 {
        r.rows
            .iter()
            .find(|row| row[0] == Value::Utf8("delta".into()) && row[1] == Value::Utf8(name.into()))
            .and_then(|row| row[2].as_i64())
            .unwrap_or_else(|| panic!("seed {seed}: SHOW HEALTH missing delta metric {name}"))
            as u64
    };
    let spills = delta_metric("delta_spills");
    let _ = delta_metric("delta_bytes_used");
    let _ = delta_metric("delta_hits");
    if delta {
        assert!(
            spills > 0,
            "seed {seed}: delta storm never spilled — the budget is not binding"
        );
    } else {
        assert_eq!(spills, 0, "seed {seed}: delta-off run spilled");
    }
    drop(check);
    server.shutdown();
}

#[test]
fn fault_injected_soak() {
    let seeds: u64 = std::env::var("SOAK_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(25);
    let base = seed_from_env(0);
    let total_shed = AtomicU64::new(0);
    for seed in base..base + seeds {
        with_seed_repro(
            "dt-server",
            "server_soak",
            "fault_injected_soak",
            seed,
            |s| {
                // Odd seeds run with the HTAP delta tier on; the oracle and
                // every ledger check are identical either way.
                soak_one_seed(s, &total_shed, s % 2 == 1);
            },
        );
    }
    // The bursts must actually have overloaded the pool at least once
    // across the run — otherwise the shedding path went untested.
    assert!(
        total_shed.load(Ordering::SeqCst) > 0,
        "no statement was ever shed: the overload bursts are too weak"
    );
}
