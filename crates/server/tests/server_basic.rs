//! Protocol-level integration tests: wire CRUD, per-statement deadline
//! timeouts, admission-control shedding, and the structured
//! partial-COMMIT error frame.

use std::sync::Arc;
use std::time::Duration;

use dt_common::Value;
use dt_hiveql::SharedCatalog;
use dt_server::{Client, ClientError, ErrorCode, Server, ServerConfig};
use dualtable::DualTableEnv;

fn start(config: ServerConfig) -> Server {
    Server::start(
        "127.0.0.1:0",
        DualTableEnv::in_memory(),
        SharedCatalog::new(),
        config,
    )
    .expect("server start")
}

fn connect(server: &Server) -> Client {
    Client::connect_retry(server.local_addr(), Duration::from_secs(5)).expect("connect")
}

#[test]
fn crud_round_trip_over_the_wire() {
    let server = start(ServerConfig::default());
    let mut c = connect(&server);

    c.query("CREATE TABLE t (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
        .unwrap();
    let r = c
        .query("INSERT INTO t VALUES (1, 0.5), (2, 1.5), (3, 2.5)")
        .unwrap();
    assert_eq!(r.affected, 3);

    let r = c
        .query("SELECT id, v FROM t WHERE v > 1.0 ORDER BY id")
        .unwrap();
    assert_eq!(r.columns.len(), 2);
    assert_eq!(r.columns[0].0, "id");
    assert_eq!(
        r.rows,
        vec![
            vec![Value::Int64(2), Value::Float64(1.5)],
            vec![Value::Int64(3), Value::Float64(2.5)],
        ]
    );

    let r = c.query("UPDATE t SET v = 9.0 WHERE id = 1").unwrap();
    assert_eq!(r.affected, 1);
    let r = c.query("DELETE FROM t WHERE id = 3").unwrap();
    assert_eq!(r.affected, 1);
    let r = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(2));

    // Errors carry their class across the wire.
    let e = c.query("SELECT * FROM missing").unwrap_err();
    let server_err = e.server().expect("server-side error");
    assert_eq!(server_err.code, ErrorCode::NotFound);
    assert!(!server_err.retryable);

    server.shutdown();
}

#[test]
fn second_connection_sees_first_connections_tables() {
    let server = start(ServerConfig::default());
    let mut a = connect(&server);
    a.query("CREATE TABLE shared_t (id BIGINT) STORED AS DUALTABLE")
        .unwrap();
    a.query("INSERT INTO shared_t VALUES (7)").unwrap();

    let mut b = connect(&server);
    let r = b.query("SELECT id FROM shared_t").unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int64(7)]]);
    server.shutdown();
}

#[test]
fn deadline_times_out_long_scan_without_poisoning_session() {
    let server = start(ServerConfig::default());
    let mut c = connect(&server);
    c.query("CREATE TABLE big (id BIGINT, v BIGINT) STORED AS DUALTABLE")
        .unwrap();
    // Enough rows that the scan reliably crosses many deadline-check
    // batches (checks run every 1024 rows).
    let mut values: Vec<String> = Vec::new();
    for i in 0..4000 {
        values.push(format!("({i}, {i})"));
    }
    c.query(&format!("INSERT INTO big VALUES {}", values.join(",")))
        .unwrap();

    // A 0ms... we can't pass 0 (that means server default); 1ms expires
    // during queue wait + scan virtually always. Retry a few times in
    // case the machine is fast enough to finish a 4k-row scan in 1ms.
    let mut timed_out = false;
    for _ in 0..20 {
        match c.query_deadline(
            "SELECT COUNT(*) FROM big b1 WHERE b1.id >= 0 AND b1.v >= 0",
            1,
        ) {
            Err(e) => {
                let se = e.server().expect("server error");
                assert_eq!(se.code, ErrorCode::Timeout, "unexpected: {se}");
                assert!(se.retryable, "TIMEOUT must be retryable");
                timed_out = true;
                break;
            }
            Ok(_) => continue,
        }
    }
    assert!(timed_out, "1ms deadline never fired on a 4k-row scan");

    // The session is NOT poisoned: the same statement under no deadline
    // succeeds on the same connection.
    let r = c.query("SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(4000));

    // A transaction survives a timed-out statement inside it.
    c.query("BEGIN").unwrap();
    c.query("UPDATE big SET v = 0 WHERE id = 5").unwrap();
    let _ = c.query_deadline("SELECT COUNT(*) FROM big b2 WHERE b2.id >= 0", 1);
    c.query("COMMIT").unwrap();
    let r = c.query("SELECT v FROM big WHERE id = 5").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(0));

    let snap = server.health().snapshot();
    assert!(snap.stmts_timed_out >= 1, "timeout counter never moved");
    server.shutdown();
}

#[test]
fn full_queue_sheds_with_retryable_server_busy() {
    // 1 worker, 1-deep queue: two slow statements occupy the server;
    // the third must shed.
    let server = start(ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    });
    let mut setup = connect(&server);
    setup
        .query("CREATE TABLE q (id BIGINT, v BIGINT) STORED AS DUALTABLE")
        .unwrap();
    let values: Vec<String> = (0..30_000).map(|i| format!("({i}, {i})")).collect();
    setup
        .query(&format!("INSERT INTO q VALUES {}", values.join(",")))
        .unwrap();

    let addr = server.local_addr();
    let slow = "SELECT COUNT(*) FROM q a JOIN q b ON a.id = b.id WHERE a.v >= 0";
    // Blockers resubmit the slow statement until told to stop, so the
    // worker + queue stay saturated for as long as the probe needs. A
    // one-shot blocker is racy: the probe's own accepted statement can
    // occupy the single queue slot (shedding the *blocker* instead),
    // and on a fast machine both blockers can finish before the probe
    // ever lands in a full-queue window.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut blockers = Vec::new();
    for _ in 0..2 {
        let stop = stop.clone();
        blockers.push(std::thread::spawn(move || {
            let mut c = Client::connect_retry(addr, Duration::from_secs(5)).unwrap();
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                match c.query(slow) {
                    Ok(r) => assert_eq!(r.rows.len(), 1),
                    Err(e) if e.is_retryable() => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(e) => panic!("blocker failed: {e}"),
                }
            }
        }));
    }

    // Hammer with a third connection until SERVER_BUSY. Under a 1/1
    // pool with persistent blockers this sheds within a few rounds.
    let mut c = connect(&server);
    let mut shed = false;
    for _ in 0..2000 {
        match c.query("SELECT 1") {
            Err(ClientError::Server(e)) if e.code == ErrorCode::ServerBusy => {
                assert!(e.retryable, "SERVER_BUSY must be retryable");
                shed = true;
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
            Ok(_) => std::thread::sleep(Duration::from_micros(100)),
        }
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    for b in blockers {
        b.join().unwrap();
    }
    assert!(shed, "bounded queue never shed under a 1-worker pile-up");

    let snap = server.health().snapshot();
    assert!(snap.stmts_shed >= 1);
    assert_eq!(
        snap.stmts_accepted + snap.stmts_shed,
        snap.stmts_submitted,
        "admission accounting must be exact"
    );
    server.shutdown();
}

#[test]
fn failed_multi_table_commit_reports_committed_tables_in_error_frame() {
    let server = start(ServerConfig::default());
    let mut a = connect(&server);
    a.query("CREATE TABLE t1 (id BIGINT, v BIGINT) STORED AS DUALTABLE")
        .unwrap();
    a.query("CREATE TABLE t2 (id BIGINT, v BIGINT) STORED AS DUALTABLE")
        .unwrap();
    a.query("INSERT INTO t1 VALUES (1, 0)").unwrap();
    a.query("INSERT INTO t2 VALUES (1, 0)").unwrap();

    // Session A buffers writes to both tables. COMMIT applies in table
    // name order (t1 then t2); a conflicting commit on t2 from session B
    // makes t2 fail AFTER t1 committed.
    a.query("BEGIN").unwrap();
    a.query("UPDATE t1 SET v = 10 WHERE id = 1").unwrap();
    a.query("UPDATE t2 SET v = 10 WHERE id = 1").unwrap();

    let mut b = connect(&server);
    b.query("BEGIN").unwrap();
    b.query("UPDATE t2 SET v = 99 WHERE id = 1").unwrap();
    b.query("COMMIT").unwrap();

    let err = a.query("COMMIT").unwrap_err();
    let se = err.server().expect("server error frame");
    assert_eq!(se.code, ErrorCode::Conflict, "got {se}");
    assert!(se.retryable);
    assert_eq!(
        se.committed,
        vec!["t1".to_string()],
        "the structured frame must name exactly the already-committed tables"
    );

    // t1's write survived (per-table atomicity), t2 kept B's value.
    let r = a.query("SELECT v FROM t1").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(10));
    let r = a.query("SELECT v FROM t2").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(99));

    // And the list clears on the next statement: a plain failure carries
    // no stale table list.
    let err = a.query("SELECT * FROM nope").unwrap_err();
    assert!(err.server().unwrap().committed.is_empty());
    server.shutdown();
}

#[test]
fn show_health_exposes_server_tier() {
    let server = start(ServerConfig::default());
    let mut c = connect(&server);
    let r = c.query("SHOW HEALTH").unwrap();
    let server_metrics: Vec<(String, i64)> = r
        .rows
        .iter()
        .filter(|row| row[0] == Value::Utf8("server".into()))
        .map(|row| {
            (
                match &row[1] {
                    Value::Utf8(s) => s.clone(),
                    other => panic!("bad metric {other:?}"),
                },
                match row[2] {
                    Value::Int64(v) => v,
                    ref other => panic!("bad value {other:?}"),
                },
            )
        })
        .collect();
    let names: Vec<&str> = server_metrics.iter().map(|(n, _)| n.as_str()).collect();
    for expected in [
        "sessions_active",
        "queue_depth",
        "stmts_shed",
        "stmts_timed_out",
        "conns_dropped_in_txn",
    ] {
        assert!(
            names.contains(&expected),
            "missing server metric {expected}"
        );
    }
    // This very connection is an active session.
    let active = server_metrics
        .iter()
        .find(|(n, _)| n == "sessions_active")
        .unwrap()
        .1;
    assert!(active >= 1);
    server.shutdown();
}

#[test]
fn shutdown_under_load_drains_and_refuses() {
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 8,
        ..ServerConfig::default()
    });
    let mut setup = connect(&server);
    setup
        .query("CREATE TABLE s (id BIGINT) STORED AS DUALTABLE")
        .unwrap();
    let values: Vec<String> = (0..5000).map(|i| format!("({i})")).collect();
    setup
        .query(&format!("INSERT INTO s VALUES {}", values.join(",")))
        .unwrap();

    let addr = server.local_addr();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut clients = Vec::new();
    for _ in 0..4 {
        let stop = Arc::clone(&stop);
        clients.push(std::thread::spawn(move || {
            let mut ok = 0u64;
            let mut refused = 0u64;
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                let mut c = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => break, // listener gone: shutdown reached accept
                };
                match c.query("SELECT COUNT(*) FROM s") {
                    Ok(r) => {
                        assert_eq!(r.rows[0][0], Value::Int64(5000));
                        ok += 1;
                    }
                    Err(e) if e.is_retryable() => refused += 1,
                    Err(e) => panic!("non-retryable under shutdown: {e}"),
                }
            }
            (ok, refused)
        }));
    }
    std::thread::sleep(Duration::from_millis(300));
    server.shutdown(); // must drain without panicking or hanging
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let mut total_ok = 0;
    for c in clients {
        let (ok, _refused) = c.join().unwrap();
        total_ok += ok;
    }
    assert!(total_ok > 0, "no statement completed before shutdown");
}
