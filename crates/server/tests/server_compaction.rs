//! The server's background compaction daemon (DESIGN.md §15): folds
//! happen behind live traffic, `SET COMPACTION` flips the mode over the
//! wire, and the load-aware throttle keeps maintenance off busy queues.

use std::time::{Duration, Instant};

use dt_common::Value;
use dt_hiveql::SharedCatalog;
use dt_server::{Client, Server, ServerConfig};
use dualtable::DualTableEnv;

fn connect(server: &Server) -> Client {
    Client::connect_retry(server.local_addr(), Duration::from_secs(5)).expect("connect")
}

/// Polls `cond` for up to ten seconds.
fn eventually(cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

fn daemon_config() -> ServerConfig {
    ServerConfig {
        compaction: true,
        compaction_interval_ms: 5,
        compaction_queue_threshold: 100, // effectively never throttle
        ..ServerConfig::default()
    }
}

/// Makes `t` exist with 50 rows and a handful of attached-tier updates —
/// enough dirt for the fold score to pick the file up.
fn dirty_table(c: &mut Client) {
    c.query("CREATE TABLE t (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
        .unwrap();
    let values: Vec<String> = (0..50).map(|i| format!("({i}, {i}.5)")).collect();
    c.query(&format!("INSERT INTO t VALUES {}", values.join(", ")))
        .unwrap();
    c.query("UPDATE t SET v = -1.0 WHERE id < 2").unwrap();
}

#[test]
fn daemon_folds_dirty_tables_behind_live_traffic() {
    let env = DualTableEnv::in_memory();
    let server = Server::start(
        "127.0.0.1:0",
        env.clone(),
        SharedCatalog::new(),
        daemon_config(),
    )
    .expect("server start");
    let mut c = connect(&server);
    dirty_table(&mut c);

    assert!(
        eventually(|| env.health.snapshot().compactions_completed >= 1),
        "daemon never folded: {:?}",
        env.health.snapshot()
    );

    // The fold changed layout, never data — over the same wire.
    let r = c.query("SELECT COUNT(*) FROM t WHERE v = -1.0").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(2));
    let r = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int64(50));

    // SHOW COMPACTION reflects the daemon's ledger.
    let r = c.query("SHOW COMPACTION").unwrap();
    let get = |metric: &str| -> String {
        r.rows
            .iter()
            .find(|row| row[0] == Value::from(metric))
            .map(|row| row[1].as_str().unwrap().to_string())
            .unwrap_or_else(|| panic!("missing metric {metric}"))
    };
    assert_eq!(get("mode"), "auto");
    assert_eq!(get("parked"), "false");
    assert!(get("completed").parse::<u64>().unwrap() >= 1);

    // Ledger exactness holds while the daemon keeps ticking.
    let snap = env.health.snapshot();
    assert_eq!(
        snap.compactions_completed + snap.compactions_lost_race + snap.compactions_aborted,
        snap.compactions_started
    );
    server.shutdown();
}

#[test]
fn set_compaction_off_idles_the_daemon_and_auto_resumes_it() {
    let env = DualTableEnv::in_memory();
    let server = Server::start(
        "127.0.0.1:0",
        env.clone(),
        SharedCatalog::new(),
        daemon_config(),
    )
    .expect("server start");
    let mut c = connect(&server);

    c.query("SET COMPACTION = OFF").unwrap();
    dirty_table(&mut c);
    // Plenty of daemon ticks pass; none may open the ledger while OFF.
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        env.health.snapshot().compactions_started,
        0,
        "OFF mode must keep the daemon idle"
    );

    c.query("SET COMPACTION = AUTO").unwrap();
    assert!(
        eventually(|| env.health.snapshot().compactions_completed >= 1),
        "daemon never resumed after SET COMPACTION = AUTO"
    );
    server.shutdown();
}

#[test]
fn loaded_queue_throttles_maintenance() {
    let env = DualTableEnv::in_memory();
    let server = Server::start(
        "127.0.0.1:0",
        env.clone(),
        SharedCatalog::new(),
        ServerConfig {
            compaction: true,
            compaction_interval_ms: 5,
            // Zero threshold: the queue is always "too deep" — the
            // degenerate standing-load case.
            compaction_queue_threshold: 0,
            ..ServerConfig::default()
        },
    )
    .expect("server start");
    let mut c = connect(&server);
    dirty_table(&mut c);

    assert!(
        eventually(|| env.health.snapshot().compactor_throttled >= 3),
        "throttle never engaged"
    );
    assert_eq!(
        env.health.snapshot().compactions_started,
        0,
        "a throttled daemon must not fold"
    );
    // The throttle is visible to operators.
    let r = c.query("SHOW COMPACTION").unwrap();
    let throttled: u64 = r
        .rows
        .iter()
        .find(|row| row[0] == Value::from("throttled"))
        .and_then(|row| row[1].as_str().unwrap().parse().ok())
        .expect("throttled metric");
    assert!(throttled >= 3);
    server.shutdown();
}
