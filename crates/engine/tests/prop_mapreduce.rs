//! Property test: the MapReduce engine computes the same aggregates as a
//! sequential reference for arbitrary inputs and parallelism.

use std::collections::BTreeMap;

use dt_engine::{run_map_reduce, JobConfig, JobCounters};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn grouped_sums_match_reference(
        splits in proptest::collection::vec(
            proptest::collection::vec((0u8..32, -100i64..100), 0..50),
            0..8,
        ),
        mappers in 1usize..6,
        reducers in 1usize..5,
    ) {
        let mut expect: BTreeMap<u8, i64> = BTreeMap::new();
        for split in &splits {
            for (k, v) in split {
                *expect.entry(*k).or_default() += v;
            }
        }
        let counters = JobCounters::new();
        let out = run_map_reduce(
            &JobConfig { max_mappers: mappers, num_reducers: reducers },
            &counters,
            splits,
            |pairs: Vec<(u8, i64)>, emit: &mut dyn FnMut(u8, i64)| {
                for (k, v) in pairs {
                    emit(k, v);
                }
                Ok(())
            },
            |k, vs| Ok(vec![(k, vs.iter().sum::<i64>())]),
        ).unwrap();
        let got: BTreeMap<u8, i64> = out.into_iter().collect();
        prop_assert_eq!(got, expect);
    }
}
