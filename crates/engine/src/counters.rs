//! Job counters, in the spirit of Hadoop's counter facility.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters accumulated across all tasks of one job.
#[derive(Debug, Default)]
pub struct JobCounters {
    /// Records consumed by mappers.
    pub map_input_records: AtomicU64,
    /// Key/value pairs emitted by mappers.
    pub map_output_records: AtomicU64,
    /// Distinct keys seen by reducers.
    pub reduce_input_groups: AtomicU64,
    /// Records produced by reducers.
    pub reduce_output_records: AtomicU64,
}

impl JobCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn add_map_input(&self, n: u64) {
        self.map_input_records.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_map_output(&self, n: u64) {
        self.map_output_records.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_reduce_groups(&self, n: u64) {
        self.reduce_input_groups.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_reduce_output(&self, n: u64) {
        self.reduce_output_records.fetch_add(n, Ordering::Relaxed);
    }

    /// Snapshot of (map input, map output, reduce groups, reduce output).
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.map_input_records.load(Ordering::Relaxed),
            self.map_output_records.load(Ordering::Relaxed),
            self.reduce_input_groups.load(Ordering::Relaxed),
            self.reduce_output_records.load(Ordering::Relaxed),
        )
    }
}
