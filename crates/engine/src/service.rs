//! A long-lived worker pool with a bounded dispatch queue — the serving
//! counterpart of [`JobPool`](crate::JobPool).
//!
//! `JobPool` is batch-shaped: it spawns scoped threads for one `run`,
//! joins them, and returns. A server needs the opposite: N threads that
//! outlive any one statement, a *bounded* queue in front of them so
//! overload turns into an explicit, retryable refusal instead of an
//! unbounded backlog, and per-job panic isolation so one poisoned
//! statement never takes a worker (or the process) down.
//!
//! [`ServicePool`] provides exactly that surface:
//!
//! * [`ServicePool::try_submit`] — non-blocking admission. A full queue
//!   returns [`SubmitError::Full`] immediately; the caller (the server's
//!   front door) sheds the request with `SERVER_BUSY`.
//! * [`ServicePool::queued`] — the current dispatch-queue depth, for the
//!   `queue_depth` health gauge.
//! * [`ServicePool::shutdown`] — closes the queue, lets the workers
//!   *drain* every already-accepted job, then joins them. Nothing
//!   accepted is ever dropped; nothing new gets in.
//!
//! Jobs run under `catch_unwind`: a panicking job increments
//! [`ServicePool::panics`] and the worker moves on. Callers that need
//! richer panic handling (e.g. session teardown) should wrap their own
//! `catch_unwind` inside the job; this one is the backstop that keeps
//! the pool alive.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// A unit of work for the pool.
pub type ServiceJob = Box<dyn FnOnce() + Send + 'static>;

/// Why [`ServicePool::try_submit`] refused a job. The job is handed back
/// so the caller can reply to the client without re-building it.
pub enum SubmitError {
    /// The bounded dispatch queue is at capacity — shed the request.
    Full(ServiceJob),
    /// The pool is shutting down (or already shut down).
    Closed(ServiceJob),
}

impl std::fmt::Debug for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full(_) => write!(f, "SubmitError::Full"),
            SubmitError::Closed(_) => write!(f, "SubmitError::Closed"),
        }
    }
}

#[derive(Default)]
struct Gauges {
    queued: AtomicU64,
    panics: AtomicU64,
}

/// A fixed-size pool of long-lived workers behind a bounded queue.
pub struct ServicePool {
    /// `None` after shutdown. Behind a mutex so shutdown works through a
    /// shared reference (servers hold their pool in an `Arc`).
    tx: Mutex<Option<SyncSender<ServiceJob>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    gauges: Arc<Gauges>,
}

impl ServicePool {
    /// Spawns `workers` threads (clamped to ≥ 1) behind a queue holding
    /// at most `queue_cap` waiting jobs (clamped to ≥ 1).
    pub fn new(workers: usize, queue_cap: usize) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<ServiceJob>(queue_cap.max(1));
        // MPMC by Mutex, like JobPool: idle workers pull from one queue.
        let rx = Arc::new(Mutex::new(rx));
        let gauges = Arc::new(Gauges::default());
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let gauges = Arc::clone(&gauges);
                std::thread::Builder::new()
                    .name(format!("svc-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &gauges))
                    .expect("spawn service worker")
            })
            .collect();
        ServicePool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            gauges,
        }
    }

    /// Non-blocking admission. `Err(Full)` means the queue is at capacity
    /// *right now* — the canonical load-shedding signal.
    pub fn try_submit(&self, job: ServiceJob) -> Result<(), SubmitError> {
        let guard = self.tx.lock().unwrap_or_else(|e| e.into_inner());
        let Some(tx) = guard.as_ref() else {
            return Err(SubmitError::Closed(job));
        };
        // Count before sending so a racing worker's decrement can never
        // observe the queue at depth "-1".
        self.gauges.queued.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(job)) => {
                self.gauges.queued.fetch_sub(1, Ordering::Relaxed);
                Err(SubmitError::Full(job))
            }
            Err(TrySendError::Disconnected(job)) => {
                self.gauges.queued.fetch_sub(1, Ordering::Relaxed);
                Err(SubmitError::Closed(job))
            }
        }
    }

    /// Jobs currently waiting on the dispatch queue (admitted, not yet
    /// picked up by a worker).
    pub fn queued(&self) -> u64 {
        self.gauges.queued.load(Ordering::Relaxed)
    }

    /// Jobs that panicked (and were contained) since the pool started.
    pub fn panics(&self) -> u64 {
        self.gauges.panics.load(Ordering::Relaxed)
    }

    /// The worker-thread count. Zero after shutdown.
    pub fn workers(&self) -> usize {
        self.workers.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Closes the queue and joins the workers after they drain every
    /// already-accepted job. Idempotent via `Drop` (dropping an
    /// un-shutdown pool performs the same drain).
    pub fn shutdown(self) {
        self.drain();
    }

    /// [`ServicePool::shutdown`] through a shared reference — for pools
    /// owned by an `Arc`-shared server. Idempotent; concurrent callers
    /// both observe a fully drained pool before returning.
    pub fn drain(&self) {
        // Dropping the sender disconnects the channel once the queue is
        // empty; workers exit their recv loop after draining it.
        *self.tx.lock().unwrap_or_else(|e| e.into_inner()) = None;
        let handles: Vec<JoinHandle<()>> = self
            .workers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .drain(..)
            .collect();
        for handle in handles {
            // A worker that panicked outside catch_unwind (impossible for
            // job code, but defensive) must not poison shutdown.
            let _ = handle.join();
        }
    }
}

impl Drop for ServicePool {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(rx: &Mutex<Receiver<ServiceJob>>, gauges: &Gauges) {
    loop {
        let job = {
            let queue = rx.lock().unwrap_or_else(|e| e.into_inner());
            queue.recv()
        };
        let Ok(job) = job else { break };
        gauges.queued.fetch_sub(1, Ordering::Relaxed);
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            gauges.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = ServicePool::new(2, 8);
        let (tx, rx) = mpsc::channel();
        for i in 0..10u32 {
            let tx = tx.clone();
            let mut job: ServiceJob = Box::new(move || tx.send(i).unwrap());
            // The queue may momentarily be full; admission is best-effort.
            loop {
                match pool.try_submit(job) {
                    Ok(()) => break,
                    Err(SubmitError::Full(j)) => {
                        job = j;
                        std::thread::yield_now();
                    }
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
        }
        let mut got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        pool.shutdown();
    }

    #[test]
    fn full_queue_sheds_instead_of_blocking() {
        let pool = ServicePool::new(1, 1);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let release_rx = Arc::new(Mutex::new(release_rx));
        // Occupy the worker…
        let rx = Arc::clone(&release_rx);
        pool.try_submit(Box::new(move || {
            rx.lock().unwrap().recv().unwrap();
        }))
        .unwrap();
        // …then fill the 1-slot queue. One of these two lands in the
        // queue; keep trying until the worker has dequeued the blocker.
        let mut queued = false;
        for _ in 0..100 {
            let rx = Arc::clone(&release_rx);
            match pool.try_submit(Box::new(move || {
                rx.lock().unwrap().recv().unwrap();
            })) {
                Ok(()) if pool.queued() == 1 => {
                    queued = true;
                    break;
                }
                Ok(()) => continue,
                Err(SubmitError::Full(_)) => {
                    queued = true;
                    break;
                }
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(queued);
        // With the worker busy and the queue holding a job, the next
        // submit must shed.
        let mut shed = false;
        for _ in 0..100 {
            match pool.try_submit(Box::new(|| {})) {
                Err(SubmitError::Full(_)) => {
                    shed = true;
                    break;
                }
                Ok(()) => std::thread::sleep(Duration::from_millis(1)),
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(shed, "bounded queue never refused admission");
        drop(release_tx); // unblock (recv errors, jobs finish)
        pool.shutdown();
    }

    #[test]
    fn panicking_job_is_contained() {
        let pool = ServicePool::new(1, 4);
        let ran_after = Arc::new(AtomicUsize::new(0));
        pool.try_submit(Box::new(|| panic!("boom"))).unwrap();
        let flag = Arc::clone(&ran_after);
        pool.try_submit(Box::new(move || {
            flag.store(1, Ordering::SeqCst);
        }))
        .unwrap();
        // Drain via shutdown: both jobs ran, one panicked, pool survived.
        let panics = {
            let p = &pool;
            for _ in 0..500 {
                if p.panics() == 1 && ran_after.load(Ordering::SeqCst) == 1 {
                    break;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            p.panics()
        };
        assert_eq!(panics, 1);
        assert_eq!(ran_after.load(Ordering::SeqCst), 1);
        pool.shutdown();
    }

    #[test]
    fn shutdown_drains_accepted_jobs() {
        let pool = ServicePool::new(2, 64);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let done = Arc::clone(&done);
            pool.try_submit(Box::new(move || {
                std::thread::sleep(Duration::from_micros(200));
                done.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(done.load(Ordering::SeqCst), 32, "shutdown must drain");
    }

    #[test]
    fn submit_after_shutdown_reports_closed() {
        let pool = ServicePool::new(1, 1);
        pool.drain();
        assert!(matches!(
            pool.try_submit(Box::new(|| {})),
            Err(SubmitError::Closed(_))
        ));
    }
}
