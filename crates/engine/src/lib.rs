//! A MapReduce-style parallel execution engine.
//!
//! Hive compiles HiveQL into a DAG of MapReduce jobs; the paper's UNION READ
//! is likewise "a simple Map Reduce algorithm using a divide-and-conquer
//! strategy" (§III-C). This crate supplies that substrate as a library:
//!
//! * [`run_map_reduce`] — the full phase sequence: parallel **map** over
//!   input splits, hash-**partitioned shuffle**, per-partition **sort**,
//!   parallel **reduce**;
//! * [`parallel_map`] — map-only jobs (scans, filters, per-split DML), the
//!   shape most Hive stages take;
//! * [`JobCounters`] — per-job record counters, mirroring Hadoop's counter
//!   facility.
//!
//! Tasks run on crossbeam scoped threads; "splits" model HDFS blocks or ORC
//! stripes and determine the parallelism, exactly as mapper counts do on a
//! real cluster.

//!
//! For *serving* rather than batch work, [`ServicePool`] keeps N
//! long-lived workers behind a bounded dispatch queue with non-blocking
//! admission — the execution substrate of the `dualtabled` server.

//!
//! For *maintenance* work, [`Supervisor`] keeps one background worker
//! alive across panics and faults, with backoff and a circuit breaker —
//! the restart substrate of `dualtabled`'s compaction daemon.

mod counters;
mod job;
mod pool;
mod service;
mod supervisor;

pub use counters::JobCounters;
pub use job::{parallel_map, parallel_map_fallible, run_map_reduce, JobConfig};
pub use pool::JobPool;
pub use service::{ServiceJob, ServicePool, SubmitError};
pub use supervisor::{Supervisor, SupervisorConfig, SupervisorStats, TickOutcome};
