//! A supervised background maintenance loop (DESIGN.md §15).
//!
//! [`Supervisor`] owns one long-lived worker thread that repeatedly runs a
//! caller-supplied *tick* — for `dualtabled`, one incremental-compaction
//! cycle across the catalog — and keeps running it no matter how the tick
//! fails:
//!
//! * a **panic** is caught ([`std::panic::catch_unwind`]) and the worker
//!   restarts on the next iteration — the supervisor thread itself never
//!   dies;
//! * a **transient** error ([`dt_common::Error::is_transient`]) backs off
//!   on the [`RetryPolicy`] schedule and retries forever — a flaky disk
//!   must never take maintenance down permanently;
//! * a **permanent** error (or a panic) increments a consecutive-failure
//!   count; at [`SupervisorConfig::breaker_threshold`] the circuit breaker
//!   **parks** the loop in a degraded mode. A parked supervisor does no
//!   work and burns no CPU beyond a slow poll of its reset levers:
//!   [`Supervisor::resume`] or the caller's `unpark_when` predicate (wired
//!   by the server to `SET COMPACTION = AUTO`).
//!
//! The tick outcome also drives pacing: [`TickOutcome::Worked`] re-ticks
//! promptly (there may be more dirty files), `Idle`/`Throttled` sleep the
//! longer idle interval. All sleeps are condvar waits, so
//! [`Supervisor::stop`] interrupts them immediately — shutdown never waits
//! out a backoff.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dt_common::{Result, RetryPolicy};

/// What one supervised tick accomplished, as reported by the tick closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// Real work happened (e.g. a fold swung in, or lost its race after
    /// building): re-tick after the short work interval.
    Worked,
    /// Nothing to do: sleep the idle interval.
    Idle,
    /// Work was skipped because the host is under load: sleep the idle
    /// interval and let the pressure drain.
    Throttled,
}

/// Pacing and fault policy for a [`Supervisor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SupervisorConfig {
    /// Sleep after a [`TickOutcome::Worked`] tick, in milliseconds.
    pub tick_interval_ms: u64,
    /// Sleep after an `Idle`/`Throttled` tick — and the poll interval of a
    /// parked breaker — in milliseconds.
    pub idle_interval_ms: u64,
    /// Backoff schedule for failed ticks. Only the schedule
    /// ([`RetryPolicy::backoff_ticks`]) is used; the supervisor retries
    /// transient failures without limit regardless of `max_attempts`.
    pub backoff: RetryPolicy,
    /// Real-time length of one logical backoff tick, in milliseconds.
    pub backoff_tick_ms: u64,
    /// Consecutive permanent failures or panics that trip the circuit
    /// breaker and park the loop. Transient failures never count.
    pub breaker_threshold: u32,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            tick_interval_ms: 20,
            idle_interval_ms: 200,
            backoff: RetryPolicy::default(),
            backoff_tick_ms: 1,
            breaker_threshold: 3,
        }
    }
}

/// Point-in-time counters for a supervisor, for tests and `SHOW
/// COMPACTION`-style introspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SupervisorStats {
    /// Ticks started (parked polls not included).
    pub ticks: u64,
    /// Ticks that returned [`TickOutcome::Worked`].
    pub worked: u64,
    /// Ticks that failed with a transient error (retried on backoff).
    pub transient_failures: u64,
    /// Ticks that failed with a permanent/corrupt error.
    pub permanent_failures: u64,
    /// Ticks that panicked (worker restarted).
    pub panics: u64,
    /// Times the circuit breaker parked the loop.
    pub parks: u64,
    /// Times a parked loop was reset and resumed.
    pub unparks: u64,
}

#[derive(Default)]
struct StatsCells {
    ticks: AtomicU64,
    worked: AtomicU64,
    transient_failures: AtomicU64,
    permanent_failures: AtomicU64,
    panics: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
}

#[derive(Default)]
struct Ctl {
    stop: bool,
    paused: bool,
    /// Pending explicit [`Supervisor::resume`] calls — a reset lever for a
    /// parked breaker, consumed (or discarded) at the next park check.
    unpark_requests: u32,
}

struct Shared {
    ctl: Mutex<Ctl>,
    cv: Condvar,
    parked: AtomicBool,
    stats: StatsCells,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Ctl> {
        self.ctl.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Condvar-waits up to `ms`; returns `true` iff stop was requested.
    /// Spurious wakeups and notifications re-check and keep waiting, so a
    /// `pause` notification cannot cut an idle sleep short.
    fn wait_ms(&self, ms: u64) -> bool {
        let deadline = Instant::now() + Duration::from_millis(ms);
        let mut ctl = self.lock();
        loop {
            if ctl.stop {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            ctl = match self.cv.wait_timeout(ctl, deadline - now) {
                Ok((g, _)) => g,
                Err(e) => e.into_inner().0,
            };
        }
    }
}

/// A supervised, restartable background worker. Dropping it stops and
/// joins the worker thread.
pub struct Supervisor {
    shared: Arc<Shared>,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Supervisor {
    /// Spawns the worker thread and starts ticking immediately.
    ///
    /// * `tick` — one unit of maintenance work. May panic or fail; the
    ///   supervisor absorbs both.
    /// * `on_park` — called with `true` when the breaker parks the loop
    ///   and `false` when it resumes; the server points this at the
    ///   `compactor_parked` health gauge.
    /// * `unpark_when` — polled (at the idle interval) while parked; when
    ///   it returns `true` the breaker resets and the loop resumes. The
    ///   server wires this to "`SET COMPACTION = AUTO` was issued since
    ///   the park".
    pub fn start(
        name: &str,
        config: SupervisorConfig,
        mut tick: impl FnMut() -> Result<TickOutcome> + Send + 'static,
        on_park: impl Fn(bool) + Send + 'static,
        unpark_when: impl Fn() -> bool + Send + 'static,
    ) -> Supervisor {
        let shared = Arc::new(Shared {
            ctl: Mutex::new(Ctl::default()),
            cv: Condvar::new(),
            parked: AtomicBool::new(false),
            stats: StatsCells::default(),
        });
        let worker_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name(format!("supervisor-{name}"))
            .spawn(move || Self::run(&worker_shared, config, &mut tick, &on_park, &unpark_when))
            .expect("spawn supervisor thread");
        Supervisor {
            shared,
            handle: Mutex::new(Some(handle)),
        }
    }

    fn run(
        shared: &Shared,
        config: SupervisorConfig,
        tick: &mut (impl FnMut() -> Result<TickOutcome> + Send),
        on_park: &(impl Fn(bool) + Send),
        unpark_when: &(impl Fn() -> bool + Send),
    ) {
        // Consecutive permanent failures/panics (breaker input) and
        // consecutive failures of any class (backoff input). Both reset on
        // any successful tick.
        let mut hard_failures = 0u32;
        let mut failures_in_row = 0u32;
        loop {
            {
                let mut ctl = shared.lock();
                while ctl.paused && !ctl.stop {
                    ctl = match shared.cv.wait(ctl) {
                        Ok(g) => g,
                        Err(e) => e.into_inner(),
                    };
                }
                if ctl.stop {
                    return;
                }
            }

            if shared.parked.load(Ordering::Acquire) {
                let requested = {
                    let mut ctl = shared.lock();
                    std::mem::take(&mut ctl.unpark_requests) > 0
                };
                if requested || unpark_when() {
                    hard_failures = 0;
                    failures_in_row = 0;
                    shared.parked.store(false, Ordering::Release);
                    shared.stats.unparks.fetch_add(1, Ordering::Relaxed);
                    on_park(false);
                } else if shared.wait_ms(config.idle_interval_ms) {
                    return;
                }
                continue;
            }

            shared.stats.ticks.fetch_add(1, Ordering::Relaxed);
            let outcome = catch_unwind(AssertUnwindSafe(&mut *tick));
            let mut hard_failure = || {
                hard_failures += 1;
                failures_in_row += 1;
                if hard_failures >= config.breaker_threshold.max(1) {
                    None
                } else {
                    Some(config.backoff_tick_ms * config.backoff.backoff_ticks(failures_in_row))
                }
            };
            let delay_ms = match outcome {
                Ok(Ok(TickOutcome::Worked)) => {
                    hard_failures = 0;
                    failures_in_row = 0;
                    shared.stats.worked.fetch_add(1, Ordering::Relaxed);
                    Some(config.tick_interval_ms)
                }
                Ok(Ok(TickOutcome::Idle)) | Ok(Ok(TickOutcome::Throttled)) => {
                    hard_failures = 0;
                    failures_in_row = 0;
                    Some(config.idle_interval_ms)
                }
                Ok(Err(e)) if e.is_transient() => {
                    // Flaky storage: back off and retry forever, without
                    // ever arming the breaker.
                    shared
                        .stats
                        .transient_failures
                        .fetch_add(1, Ordering::Relaxed);
                    failures_in_row += 1;
                    Some(config.backoff_tick_ms * config.backoff.backoff_ticks(failures_in_row))
                }
                Ok(Err(_)) => {
                    shared
                        .stats
                        .permanent_failures
                        .fetch_add(1, Ordering::Relaxed);
                    hard_failure()
                }
                Err(_) => {
                    shared.stats.panics.fetch_add(1, Ordering::Relaxed);
                    hard_failure()
                }
            };
            match delay_ms {
                Some(ms) => {
                    if shared.wait_ms(ms) {
                        return;
                    }
                }
                None => {
                    // Breaker trip: park until a reset lever fires. Drop
                    // any stale resume() issued before this park so it
                    // cannot instantly undo it.
                    shared.lock().unpark_requests = 0;
                    shared.parked.store(true, Ordering::Release);
                    shared.stats.parks.fetch_add(1, Ordering::Relaxed);
                    on_park(true);
                }
            }
        }
    }

    /// `true` while the circuit breaker holds the loop parked.
    pub fn is_parked(&self) -> bool {
        self.shared.parked.load(Ordering::Acquire)
    }

    /// Suspends ticking after the in-flight tick (if any) completes.
    pub fn pause(&self) {
        self.shared.lock().paused = true;
        self.shared.cv.notify_all();
    }

    /// Resumes a paused loop; also resets a parked circuit breaker.
    pub fn resume(&self) {
        {
            let mut ctl = self.shared.lock();
            ctl.paused = false;
            ctl.unpark_requests += 1;
        }
        self.shared.cv.notify_all();
    }

    /// Stops the worker and joins it. Interrupts any backoff or idle
    /// sleep immediately; an in-flight tick runs to completion first.
    /// Idempotent.
    pub fn stop(&self) {
        {
            let mut ctl = self.shared.lock();
            ctl.stop = true;
        }
        self.shared.cv.notify_all();
        let handle = self.handle.lock().unwrap_or_else(|e| e.into_inner()).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> SupervisorStats {
        let s = &self.shared.stats;
        SupervisorStats {
            ticks: s.ticks.load(Ordering::Relaxed),
            worked: s.worked.load(Ordering::Relaxed),
            transient_failures: s.transient_failures.load(Ordering::Relaxed),
            permanent_failures: s.permanent_failures.load(Ordering::Relaxed),
            panics: s.panics.load(Ordering::Relaxed),
            parks: s.parks.load(Ordering::Relaxed),
            unparks: s.unparks.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dt_common::Error;
    use std::sync::atomic::AtomicU32;

    fn fast_config(breaker_threshold: u32) -> SupervisorConfig {
        SupervisorConfig {
            tick_interval_ms: 1,
            idle_interval_ms: 1,
            backoff: RetryPolicy {
                base_backoff_ticks: 1,
                max_backoff_ticks: 2,
                ..RetryPolicy::default()
            },
            backoff_tick_ms: 0,
            breaker_threshold,
        }
    }

    /// Polls `cond` for up to two seconds.
    fn eventually(cond: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(2);
        while Instant::now() < deadline {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        false
    }

    #[test]
    fn ticks_and_paces_on_outcome() {
        let n = Arc::new(AtomicU32::new(0));
        let tick_n = n.clone();
        let sup = Supervisor::start(
            "t",
            fast_config(3),
            move || {
                if tick_n.fetch_add(1, Ordering::Relaxed) < 3 {
                    Ok(TickOutcome::Worked)
                } else {
                    Ok(TickOutcome::Idle)
                }
            },
            |_| {},
            || false,
        );
        assert!(eventually(|| sup.stats().ticks >= 6));
        let stats = sup.stats();
        assert_eq!(stats.worked, 3);
        assert_eq!(stats.panics + stats.parks, 0);
        sup.stop();
        let frozen = sup.stats().ticks;
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(sup.stats().ticks, frozen, "stopped loop stays stopped");
    }

    #[test]
    fn panicking_worker_restarts_below_threshold() {
        let n = Arc::new(AtomicU32::new(0));
        let tick_n = n.clone();
        let sup = Supervisor::start(
            "p",
            fast_config(5),
            move || {
                if tick_n.fetch_add(1, Ordering::Relaxed) < 2 {
                    panic!("worker blew up");
                }
                Ok(TickOutcome::Worked)
            },
            |_| {},
            || false,
        );
        assert!(eventually(|| sup.stats().worked >= 1));
        assert!(!sup.is_parked(), "two panics stay under a threshold of 5");
        assert_eq!(sup.stats().panics, 2);
    }

    #[test]
    fn transient_failures_back_off_but_never_park() {
        let n = Arc::new(AtomicU32::new(0));
        let tick_n = n.clone();
        let sup = Supervisor::start(
            "tr",
            fast_config(2),
            move || {
                if tick_n.fetch_add(1, Ordering::Relaxed) < 4 {
                    Err(Error::unavailable("disk flapping"))
                } else {
                    Ok(TickOutcome::Worked)
                }
            },
            |_| {},
            || false,
        );
        assert!(eventually(|| sup.stats().worked >= 1));
        let stats = sup.stats();
        assert_eq!(stats.transient_failures, 4);
        assert_eq!(stats.parks, 0, "4 transient errors > threshold 2, no park");
        assert!(!sup.is_parked());
    }

    #[test]
    fn breaker_parks_then_unpark_predicate_resumes() {
        let healed = Arc::new(AtomicBool::new(false));
        let park_gauge = Arc::new(AtomicBool::new(false));
        let tick_healed = healed.clone();
        let hook_gauge = park_gauge.clone();
        let when_healed = healed.clone();
        let sup = Supervisor::start(
            "b",
            fast_config(2),
            move || {
                if tick_healed.load(Ordering::Relaxed) {
                    Ok(TickOutcome::Idle)
                } else {
                    Err(Error::corrupt("footer checksum mismatch"))
                }
            },
            move |parked| hook_gauge.store(parked, Ordering::Relaxed),
            move || when_healed.load(Ordering::Relaxed),
        );
        assert!(eventually(|| sup.is_parked()));
        assert!(park_gauge.load(Ordering::Relaxed), "park hook fired");
        let stats = sup.stats();
        assert_eq!(stats.permanent_failures, 2);
        assert_eq!(stats.parks, 1);
        // Parked means parked: no ticks happen while the fault persists.
        let frozen = stats.ticks;
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(sup.stats().ticks, frozen);

        healed.store(true, Ordering::Relaxed);
        assert!(eventually(|| !sup.is_parked() && sup.stats().ticks > frozen));
        assert!(!park_gauge.load(Ordering::Relaxed), "park hook cleared");
        assert_eq!(sup.stats().unparks, 1);
    }

    #[test]
    fn explicit_resume_resets_a_parked_breaker() {
        let sup = Supervisor::start(
            "r",
            fast_config(1),
            || Err(Error::internal("wedged")),
            |_| {},
            || false,
        );
        assert!(eventually(|| sup.is_parked()));
        let parks = sup.stats().parks;
        sup.resume();
        // The fault persists, so the loop re-parks after another failure —
        // proving resume() really restarted ticking.
        assert!(eventually(|| sup.stats().parks > parks));
    }

    #[test]
    fn pause_suspends_and_resume_restarts() {
        let sup = Supervisor::start(
            "pp",
            fast_config(3),
            || Ok(TickOutcome::Idle),
            |_| {},
            || false,
        );
        assert!(eventually(|| sup.stats().ticks >= 2));
        sup.pause();
        std::thread::sleep(Duration::from_millis(10)); // drain in-flight tick
        let frozen = sup.stats().ticks;
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(sup.stats().ticks, frozen, "paused loop does not tick");
        sup.resume();
        assert!(eventually(|| sup.stats().ticks > frozen));
    }
}
