//! A fixed-size worker pool over `std::thread` + channels.
//!
//! [`parallel_map_fallible`](crate::parallel_map_fallible) serves read-side
//! fan-out (scans), where every split is cheap and uniform. The write side
//! (OVERWRITE/COMPACT rewrites, DESIGN.md §12) instead partitions a file
//! list into a few large, unequal chunks and wants each worker to own one
//! partition end to end — including its own output sink. [`JobPool`] models
//! that: jobs are dispatched over an MPMC-by-Mutex channel so an early
//! finisher steals the next partition, results come back over a channel and
//! are re-ordered by partition index, and a panicking worker surfaces as an
//! `Error::Internal` rather than poisoning the pool.
//!
//! The pool is deliberately *not* used for the commit step: callers run
//! that single-threaded after `run` returns (the "single-threaded commit
//! rule"), so every crash point still lands in exactly one generation.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;
use std::thread;

use dt_common::{Error, Result};

/// A scoped worker pool executing fallible, indexed jobs.
#[derive(Debug, Clone, Copy)]
pub struct JobPool {
    workers: usize,
}

impl JobPool {
    /// A pool of at most `workers` threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        JobPool {
            workers: workers.max(1),
        }
    }

    /// A pool sized to the machine, like Hadoop's default mapper count.
    pub fn with_default_workers() -> Self {
        Self::new(
            thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The configured worker cap.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The number of threads `run` would actually use for `jobs` jobs.
    pub fn workers_for(&self, jobs: usize) -> usize {
        self.workers.min(jobs).max(1)
    }

    /// Runs `task(index, job)` for every job, returning the outputs in
    /// job order.
    ///
    /// With one worker (or one job) everything runs inline on the caller's
    /// thread — byte-for-byte the sequential path, no threads spawned. The
    /// first error in job order wins; later jobs may still have executed
    /// (workers are not cancelled mid-job), which is safe for our callers
    /// because partial rewrite output lives in an uncommitted generation.
    pub fn run<T, O, F>(&self, jobs: Vec<T>, task: F) -> Result<Vec<O>>
    where
        T: Send,
        O: Send,
        F: Fn(usize, T) -> Result<O> + Sync,
    {
        let workers = self.workers_for(jobs.len());
        if workers <= 1 {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| task(i, job))
                .collect();
        }

        let total = jobs.len();
        let (job_tx, job_rx) = mpsc::channel::<(usize, T)>();
        for pair in jobs.into_iter().enumerate() {
            job_tx.send(pair).expect("receiver alive");
        }
        drop(job_tx);
        // A Receiver is Send but not Sync; the Mutex turns the work queue
        // into a shared pull source so idle workers steal remaining jobs.
        let job_rx = Mutex::new(job_rx);
        let (res_tx, res_rx) = mpsc::channel::<(usize, Result<O>)>();

        let mut slots: Vec<Option<Result<O>>> = (0..total).map(|_| None).collect();
        thread::scope(|s| {
            for _ in 0..workers {
                let res_tx = res_tx.clone();
                let job_rx = &job_rx;
                let task = &task;
                s.spawn(move || loop {
                    let next = job_rx.lock().expect("job queue poisoned").recv();
                    let Ok((index, job)) = next else { break };
                    let out = catch_unwind(AssertUnwindSafe(|| task(index, job)))
                        .unwrap_or_else(|_| Err(Error::internal("a pool worker panicked")));
                    if res_tx.send((index, out)).is_err() {
                        break;
                    }
                });
            }
            drop(res_tx);
            while let Ok((index, out)) = res_rx.recv() {
                slots[index] = Some(out);
            }
        });

        let mut outputs = Vec::with_capacity(total);
        for (index, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(Ok(out)) => outputs.push(out),
                Some(Err(e)) => return Err(e),
                None => {
                    return Err(Error::internal(format!(
                        "pool worker dropped job {index} without a result"
                    )))
                }
            }
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn outputs_come_back_in_job_order() {
        let pool = JobPool::new(4);
        let out = pool
            .run((0..64).collect(), |i, job: i32| {
                // Make late jobs finish first to stress re-ordering.
                if i % 3 == 0 {
                    std::thread::yield_now();
                }
                Ok(job * 2)
            })
            .unwrap();
        assert_eq!(out, (0..64).map(|j| j * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_runs_inline() {
        let pool = JobPool::new(1);
        let tid = std::thread::current().id();
        let out = pool
            .run(vec![1, 2, 3], |_, job| {
                assert_eq!(std::thread::current().id(), tid);
                Ok(job + 10)
            })
            .unwrap();
        assert_eq!(out, vec![11, 12, 13]);
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        assert_eq!(JobPool::new(0).workers(), 1);
        assert_eq!(JobPool::new(8).workers_for(3), 3);
        assert_eq!(JobPool::new(2).workers_for(0), 1);
    }

    #[test]
    fn first_error_in_job_order_wins() {
        let pool = JobPool::new(4);
        let err = pool
            .run((0..16).collect::<Vec<i32>>(), |i, _| {
                if i >= 3 {
                    Err(Error::internal(format!("job {i} failed")))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
        assert_eq!(err.to_string(), Error::internal("job 3 failed").to_string());
    }

    #[test]
    fn panicking_job_becomes_an_error() {
        let pool = JobPool::new(2);
        let err = pool
            .run(vec![0u8, 1], |i, _| {
                if i == 1 {
                    panic!("boom");
                }
                Ok(i)
            })
            .unwrap_err();
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn all_workers_participate_under_load() {
        let pool = JobPool::new(4);
        let concurrent = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        pool.run((0..256).collect::<Vec<u32>>(), |_, _| {
            let now = concurrent.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            concurrent.fetch_sub(1, Ordering::SeqCst);
            Ok(())
        })
        .unwrap();
        // With 256 tiny jobs and 4 workers at least two must overlap.
        assert!(peak.load(Ordering::SeqCst) >= 2);
    }
}
