//! Job execution: map, shuffle, sort, reduce.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use dt_common::{Error, Result};

use crate::counters::JobCounters;

/// Parallelism configuration for one job.
#[derive(Debug, Clone)]
pub struct JobConfig {
    /// Maximum concurrent map tasks (the paper's workers run up to 6
    /// mappers each).
    pub max_mappers: usize,
    /// Number of reduce partitions (and concurrent reduce tasks).
    pub num_reducers: usize,
}

impl Default for JobConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(4);
        JobConfig {
            max_mappers: cores,
            num_reducers: (cores / 2).max(2),
        }
    }
}

/// Runs `task` over every split in parallel (bounded by `max_mappers`),
/// returning one output per split, in split order. Panics in tasks are
/// converted into errors.
pub fn parallel_map<I, O, F>(config: &JobConfig, splits: Vec<I>, task: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    // The infallible wrapper re-panics only on bugs in `task` itself.
    parallel_map_fallible(config, splits, |i| Ok(task(i)))
        .expect("infallible task failed")
        .into_iter()
        .collect()
}

/// Like [`parallel_map`] but tasks may fail; the first error is returned.
pub fn parallel_map_fallible<I, O, F>(config: &JobConfig, splits: Vec<I>, task: F) -> Result<Vec<O>>
where
    I: Send,
    O: Send,
    F: Fn(I) -> Result<O> + Sync,
{
    let n = splits.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let workers = config.max_mappers.max(1).min(n);
    if workers == 1 {
        return splits.into_iter().map(&task).collect();
    }
    let inputs: Vec<Mutex<Option<I>>> = splits.into_iter().map(|s| Mutex::new(Some(s))).collect();
    let outputs: Vec<Mutex<Option<Result<O>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    return;
                }
                let input = inputs[i]
                    .lock()
                    .expect("input mutex poisoned")
                    .take()
                    .expect("split taken twice");
                let out = task(input);
                *outputs[i].lock().expect("output mutex poisoned") = Some(out);
            });
        }
    })
    .map_err(|_| Error::internal("a map task panicked"))?;

    outputs
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("output mutex poisoned")
                .expect("task completed without output")
        })
        .collect()
}

fn partition_of<K: Hash>(key: &K, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Runs a full map-shuffle-sort-reduce job.
///
/// * `splits`: the inputs, one per map task;
/// * `mapper`: consumes a split, emitting `(key, value)` pairs;
/// * `reducer`: consumes one key with all its values (keys arrive sorted
///   within a partition) and returns any number of output records.
///
/// Output records from all partitions are concatenated (partition order),
/// matching the "part files" a Hadoop job leaves behind.
pub fn run_map_reduce<I, K, V, O, M, R>(
    config: &JobConfig,
    counters: &JobCounters,
    splits: Vec<I>,
    mapper: M,
    reducer: R,
) -> Result<Vec<O>>
where
    I: Send,
    K: Ord + Hash + Clone + Send,
    V: Send,
    O: Send,
    M: Fn(I, &mut dyn FnMut(K, V)) -> Result<()> + Sync,
    R: Fn(K, Vec<V>) -> Result<Vec<O>> + Sync,
{
    let partitions = config.num_reducers.max(1);

    // Map phase: each task produces `partitions` buckets.
    let bucketed: Vec<Vec<(K, V)>> = {
        let per_task: Vec<Vec<Vec<(K, V)>>> = parallel_map_fallible(config, splits, |split| {
            let mut buckets: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
            let mut emitted = 0u64;
            mapper(split, &mut |k, v| {
                emitted += 1;
                let p = partition_of(&k, partitions);
                buckets[p].push((k, v));
            })?;
            counters.add_map_input(1);
            counters.add_map_output(emitted);
            Ok(buckets)
        })?;
        // Shuffle: concatenate each partition across tasks.
        let mut merged: Vec<Vec<(K, V)>> = (0..partitions).map(|_| Vec::new()).collect();
        for task_buckets in per_task {
            for (p, bucket) in task_buckets.into_iter().enumerate() {
                merged[p].extend(bucket);
            }
        }
        merged
    };

    // Reduce phase: sort each partition by key, group, reduce.
    let reduced: Vec<Vec<O>> = parallel_map_fallible(config, bucketed, |mut bucket| {
        bucket.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = Vec::new();
        let mut iter = bucket.into_iter().peekable();
        let mut groups = 0u64;
        while let Some((key, first)) = iter.next() {
            let mut values = vec![first];
            while matches!(iter.peek(), Some((k, _)) if *k == key) {
                values.push(iter.next().expect("peeked").1);
            }
            groups += 1;
            let produced = reducer(key, values)?;
            counters.add_reduce_output(produced.len() as u64);
            out.extend(produced);
        }
        counters.add_reduce_groups(groups);
        Ok(out)
    })?;

    Ok(reduced.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> JobConfig {
        JobConfig {
            max_mappers: 4,
            num_reducers: 3,
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map(&config(), (0..100).collect(), |i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(&config(), Vec::<i32>::new(), |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_fallible_propagates_error() {
        let r = parallel_map_fallible(&config(), (0..10).collect(), |i| {
            if i == 7 {
                Err(Error::invalid("boom"))
            } else {
                Ok(i)
            }
        });
        assert!(r.is_err());
    }

    #[test]
    fn word_count() {
        let splits = vec![vec!["a", "b", "a"], vec!["b", "c"], vec!["a"]];
        let counters = JobCounters::new();
        let mut out = run_map_reduce(
            &config(),
            &counters,
            splits,
            |words, emit| {
                for w in words {
                    emit(w.to_string(), 1u64);
                }
                Ok(())
            },
            |word, counts| Ok(vec![(word, counts.iter().sum::<u64>())]),
        )
        .unwrap();
        out.sort();
        assert_eq!(
            out,
            vec![
                ("a".to_string(), 3),
                ("b".to_string(), 2),
                ("c".to_string(), 1)
            ]
        );
        let (mi, mo, rg, ro) = counters.snapshot();
        assert_eq!(mi, 3);
        assert_eq!(mo, 6);
        assert_eq!(rg, 3);
        assert_eq!(ro, 3);
    }

    #[test]
    fn reduce_sees_sorted_keys_within_partition() {
        // With a single reducer, output order equals sorted key order.
        let cfg = JobConfig {
            max_mappers: 4,
            num_reducers: 1,
        };
        let counters = JobCounters::new();
        let out = run_map_reduce(
            &cfg,
            &counters,
            vec![vec![5, 3, 9, 1], vec![7, 2]],
            |nums, emit| {
                for n in nums {
                    emit(n, ());
                }
                Ok(())
            },
            |k, _| Ok(vec![k]),
        )
        .unwrap();
        assert_eq!(out, vec![1, 2, 3, 5, 7, 9]);
    }

    #[test]
    fn reducer_error_propagates() {
        let counters = JobCounters::new();
        let r: Result<Vec<u64>> = run_map_reduce(
            &config(),
            &counters,
            vec![vec![1u64]],
            |nums, emit| {
                for n in nums {
                    emit(n, n);
                }
                Ok(())
            },
            |_, _| Err(Error::invalid("reduce failure")),
        );
        assert!(r.is_err());
    }

    #[test]
    fn large_job_is_consistent() {
        let splits: Vec<Vec<u64>> = (0..32)
            .map(|s| (0..1000).map(|i| (s * 1000 + i) % 97).collect())
            .collect();
        let counters = JobCounters::new();
        let out = run_map_reduce(
            &config(),
            &counters,
            splits,
            |nums, emit| {
                for n in nums {
                    emit(n, 1u64);
                }
                Ok(())
            },
            |k, vs| Ok(vec![(k, vs.len() as u64)]),
        )
        .unwrap();
        assert_eq!(out.len(), 97);
        let total: u64 = out.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 32_000);
    }
}
