//! The paper's Smart Grid scenario (§II): a daily collection pipeline with
//! recollection updates, archive synchronization and analytic reads.
//!
//! Flow (Figure 1): (1) recollected measurements update a tiny slice of the
//! fact table; (2) archive changes update the device table; (3) analytics
//! read the merged view and write summaries back.
//!
//! ```sh
//! cargo run --example smart_grid_pipeline
//! ```

use dualtable_repro::common::Value;
use dualtable_repro::hiveql::Session;
use dualtable_repro::workloads::smartgrid as grid;

fn main() {
    let mut session = Session::in_memory();

    // Fact table (measurement quality per user/day) as a DualTable, archive
    // table too — both receive point updates.
    create(&mut session, "tj_gbsjwzl_mx", &grid::tj_gbsjwzl_mx_schema());
    create(&mut session, "zc_zdzc", &grid::zc_zdzc_schema());

    let fact_rows: Vec<_> = grid::tj_gbsjwzl_mx_rows(36 * 200, 1).collect();
    let device_rows: Vec<_> = grid::zc_zdzc_rows(2_000, 2).collect();
    session
        .table("tj_gbsjwzl_mx")
        .unwrap()
        .insert(fact_rows)
        .unwrap();
    session
        .table("zc_zdzc")
        .unwrap()
        .insert(device_rows)
        .unwrap();

    // (1) Recollection: a handful of meters re-sent data for one day —
    // under 0.01% of the table in production, a few rows here.
    let r = session
        .execute(&format!(
            "UPDATE tj_gbsjwzl_mx SET rcjl = 96.0 \
             WHERE rq = DATE {} AND dwdm = '33401' AND yhlx = 'resident'",
            grid::BASE_DATE + 3
        ))
        .unwrap();
    println!(
        "recollection: {} rows corrected via {:?} plan",
        r.affected,
        r.dml.as_ref().map(|d| d.plan)
    );

    // (2) Archive sync: ~500 of 22M devices change per day in the paper.
    let r = session
        .execute("UPDATE zc_zdzc SET cjfs = 'HPLC' WHERE zdjh < 20")
        .unwrap();
    println!(
        "archive sync: {} devices upgraded via {:?} plan",
        r.affected,
        r.dml.as_ref().map(|d| d.plan)
    );

    // (3) Analytics: data-integrity ratio per organization, reading the
    // merged (UNION READ) view.
    let r = session
        .execute(
            "SELECT dwdm, COUNT(*) AS meters, AVG(rcjl) AS avg_rate \
             FROM tj_gbsjwzl_mx GROUP BY dwdm ORDER BY dwdm",
        )
        .unwrap();
    println!("\norg     meters  avg collection rate");
    for row in r.rows() {
        println!(
            "{}   {:>5}  {:>6.2}",
            row[0].as_str().unwrap(),
            row[1].as_i64().unwrap(),
            row[2].as_f64().unwrap()
        );
    }

    // Nightly maintenance window: fold the day's deltas into the master.
    session.execute("COMPACT TABLE tj_gbsjwzl_mx").unwrap();
    session.execute("COMPACT TABLE zc_zdzc").unwrap();
    let stats = session
        .execute("SELECT COUNT(*) FROM tj_gbsjwzl_mx")
        .unwrap();
    println!(
        "\nafter COMPACT: fact table holds {} rows, attached tables empty",
        stats.rows()[0][0]
    );
}

fn create(session: &mut Session, name: &str, schema: &dualtable_repro::common::Schema) {
    let cols: Vec<String> = schema
        .fields()
        .iter()
        .map(|f| format!("{} {}", f.name, f.data_type.sql_name()))
        .collect();
    session
        .execute(&format!(
            "CREATE TABLE {name} ({}) STORED AS DUALTABLE",
            cols.join(", ")
        ))
        .unwrap();
    let _ = Value::Null; // re-exported API sanity
}
