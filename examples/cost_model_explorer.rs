//! Explore the §IV cost model: reproduce the paper's worked example and
//! chart the plan-choice boundary across update/delete ratios and `k`.
//!
//! ```sh
//! cargo run --example cost_model_explorer
//! ```

use dualtable_repro::dualtable::{CostModel, PlanChoice, Rates};

const GB: f64 = 1024.0 * 1024.0 * 1024.0;

fn main() {
    // The paper's worked example: D = 100 GB, α = 0.01, k = 30, HDFS write
    // 1 GB/s, HBase write 0.8 GB/s, HBase read 0.5 GB/s ⇒ Cost_U = 38.75 s.
    let model = CostModel::new(Rates {
        master_write_bps: 1.0 * GB,
        master_read_bps: 0.5 * GB,
        attached_write_bps: 0.8 * GB,
        attached_read_bps: 0.5 * GB,
    });
    let d = (100.0 * GB) as u64;
    println!(
        "paper worked example: Cost_U(D=100GB, α=0.01, k=30) = {:.2} s  (paper: 38.75 s)",
        model.update_cost_diff(d, 0.01, 30)
    );
    println!();

    // Plan-choice boundary: for each k, the α below which EDIT wins.
    println!("k (reads after update)   update crossover α*   delete crossover β* (m/d = 0.1)");
    for k in [0u32, 1, 2, 5, 10, 30, 100] {
        println!(
            "{k:>22}   {:>18.4}   {:>18.4}",
            model.update_crossover_ratio(k),
            model.delete_crossover_ratio(k, 0.1)
        );
    }
    println!();

    // A decision table like the one the DualTable parser consults.
    println!("plan chosen for D = 64 GB, k = 1:");
    println!("{:>8}  {:>10}  {:>10}", "ratio", "UPDATE", "DELETE");
    let d = (64.0 * GB) as u64;
    for pct in [0.1f64, 1.0, 5.0, 10.0, 20.0, 30.0, 35.0, 40.0, 50.0] {
        let ratio = pct / 100.0;
        let u = model.choose_update(d, ratio, 1);
        let del = model.choose_delete(d, ratio, 1, 0.1);
        println!("{pct:>7}%  {:>10}  {:>10}", plan_name(u), plan_name(del));
    }
}

fn plan_name(p: PlanChoice) -> &'static str {
    match p {
        PlanChoice::Edit => "EDIT",
        PlanChoice::Overwrite => "OVERWRITE",
    }
}
