//! Quickstart: create a DualTable through the HiveQL session, run DML, and
//! watch the cost model pick plans.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dualtable_repro::hiveql::Session;

fn main() {
    let mut session = Session::in_memory();

    // A DualTable-backed table: master files on the DFS, attached table in
    // the KV store.
    session
        .execute(
            "CREATE TABLE meter (id BIGINT, org STRING, day DATE, kwh DOUBLE) \
             STORED AS DUALTABLE",
        )
        .unwrap();

    // Load some readings.
    let mut values = Vec::new();
    for id in 0..1_000 {
        values.push(format!(
            "({id}, 'org{}', DATE {}, {}.0)",
            id % 4,
            18_000 + id % 30,
            id % 50
        ));
    }
    session
        .execute(&format!("INSERT INTO meter VALUES {}", values.join(", ")))
        .unwrap();

    // A tiny correction — the cost model picks the EDIT plan and writes
    // only delta cells to the attached table.
    let result = session
        .execute("UPDATE meter SET kwh = 0.0 WHERE id = 42")
        .unwrap();
    println!("tiny update  → {}", result.message.unwrap());

    // A bulk rewrite — the cost model switches to the OVERWRITE plan.
    let result = session.execute("UPDATE meter SET kwh = kwh * 1.1").unwrap();
    println!("bulk update  → {}", result.message.unwrap());

    // DELETE and COMPACT round out the DualTable extensions.
    let result = session
        .execute("DELETE FROM meter WHERE org = 'org3'")
        .unwrap();
    println!("delete       → {}", result.message.unwrap());
    session.execute("COMPACT TABLE meter").unwrap();
    println!("compacted    → attached table folded into fresh master files");

    // Queries see the merged (UNION READ) view throughout.
    let result = session
        .execute("SELECT org, COUNT(*), AVG(kwh) FROM meter GROUP BY org ORDER BY org")
        .unwrap();
    println!("\norg   count  avg_kwh");
    for row in result.rows() {
        println!(
            "{}  {:>5}  {:>7.2}",
            row[0],
            row[1].as_i64().unwrap(),
            row[2].as_f64().unwrap()
        );
    }
}
