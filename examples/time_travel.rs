//! Multi-version history: the paper notes DualTable "can make use of
//! HBase's multiple-version feature to track data change history" (§V-C).
//! This example updates a cell three times, reads its full history, and
//! runs a snapshot scan at an earlier logical timestamp.
//!
//! ```sh
//! cargo run --example time_travel
//! ```

use dualtable_repro::common::{DataType, Schema, Value};
use dualtable_repro::dualtable::{
    DualTableConfig, DualTableEnv, DualTableStore, PlanMode, RatioHint, UnionReadOptions,
};

fn main() {
    let env = DualTableEnv::in_memory();
    let schema = Schema::from_pairs(&[("meter", DataType::Int64), ("kwh", DataType::Float64)]);
    let config = DualTableConfig {
        plan_mode: PlanMode::AlwaysEdit, // history lives in the attached tier
        ..DualTableConfig::default()
    };
    let table = DualTableStore::create(&env, "readings", schema, config).unwrap();
    table
        .insert_rows((0..10).map(|i| vec![Value::Int64(i), Value::Float64(0.0)]))
        .unwrap();

    // Three correction rounds for meter 7.
    let mut snapshots = Vec::new();
    for round in 1..=3 {
        snapshots.push(env.kv.clock().tick());
        table
            .update(
                |row| row[0] == Value::Int64(7),
                &[(1, Box::new(move |_| Value::Float64(round as f64 * 10.0)))],
                RatioHint::Explicit(0.1),
            )
            .unwrap();
    }

    // Full change history of the cell, newest first.
    let record = table.scan_all().unwrap()[7].0;
    println!("history of meter 7's kwh cell (newest first):");
    for (ts, value) in table.cell_history(record, 1, 16).unwrap() {
        println!("  ts={ts:<4} kwh={value}");
    }

    // Snapshot reads: the world as of each round.
    for (round, ts) in snapshots.iter().enumerate() {
        let mut opts = UnionReadOptions::all();
        opts.snapshot_ts = *ts;
        let rows = table.scan(&opts).unwrap();
        println!(
            "snapshot before round {}: meter 7 = {}",
            round + 1,
            rows[7].1[1]
        );
    }
    let rows = table.scan_all().unwrap();
    println!("latest: meter 7 = {}", rows[7].1[1]);
}
