//! An interactive HiveQL shell over an in-memory environment — handy for
//! poking at the dialect and watching the DualTable cost model decide.
//!
//! ```sh
//! cargo run --example hiveql_repl
//! dualtable> CREATE TABLE t (id BIGINT, v DOUBLE) STORED AS DUALTABLE;
//! dualtable> INSERT INTO t VALUES (1, 2.5), (2, 5.0);
//! dualtable> UPDATE t SET v = 0 WHERE id = 1;
//! dualtable> SELECT * FROM t;
//! ```

use std::io::{BufRead, Write};

use dualtable_repro::hiveql::Session;

fn main() {
    let mut session = Session::in_memory();
    println!("DualTable HiveQL shell — statements end with ';', Ctrl-D to exit.");
    println!("Storage handlers: STORED AS ORC | HBASE | DUALTABLE | ACID\n");

    let stdin = std::io::stdin();
    let mut buffer = String::new();
    prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        buffer.push_str(&line);
        buffer.push('\n');
        if !line.trim_end().ends_with(';') {
            prompt(&buffer);
            continue;
        }
        let sql = std::mem::take(&mut buffer);
        let sql = sql.trim();
        if sql == ";" || sql.is_empty() {
            prompt(&buffer);
            continue;
        }
        match session.execute(sql) {
            Ok(result) => {
                if let Some(msg) = &result.message {
                    println!("-- {msg}");
                }
                if !result.rows().is_empty() {
                    let names: Vec<&str> = result
                        .schema
                        .fields()
                        .iter()
                        .map(|f| f.name.as_str())
                        .collect();
                    println!("{}", names.join("\t"));
                    for row in result.rows().iter().take(50) {
                        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
                        println!("{}", cells.join("\t"));
                    }
                    if result.rows().len() > 50 {
                        println!("… ({} rows total)", result.rows().len());
                    }
                }
                if let Some(report) = &result.dml {
                    println!(
                        "-- cost model: plan={:?} ratio={:.4} diff={:?}",
                        report.plan, report.ratio_used, report.cost_diff
                    );
                }
            }
            Err(e) => println!("error: {e}"),
        }
        prompt(&buffer);
    }
    println!("\nbye");
}

fn prompt(buffer: &str) {
    if buffer.is_empty() {
        print!("dualtable> ");
    } else {
        print!("       ...> ");
    }
    std::io::stdout().flush().ok();
}
