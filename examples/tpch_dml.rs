//! The paper's TPC-H experiment (§VI-B) in miniature: load `lineitem` and
//! `orders`, run the three read queries and the three DML statements, and
//! compare DualTable against stock Hive side by side.
//!
//! ```sh
//! cargo run --release --example tpch_dml
//! ```

use std::time::Instant;

use dualtable_repro::hiveql::Session;
use dualtable_repro::workloads::tpch;

const LINEITEM_ROWS: usize = 20_000;

fn build(storage: &str) -> Session {
    let mut session = Session::in_memory();
    let orders_n = tpch::orders_rows_for(LINEITEM_ROWS);
    for (name, schema) in [
        ("lineitem", tpch::lineitem_schema()),
        ("orders", tpch::orders_schema()),
    ] {
        let cols: Vec<String> = schema
            .fields()
            .iter()
            .map(|f| format!("{} {}", f.name, f.data_type.sql_name()))
            .collect();
        session
            .execute(&format!(
                "CREATE TABLE {name} ({}) STORED AS {storage}",
                cols.join(", ")
            ))
            .unwrap();
    }
    session
        .table("lineitem")
        .unwrap()
        .insert(tpch::lineitem_rows(LINEITEM_ROWS, orders_n, 7).collect())
        .unwrap();
    session
        .table("orders")
        .unwrap()
        .insert(tpch::orders_rows(orders_n, 7).collect())
        .unwrap();
    session
}

fn timed(session: &mut Session, sql: &str) -> (f64, u64) {
    let start = Instant::now();
    let r = session.execute(sql).unwrap();
    (
        start.elapsed().as_secs_f64(),
        r.affected.max(r.rows().len() as u64),
    )
}

fn main() {
    println!("loading lineitem ({LINEITEM_ROWS} rows) + orders on both systems…\n");
    let statements: [(&str, &str); 6] = [
        ("Q1  (pricing summary)", tpch::QUERY_A_Q1),
        ("Q12 (shipping modes)", tpch::QUERY_B_Q12),
        ("count(*)", tpch::QUERY_C_COUNT),
        ("DML-a update ~5% lineitem", tpch::DML_A_UPDATE),
        ("DML-b delete ~2% lineitem", tpch::DML_B_DELETE),
        ("DML-c join-update orders", tpch::DML_C_JOIN_UPDATE),
    ];

    let mut hive = build("ORC");
    let mut dual = build("DUALTABLE");
    println!(
        "{:<28} {:>12} {:>12} {:>9}",
        "statement", "Hive (s)", "DualTable(s)", "speedup"
    );
    for (label, sql) in statements {
        let (ht, hn) = timed(&mut hive, sql);
        let (dt, dn) = timed(&mut dual, sql);
        assert_eq!(hn, dn, "row counts must agree for '{label}'");
        println!("{:<28} {ht:>12.4} {dt:>12.4} {:>8.1}x", label, ht / dt);
    }
    println!("\nUpdates/deletes hit the attached table on DualTable (EDIT plan),");
    println!("while stock Hive rewrites every surviving row of the table.");
}
