//! The four storage handlers must be observationally equivalent: the same
//! workload (DDL + loads + DML + queries) produces the same answers on
//! stock Hive (ORC), Hive-on-HBase, DualTable and Hive-ACID storage.

use dualtable_repro::common::Value;
use dualtable_repro::hiveql::{QueryResult, Session};
use dualtable_repro::workloads::tpch;

const STORAGES: [&str; 4] = ["ORC", "HBASE", "DUALTABLE", "ACID"];

fn rows_sorted(result: &QueryResult) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = result
        .rows()
        .iter()
        .map(|r| r.iter().map(|v| format!("{v:?}")).collect())
        .collect();
    rows.sort();
    rows
}

fn build_tpch(storage: &str, lineitem_rows: usize) -> Session {
    let mut session = Session::in_memory();
    let orders_n = tpch::orders_rows_for(lineitem_rows);
    for (name, schema) in [
        ("lineitem", tpch::lineitem_schema()),
        ("orders", tpch::orders_schema()),
    ] {
        let cols: Vec<String> = schema
            .fields()
            .iter()
            .map(|f| format!("{} {}", f.name, f.data_type.sql_name()))
            .collect();
        session
            .execute(&format!(
                "CREATE TABLE {name} ({}) STORED AS {storage}",
                cols.join(", ")
            ))
            .unwrap();
    }
    session
        .table("lineitem")
        .unwrap()
        .insert(tpch::lineitem_rows(lineitem_rows, orders_n, 11).collect())
        .unwrap();
    session
        .table("orders")
        .unwrap()
        .insert(tpch::orders_rows(orders_n, 11).collect())
        .unwrap();
    session
}

#[test]
fn tpch_queries_agree_across_storages() {
    let queries = [tpch::QUERY_A_Q1, tpch::QUERY_B_Q12, tpch::QUERY_C_COUNT];
    let mut reference: Vec<Option<Vec<Vec<String>>>> = vec![None; queries.len()];
    for storage in STORAGES {
        let mut session = build_tpch(storage, 800);
        for (i, q) in queries.iter().enumerate() {
            let got = rows_sorted(&session.execute(q).unwrap());
            match &reference[i] {
                None => reference[i] = Some(got),
                Some(expect) => {
                    assert_eq!(&got, expect, "query {i} differs on {storage}");
                }
            }
        }
    }
}

#[test]
fn dml_sequence_agrees_across_storages() {
    let dml = [
        tpch::DML_A_UPDATE,
        tpch::DML_B_DELETE,
        tpch::DML_C_JOIN_UPDATE,
    ];
    let check = "SELECT COUNT(*), SUM(l_quantity) FROM lineitem";
    let check_orders = "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'X'";
    // (lineitem check rows, orders check rows, affected counts) per system.
    type Observation = (Vec<Vec<String>>, Vec<Vec<String>>, Vec<u64>);
    let mut reference: Option<Observation> = None;
    for storage in STORAGES {
        let mut session = build_tpch(storage, 600);
        let mut affected = Vec::new();
        for stmt in dml {
            affected.push(session.execute(stmt).unwrap().affected);
        }
        let state = (
            rows_sorted(&session.execute(check).unwrap()),
            rows_sorted(&session.execute(check_orders).unwrap()),
            affected,
        );
        match &reference {
            None => reference = Some(state),
            Some(expect) => assert_eq!(&state, expect, "divergence on {storage}"),
        }
    }
}

#[test]
fn compact_preserves_query_results() {
    for storage in ["DUALTABLE", "ACID"] {
        let mut session = build_tpch(storage, 400);
        session.execute(tpch::DML_A_UPDATE).unwrap();
        session.execute(tpch::DML_B_DELETE).unwrap();
        let before = rows_sorted(
            &session
                .execute("SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem")
                .unwrap(),
        );
        session.execute("COMPACT TABLE lineitem").unwrap();
        let after = rows_sorted(
            &session
                .execute("SELECT COUNT(*), SUM(l_extendedprice) FROM lineitem")
                .unwrap(),
        );
        assert_eq!(before, after, "COMPACT changed results on {storage}");
    }
}

#[test]
fn mixed_storage_joins_work() {
    // lineitem on DualTable, orders on plain ORC — joins cross handlers.
    let mut session = Session::in_memory();
    session
        .execute("CREATE TABLE a (id BIGINT, v BIGINT) STORED AS DUALTABLE")
        .unwrap();
    session
        .execute("CREATE TABLE b (id BIGINT, w STRING) STORED AS HBASE")
        .unwrap();
    session
        .execute("INSERT INTO a VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();
    session
        .execute("INSERT INTO b VALUES (1, 'x'), (3, 'z')")
        .unwrap();
    session.execute("UPDATE a SET v = 99 WHERE id = 3").unwrap();
    let r = session
        .execute("SELECT a.id, a.v, b.w FROM a JOIN b ON a.id = b.id ORDER BY a.id")
        .unwrap();
    assert_eq!(r.rows().len(), 2);
    assert_eq!(
        r.rows()[1][1],
        Value::Int64(99),
        "join sees the UNION READ view"
    );
}
