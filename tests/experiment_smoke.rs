//! Tiny-scale smoke tests of the experiment harness: every sweep and
//! dataset builder must run end-to-end and produce sane shapes, so
//! `cargo bench` cannot bit-rot.

use dt_bench::datasets;
use dt_bench::sweeps::run_sweep;
use dualtable_repro::workloads::{scenarios, smartgrid, tpch};

#[test]
fn tiny_update_sweep_runs_and_has_paper_shape() {
    let mut spec = datasets::tiny_spec();
    spec.points.truncate(2); // 1% and 5%
    let result = run_sweep(&spec);
    assert_eq!(result.labels, vec!["1%", "5%"]);
    let (hive, edit, cost) = result.dml_modeled();
    // Modeled: Hive flat-ish; EDIT below Hive at small ratios.
    assert!(
        edit[0] < hive[0],
        "EDIT must beat Hive at 1%: {edit:?} vs {hive:?}"
    );
    assert!(cost[0] <= hive[0] * 1.1);
    // Wall times are positive and finite.
    let (hw, ew, cw) = result.dml_wall();
    for series in [hw, ew, cw] {
        assert!(series.iter().all(|s| s.is_finite() && *s > 0.0));
    }
}

#[test]
fn grid_spec_points_cover_the_paper_axis() {
    let spec = datasets::grid_update_spec();
    let labels: Vec<&str> = spec.points.iter().map(|p| p.label.as_str()).collect();
    assert_eq!(labels.first(), Some(&"1/36"));
    assert_eq!(labels.last(), Some(&"17/36"));
    assert_eq!(spec.points.len(), 9);
    // Predicate at k/36 selects ~k/36 of generated data.
    let rows = (spec.rows)();
    let p = &spec.points[2]; // 5/36
    let matched = rows.iter().filter(|r| (p.predicate)(r)).count();
    let ratio = matched as f64 / rows.len() as f64;
    assert!((ratio - 5.0 / 36.0).abs() < 0.02, "ratio {ratio}");
}

#[test]
fn tpch_spec_predicates_track_their_ratios() {
    let spec = datasets::tpch_update_spec();
    let rows = (spec.rows)();
    for point in &spec.points {
        let matched = rows.iter().filter(|r| (point.predicate)(r)).count();
        let ratio = matched as f64 / rows.len() as f64;
        assert!(
            (ratio - point.ratio).abs() < 0.05,
            "{}: predicate selects {ratio}, wants {}",
            point.label,
            point.ratio
        );
    }
}

#[test]
fn table1_analyzer_reproduces_paper_percentages() {
    for mix in scenarios::paper_mixes() {
        let corpus = scenarios::generate_corpus(&mix, 1);
        let got = scenarios::analyze(mix.scenario, &corpus);
        assert_eq!(got, mix);
        assert!(got.dml_percent() >= 50, "every scenario is DML-heavy");
    }
}

#[test]
fn table4_statements_execute_on_both_systems() {
    use dt_bench::systems::{create_table_as, insert_direct};
    use dualtable_repro::hiveql::Session;

    for storage in ["ORC", "DUALTABLE"] {
        let mut s = Session::in_memory();
        create_table_as(&mut s, "tj_tdjl", &smartgrid::tj_tdjl_schema(), storage);
        create_table_as(&mut s, "tj_td", &smartgrid::tj_td_schema(), storage);
        create_table_as(
            &mut s,
            "tj_sjwzl_r",
            &smartgrid::tj_sjwzl_r_schema(),
            storage,
        );
        create_table_as(
            &mut s,
            "tj_sjwzl_y",
            &smartgrid::tj_sjwzl_y_schema(),
            storage,
        );
        create_table_as(&mut s, "tj_gk", &smartgrid::tj_gk_schema(), storage);
        create_table_as(
            &mut s,
            "tj_dysjwzl_mx",
            &smartgrid::tj_dysjwzl_mx_schema(),
            storage,
        );
        insert_direct(&mut s, "tj_tdjl", smartgrid::tj_tdjl_rows(400, 1).collect());
        insert_direct(&mut s, "tj_td", smartgrid::tj_td_rows(400, 2).collect());
        insert_direct(
            &mut s,
            "tj_sjwzl_r",
            smartgrid::tj_sjwzl_r_rows(400, 3).collect(),
        );
        insert_direct(
            &mut s,
            "tj_sjwzl_y",
            smartgrid::tj_sjwzl_y_rows(400, 4).collect(),
        );
        insert_direct(&mut s, "tj_gk", smartgrid::tj_gk_rows(400, 5).collect());
        insert_direct(
            &mut s,
            "tj_dysjwzl_mx",
            smartgrid::tj_dysjwzl_mx_rows(400, 6).collect(),
        );
        for stmt in smartgrid::table4_statements() {
            let r = s.execute(stmt.sql);
            assert!(r.is_ok(), "{} failed on {storage}: {:?}", stmt.id, r.err());
        }
    }
}

#[test]
fn tpch_queries_parse_and_run_at_tiny_scale() {
    let mut session = dt_bench::systems::tpch_session("DUALTABLE", 200, 3);
    for q in [tpch::QUERY_A_Q1, tpch::QUERY_B_Q12, tpch::QUERY_C_COUNT] {
        session.execute(q).unwrap();
    }
    for d in [
        tpch::DML_A_UPDATE,
        tpch::DML_B_DELETE,
        tpch::DML_C_JOIN_UPDATE,
    ] {
        session.execute(d).unwrap();
    }
}
