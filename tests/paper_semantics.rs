//! Integration tests tying implementation behaviour to specific paper
//! claims (sections quoted per test).

use std::ops::ControlFlow;

use dualtable_repro::common::{DataType, Schema, Value};
use dualtable_repro::dualtable::{
    CostModel, DualTableConfig, DualTableEnv, DualTableStore, PlanChoice, PlanMode, Rates,
    RatioHint, UnionReadOptions,
};

fn schema() -> Schema {
    Schema::from_pairs(&[
        ("id", DataType::Int64),
        ("day", DataType::Int64),
        ("v", DataType::Float64),
    ])
}

fn rows(n: i64) -> Vec<Vec<Value>> {
    (0..n)
        .map(|i| vec![Value::Int64(i), Value::Int64(i % 36), Value::Float64(0.0)])
        .collect()
}

fn table(env: &DualTableEnv, plan_mode: PlanMode, n: i64) -> DualTableStore {
    let config = DualTableConfig {
        rows_per_file: 64,
        plan_mode,
        ..DualTableConfig::default()
    };
    let t = DualTableStore::create(env, "t", schema(), config).unwrap();
    t.insert_rows(rows(n)).unwrap();
    t
}

/// §III-C: "In both UPDATE and DELETE the Master Table will not be
/// changed" under the EDIT plan.
#[test]
fn edit_plan_never_touches_the_master() {
    let env = DualTableEnv::in_memory();
    let t = table(&env, PlanMode::AlwaysEdit, 300);
    let files_before = t.master_file_ids().unwrap();
    let master_bytes_before = t.stats().unwrap().master_bytes;
    let dfs_written_before = env.dfs.stats().snapshot().bytes_written;

    t.update(
        |r| r[1] == Value::Int64(3),
        &[(2, Box::new(|_| Value::Float64(7.0)))],
        RatioHint::Explicit(1.0 / 36.0),
    )
    .unwrap();
    t.delete(|r| r[1] == Value::Int64(4), RatioHint::Explicit(1.0 / 36.0))
        .unwrap();

    assert_eq!(t.master_file_ids().unwrap(), files_before);
    assert_eq!(t.stats().unwrap().master_bytes, master_bytes_before);
    assert_eq!(
        env.dfs.stats().snapshot().bytes_written,
        dfs_written_before,
        "EDIT plan must write zero bytes to the master tier"
    );
}

/// §II-B: with INSERT OVERWRITE "the cost of a update operation is always
/// proportional to total amount of data instead of the amount of modified
/// data" — the OVERWRITE plan rewrites everything, EDIT writes only the
/// modified cells.
#[test]
fn write_volume_proportionality() {
    // EDIT: attached volume grows with the modified ratio (update-cell
    // counts exactly — read from the presence index, since raw entry
    // counts also include the index's own per-file cells — and bytes
    // modulo fixed WAL-framing overhead).
    let mut update_cells = Vec::new();
    let mut attached_bytes = Vec::new();
    for pct in [1i64, 10] {
        let env = DualTableEnv::in_memory();
        let t = table(&env, PlanMode::AlwaysEdit, 1_000);
        t.update(
            |r| r[0].as_i64().unwrap() % 100 < pct,
            &[(2, Box::new(|_| Value::Float64(1.0)))],
            RatioHint::Explicit(pct as f64 / 100.0),
        )
        .unwrap();
        let index = t
            .presence_index()
            .unwrap()
            .expect("index present after EDIT");
        let updates: u64 = index
            .files
            .values()
            .map(|f| f.update_counts.values().sum::<u64>())
            .sum();
        update_cells.push(updates);
        attached_bytes.push(env.kv.stats().snapshot().bytes_written);
    }
    assert_eq!(update_cells, vec![10, 100]);
    // 10x the cells buys well over 2x the bytes; the gap to a full 10x is
    // fixed overhead (WAL framing plus one presence-index cell per touched
    // file) that does not scale with the ratio.
    assert!(
        attached_bytes[1] > attached_bytes[0] * 2,
        "attached bytes must grow with the ratio: {attached_bytes:?}"
    );

    // OVERWRITE: master bytes written are ~constant regardless of ratio.
    let mut master_rewrites = Vec::new();
    for pct in [1i64, 10] {
        let env = DualTableEnv::in_memory();
        let t = table(&env, PlanMode::AlwaysOverwrite, 1_000);
        let before = env.dfs.stats().snapshot().bytes_written;
        t.update(
            |r| r[0].as_i64().unwrap() % 100 < pct,
            &[(2, Box::new(|_| Value::Float64(1.0)))],
            RatioHint::Explicit(pct as f64 / 100.0),
        )
        .unwrap();
        master_rewrites.push(env.dfs.stats().snapshot().bytes_written - before);
    }
    let ratio = master_rewrites[1] as f64 / master_rewrites[0] as f64;
    assert!(
        (0.8..1.2).contains(&ratio),
        "rewrite volume must not depend on the update ratio: {master_rewrites:?}"
    );
}

/// §IV: the cost model picks EDIT below the crossover ratio and OVERWRITE
/// above it; the crossover for updates with k=1 sits near 31% under the
/// default rates.
#[test]
fn cost_model_crossover_drives_plan_choice() {
    let model = CostModel::new(Rates::default());
    let crossover = model.update_crossover_ratio(1);
    assert!((0.25..0.40).contains(&crossover), "α* = {crossover}");

    let env = DualTableEnv::in_memory();
    let t = table(&env, PlanMode::CostBased, 500);
    let below = t
        .update(
            |r| r[0].as_i64().unwrap() < 50,
            &[(2, Box::new(|_| Value::Float64(1.0)))],
            RatioHint::Explicit(crossover * 0.5),
        )
        .unwrap();
    assert_eq!(below.plan, PlanChoice::Edit);
    let above = t
        .update(
            |r| r[0].as_i64().unwrap() < 250,
            &[(2, Box::new(|_| Value::Float64(2.0)))],
            RatioHint::Explicit(crossover * 1.5),
        )
        .unwrap();
    assert_eq!(above.plan, PlanChoice::Overwrite);
}

/// §III-C COMPACT: "does a UNION READ through the existing tables and
/// creates a new Master Table … which replaces the existing Master Table
/// and Attached Table."
#[test]
fn compact_replaces_master_and_clears_attached() {
    let env = DualTableEnv::in_memory();
    let t = table(&env, PlanMode::AlwaysEdit, 360);
    t.update(
        |r| r[1] == Value::Int64(0),
        &[(2, Box::new(|_| Value::Float64(5.0)))],
        RatioHint::Explicit(1.0 / 36.0),
    )
    .unwrap();
    t.delete(|r| r[1] == Value::Int64(1), RatioHint::Explicit(1.0 / 36.0))
        .unwrap();
    let old_files = t.master_file_ids().unwrap();
    let visible_before: Vec<_> = t.scan_all().unwrap().into_iter().map(|(_, r)| r).collect();

    t.compact().unwrap();

    let new_files = t.master_file_ids().unwrap();
    assert!(
        new_files.iter().all(|f| !old_files.contains(f)),
        "fresh file IDs"
    );
    let stats = t.stats().unwrap();
    assert_eq!(stats.attached_entries, 0);
    assert_eq!(stats.master_rows, visible_before.len() as u64);
    let visible_after: Vec<_> = t.scan_all().unwrap().into_iter().map(|(_, r)| r).collect();
    assert_eq!(visible_before, visible_after);
}

/// §V-B: record IDs concatenate the file ID with the row number and stay
/// sorted in both tiers, so UNION READ is a merge of two sorted lists.
#[test]
fn record_ids_are_file_id_plus_row_number_and_sorted() {
    let env = DualTableEnv::in_memory();
    let t = table(&env, PlanMode::AlwaysEdit, 200); // 64 rows/file → 4 files
    let ids: Vec<_> = t
        .scan_all()
        .unwrap()
        .into_iter()
        .map(|(id, _)| id)
        .collect();
    assert!(
        ids.windows(2).all(|w| w[0] < w[1]),
        "scan order == record-ID order"
    );
    assert_eq!(ids[0].row, 0);
    assert_eq!(ids[64].row, 0, "row numbers restart per file");
    assert!(ids[64].file_id > ids[63].file_id);
    // Keys sort identically.
    let keys: Vec<_> = ids.iter().map(|i| i.to_key()).collect();
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
}

/// §VI-A: "The Attached Table of DualTable is empty in this experiment …
/// the overhead of the Attached Table is fairly low." With data in it, the
/// scan must still return the merged view.
#[test]
fn union_read_correctness_under_mixed_modifications() {
    let env = DualTableEnv::in_memory();
    let t = table(&env, PlanMode::AlwaysEdit, 500);
    t.update(
        |r| r[0].as_i64().unwrap() % 7 == 0,
        &[(
            2,
            Box::new(|r: &Vec<Value>| Value::Float64(r[0].as_f64().unwrap())),
        )],
        RatioHint::Explicit(0.14),
    )
    .unwrap();
    t.delete(
        |r| r[0].as_i64().unwrap() % 11 == 0,
        RatioHint::Explicit(0.09),
    )
    .unwrap();

    let mut expect = Vec::new();
    for i in 0..500i64 {
        if i % 11 == 0 {
            continue;
        }
        let v = if i % 7 == 0 { i as f64 } else { 0.0 };
        expect.push((i, v));
    }
    let got: Vec<(i64, f64)> = t
        .scan_all()
        .unwrap()
        .into_iter()
        .map(|(_, r)| (r[0].as_i64().unwrap(), r[2].as_f64().unwrap()))
        .collect();
    assert_eq!(got, expect);

    // Early-terminating UNION READ (LIMIT-style) also works.
    let mut first_five = Vec::new();
    t.for_each(&UnionReadOptions::all(), |_, row| {
        first_five.push(row[0].as_i64().unwrap());
        Ok(if first_five.len() == 5 {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        })
    })
    .unwrap();
    assert_eq!(
        first_five,
        vec![1, 2, 3, 4, 5],
        "row 0 deleted (0 % 11 == 0)"
    );
}

/// Reopening a table over the same environment sees all data (metadata
/// lives in the system-wide metadata table, §V-A).
#[test]
fn reopen_preserves_table_and_file_id_allocation() {
    let env = DualTableEnv::in_memory();
    {
        let t = table(&env, PlanMode::AlwaysEdit, 100);
        t.update(
            |r| r[0] == Value::Int64(1),
            &[(2, Box::new(|_| Value::Float64(9.0)))],
            RatioHint::Explicit(0.01),
        )
        .unwrap();
    }
    let config = DualTableConfig {
        rows_per_file: 64,
        plan_mode: PlanMode::AlwaysEdit,
        ..DualTableConfig::default()
    };
    let t = DualTableStore::open(&env, "t", schema(), config).unwrap();
    assert_eq!(t.count().unwrap(), 100);
    assert_eq!(t.scan_all().unwrap()[1].1[2], Value::Float64(9.0));
    // New inserts keep allocating fresh, non-colliding file IDs.
    let before_max = t.master_file_ids().unwrap().into_iter().max().unwrap();
    t.insert_rows(rows(10)).unwrap();
    let after_max = t.master_file_ids().unwrap().into_iter().max().unwrap();
    assert!(after_max > before_max);
    assert_eq!(t.count().unwrap(), 110);
}
