#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, lints (when
# clippy is installed), and the fixed-seed fault-injection smoke runs.
# Each gate reports PASS/FAIL individually and the exit trap prints a
# summary scoreboard, so CI logs show exactly which gate broke.
#
# Fully offline: --locked forbids any registry/network access (all
# external deps are local shims under crates/shims/, see README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

PASSED=()
FAILED=()
CURRENT=""

report() {
    status=$?
    if [ -n "$CURRENT" ]; then
        FAILED+=("$CURRENT")
    fi
    echo
    echo "==> verify.sh gate summary"
    for gate in ${PASSED[@]+"${PASSED[@]}"}; do
        echo "    PASS  $gate"
    done
    for gate in ${FAILED[@]+"${FAILED[@]}"}; do
        echo "    FAIL  $gate"
    done
    if [ ${#FAILED[@]} -eq 0 ]; then
        echo "verify.sh: all ${#PASSED[@]} gates passed"
    else
        echo "verify.sh: ${#FAILED[@]} gate(s) FAILED"
        exit "$status"
    fi
}
trap report EXIT

run_gate() {
    name="$1"
    shift
    CURRENT="$name"
    echo "==> [$name] $*"
    "$@"
    echo "==> [$name] PASS"
    PASSED+=("$name")
    CURRENT=""
}

# --workspace matters: at the root, a bare `cargo build` compiles only
# the root façade package and silently skips every member binary
# (dualtabled, dualtable-bench, ...).
run_gate build cargo build --release --workspace --locked

run_gate tests cargo test -q --workspace --locked

if cargo clippy --version >/dev/null 2>&1; then
    run_gate clippy cargo clippy --workspace --all-targets --locked -- -D warnings
else
    echo "==> [clippy] not installed; skipping lint pass"
fi

# Deterministic chaos run: ≥100 mixed DML statements with ≥10 injected
# faults (seed documented in the test file); UNION READ must equal the
# in-memory oracle after every statement and every crash-and-reopen.
run_gate chaos-smoke cargo test -q -p dualtable --locked --test prop_fault_recovery \
    chaos_smoke_fixed_seed -- --nocapture

# Availability smoke: the same driver under a transient-only fault
# schedule. With retry enabled every statement must succeed and match
# the oracle; the same schedule with retries disabled must demonstrably
# fail statements (proving the retry layer provides the availability).
run_gate chaos-availability cargo test -q -p dualtable --locked --test prop_fault_recovery \
    chaos_availability_fixed_seed -- --nocapture

# Replica-failover smoke: reads survive a corrupted replica, the bad
# copy is quarantined, and the scrubber restores target replication.
run_gate dfs-failover cargo test -q -p dt-dfs --locked --test failover -- --nocapture

# Crash-point matrix smoke: a fixed-seed DML workload re-run with a
# fail-stop fault at >=200 distinct I/O-operation indices (always
# including points inside OVERWRITE/COMPACT generation swaps). After
# each crash the whole stack recovers from WAL + edit log/checkpoint and
# must land on an exact statement prefix with a single master generation
# and zero fsck/scrub violations. Set CRASH_MATRIX_FULL=1 to crash at
# *every* operation index instead of the 200-point subsample. The
# workload runs with write_threads=2, so the matrix also sweeps crash
# points through the parallel rewrite fan-out (DESIGN.md §12).
run_gate crash-matrix cargo test -q -p dualtable --locked --test crash_matrix -- --nocapture

# Cache-coherence smoke (DESIGN.md §10): cache-on and cache-off stacks
# must stay byte-identical through UPDATE→COMPACT→SELECT and
# OVERWRITE→SELECT loops, warm repeated SELECTs must do zero physical
# block fetches, and the warm block-cache hit rate must exceed 90%.
run_gate cache-coherence cargo test -q -p dualtable --locked --test cache_coherence -- --nocapture

# Parallel write path (DESIGN.md §12): the rewrite fan-out must equal the
# sequential writer row for row, survive mixed DML racing a parallel
# COMPACT, and never tear a generation when crashed mid-fan-out.
run_gate parallel-write cargo test -q -p dualtable --locked --test parallel_write_stress -- --nocapture

# WAL group commit: windows 1/8/64 must recover identical state, gated
# windows must actually coalesce (fsyncs saved), and a torn tail on a
# coalesced append must salvage exactly the record-aligned prefix.
run_gate group-commit cargo test -q -p dt-kvstore --locked --test group_commit -- --nocapture

# MVCC stress (DESIGN.md §13): the deterministic multi-session
# serializability harness over 50 fixed seeds — transactional writers,
# pinned readers and two-phase rewrites interleaved; every conflict
# predicted exactly, every committed log replayed single-threaded to a
# byte-identical scan — plus the generation-GC property test and the SQL
# transaction surface. MVCC_STRESS_SEEDS=N widens the sweep; a failing
# seed prints its repro command and lands in target/last_failed_seed.txt.
run_gate mvcc-stress cargo test -q -p dualtable --locked --test mvcc_stress -- --nocapture
run_gate mvcc-gc-prop cargo test -q -p dualtable --locked --test prop_mvcc_gc -- --nocapture
run_gate txn-sessions cargo test -q -p dt-hiveql --locked --test txn_sessions -- --nocapture

# Serving layer (DESIGN.md §14): wire-protocol round trips, deadlines,
# admission control, the crash-proof teardown invariants, and the
# SIGTERM drain of the real dualtabled binary.
run_gate server-basic cargo test -q -p dt-server --locked --test server_basic -- --nocapture
run_gate server-teardown cargo test -q -p dt-server --locked --test server_teardown -- --nocapture
run_gate server-sigterm cargo test -q -p dt-server --locked --test sigterm -- --nocapture

# Fault-injected soak: client storm against a 3-worker pool with
# transient storage faults, deliberate mid-transaction disconnects and
# overload bursts, over 25 seeds (SOAK_SEEDS=N widens). The acked-commit
# oracle must match the table exactly, pins must drain to zero, and the
# admission ledger must balance: accepted + shed == submitted.
run_gate server-soak cargo test -q -p dt-server --locked --test server_soak -- --nocapture

# Compactor crash matrix (DESIGN.md §15): the incremental-fold workload
# re-run with a crash at every operation inside every in-flight fold —
# pre-build, mid-build, pre-swing and post-swing/pre-sweep — plus a
# jittered spread over the whole horizon. Each recovery must land on a
# whole-statement oracle state with one live generation, a balanced fold
# ledger, clean fsck/scrub, and a still-fully-operational presence index.
run_gate compactor-crash-matrix cargo test -q -p dualtable --locked --test compactor_crash_matrix -- --nocapture

# Compactor chaos soak: the background fold loop racing three
# transaction writers and two pinned readers under transient storage
# faults, 25 seeds (COMPACTOR_SOAK_SEEDS=N widens). Exact acked-commit
# oracle, zero leaked pins, drained GC ledger, and the exact maintenance
# ledger: completed + lost_race + aborted == started.
run_gate compactor-chaos cargo test -q -p dualtable --locked --test compactor_chaos -- --nocapture

# Maintenance daemon wiring: the supervised compaction thread inside the
# server folds dirty tables behind live traffic, SET COMPACTION = OFF
# idles it (AUTO resumes), and a loaded admission queue throttles it.
run_gate server-compaction cargo test -q -p dt-server --locked --test server_compaction -- --nocapture

# BENCH 6 smoke: short closed/open-loop runs against dualtabled.
# Asserts the overload contract (2x offered load keeps the p99 of
# accepted statements within 5x the unloaded p99, and actually sheds)
# and refreshes BENCH_6.json.
run_gate bench6-smoke env BENCH6_SMOKE=1 cargo bench -q -p dt-bench --locked --bench bench6_server

# BENCH 7 smoke: the three maintenance policies (off / incremental /
# full COMPACT) under the same DML-plus-SELECT storm. Asserts the
# incremental SELECT p99 stays within 2x the fully-compacted policy and
# that background folding never stalls foreground DML beyond 2x the
# no-maintenance tail; refreshes BENCH_7.json.
run_gate bench7-smoke env BENCH7_SMOKE=1 cargo bench -q -p dt-bench --locked --bench bench7_compaction

# Shard routing (DESIGN.md §16): split-point keys route to the upper
# shard, empty shards are harmless, a single-shard table is byte-
# identical to unsharded, contradictory range predicates prune every
# shard with zero DFS reads, one UPDATE diverges EDIT/OVERWRITE across
# shards, and round-robin maintenance is cycle-fair.
run_gate shard-routing cargo test -q -p dualtable --locked --test shard_routing -- --nocapture

# Sharded crash matrix: >=200 crash points over a workload of
# single-shard and cross-shard transactional statements (every
# cross-shard commit range is a mandatory target). Each recovery must
# show per-shard whole-statement states forming a committed prefix in
# shard order, one generation per shard, and clean fsck/scrub.
run_gate shard-crash-matrix cargo test -q -p dualtable --locked --test shard_crash_matrix -- --nocapture

# Sharded chaos soak (short): cross-shard transactional writers, a
# cross-shard pinned reader and round-robin maintenance under transient
# faults; exact per-shard acked-commit oracle via the committed-prefix
# contract. Nightly widens with SHARD_SOAK_SEEDS=200.
run_gate shard-soak cargo test -q -p dualtable --locked --test shard_soak -- --nocapture

# Sharded SQL surface: SHARDED BY RANGE DDL, SHOW SHARDS, routed DML
# messages, EXPLAIN scatter/prune lines, the shard health tier, and
# cross-shard BEGIN/COMMIT sessions.
run_gate sharded-sql cargo test -q -p dt-hiveql --locked --test sharded_sql -- --nocapture

# BENCH 8 smoke: scatter-gather SELECT scaling (1/2/4/8 shards) under
# shuffled load order plus the sharded update-ratio grid. Asserts the
# 8-shard range SELECT beats the single-shard table by >= 2.5x (pure
# range pruning — file stats can't help) and that low-ratio sharded
# UPDATEs scan strictly fewer rows; refreshes BENCH_8.json.
run_gate bench8-smoke env BENCH8_SMOKE=1 cargo bench -q -p dt-bench --locked --bench bench8_sharding

# BENCH 9 smoke (DESIGN.md §17): the HTAP storm (streaming ingest + EDIT
# bursts + concurrent analytical scans) with the delta tier on vs off at
# equal durability. Asserts the delta-on EDIT-burst p99 stays under the
# delta-off p99 (1.2x slack for the short smoke sample) and that
# concurrent scans hold within 3x of the same state scanned solo;
# refreshes BENCH_9.json.
run_gate bench9-smoke env BENCH9_SMOKE=1 cargo bench -q -p dt-bench --locked --bench bench9_htap
