#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, lints (when
# clippy is installed), and the fixed-seed fault-injection smoke run.
#
# Fully offline: --locked forbids any registry/network access (all
# external deps are local shims under crates/shims/, see README.md).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --locked"
cargo build --release --locked

echo "==> cargo test -q --workspace --locked"
cargo test -q --workspace --locked

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets --locked -- -D warnings"
    cargo clippy --workspace --all-targets --locked -- -D warnings
else
    echo "==> clippy not installed; skipping lint pass"
fi

# Deterministic chaos run: ≥100 mixed DML statements with ≥10 injected
# faults (seed documented in the test file); UNION READ must equal the
# in-memory oracle after every statement and every crash-and-reopen.
echo "==> fixed-seed fault-injection smoke (chaos_smoke_fixed_seed)"
cargo test -q -p dualtable --locked --test prop_fault_recovery \
    chaos_smoke_fixed_seed -- --nocapture

# Availability smoke: the same driver under a transient-only fault
# schedule. With retry enabled every statement must succeed and match
# the oracle; the same schedule with retries disabled must demonstrably
# fail statements (proving the retry layer provides the availability).
echo "==> fixed-seed chaos-availability smoke (chaos_availability_fixed_seed)"
cargo test -q -p dualtable --locked --test prop_fault_recovery \
    chaos_availability_fixed_seed -- --nocapture

# Replica-failover smoke: reads survive a corrupted replica, the bad
# copy is quarantined, and the scrubber restores target replication.
echo "==> replica failover + quarantine + re-replication smoke (dfs failover)"
cargo test -q -p dt-dfs --locked --test failover -- --nocapture

# Crash-point matrix smoke: a fixed-seed DML workload re-run with a
# fail-stop fault at >=200 distinct I/O-operation indices (always
# including points inside OVERWRITE/COMPACT generation swaps). After
# each crash the whole stack recovers from WAL + edit log/checkpoint and
# must land on an exact statement prefix with a single master generation
# and zero fsck/scrub violations. Set CRASH_MATRIX_FULL=1 to crash at
# *every* operation index instead of the 200-point subsample.
echo "==> crash-point simulation matrix smoke (crash_matrix_three_tiers)"
cargo test -q -p dualtable --locked --test crash_matrix -- --nocapture

# Cache-coherence smoke (DESIGN.md §10): cache-on and cache-off stacks
# must stay byte-identical through UPDATE→COMPACT→SELECT and
# OVERWRITE→SELECT loops, warm repeated SELECTs must do zero physical
# block fetches, and the warm block-cache hit rate must exceed 90%.
echo "==> cache-coherence smoke + >90% warm hit-rate gate (cache_coherence)"
cargo test -q -p dualtable --locked --test cache_coherence -- --nocapture

echo "verify.sh: all gates passed"
