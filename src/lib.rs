//! # dualtable-repro
//!
//! A from-scratch Rust reproduction of *DualTable: A Hybrid Storage Model for
//! Update Optimization in Hive* (Hu, Liu, Rabl, et al., ICDE 2015).
//!
//! This façade crate re-exports the public API of every workspace crate so
//! downstream users can depend on a single crate:
//!
//! * [`common`] — shared types: [`common::Schema`], [`common::Value`],
//!   [`common::Row`], record IDs, errors, I/O statistics.
//! * [`dfs`] — an HDFS-like append-only, chunked, write-once file system.
//! * [`kvstore`] — an HBase-like log-structured merge key-value store.
//! * [`orcfile`] — an ORC-like columnar file format with stripe statistics.
//! * [`engine`] — a MapReduce-style parallel execution engine.
//! * [`dualtable`] — the paper's contribution: the hybrid Master/Attached
//!   storage model, UNION READ, COMPACT, and the §IV cost model.
//! * [`hiveql`] — a HiveQL dialect (parser, planner, executor) with
//!   `UPDATE` / `DELETE` / `COMPACT` extensions.
//! * [`baselines`] — Hive-on-HDFS, Hive-on-HBase and Hive-ACID comparators.
//! * [`workloads`] — TPC-H and Zhejiang-Grid synthetic data generators and
//!   the paper's DML statement workloads.
//!
//! ## Quickstart
//!
//! ```
//! use dualtable_repro::hiveql::Session;
//!
//! let mut session = Session::in_memory();
//! session
//!     .execute("CREATE TABLE t (id BIGINT, name STRING, v DOUBLE) STORED AS DUALTABLE")
//!     .unwrap();
//! session
//!     .execute("INSERT INTO t VALUES (1, 'a', 1.5), (2, 'b', 2.5)")
//!     .unwrap();
//! session.execute("UPDATE t SET v = 9.0 WHERE id = 2").unwrap();
//! let result = session.execute("SELECT id, v FROM t ORDER BY id").unwrap();
//! assert_eq!(result.rows()[1][1].as_f64().unwrap(), 9.0);
//! ```

pub use dt_common as common;
pub use dt_dfs as dfs;
pub use dt_engine as engine;
pub use dt_hiveql as hiveql;
pub use dt_kvstore as kvstore;
pub use dt_orcfile as orcfile;
pub use dt_workloads as workloads;
pub use dualtable;

pub use dt_baselines as baselines;
